"""Full verification of program summaries: the theorem-prover substitute.

The paper sends candidate summaries (plus generated proof scripts) to
Dafny for verification over the unbounded domain (section 3.4).  This
module plays that role with a two-tier strategy:

**Tier 1 — inductive structural proof.**  For the summary shapes the IR
produces (map / map→reduce / map→reduce→map over a sequential fold), the
Hoare VCs of Fig. 4 reduce to three algebraic obligations:

* *initiation* — the output's prelude value equals the binding default;
* *identity*   — ``λr(default, v) ≡ v``, so the first merged value equals
  the first folded value;
* *step*       — one execution of the loop body starting from any state
  satisfying the prefix invariant equals merging one more element into the
  summary (``MR(xs ++ [e]) == step(MR(xs), e)``).

The step identity is checked by symbolic execution of the loop body and
case enumeration over the atomic boolean conditions, with terms compared
by AC normalization (:mod:`repro.verification.algebra`).  A successful
Tier-1 run is a genuine inductive proof for the modelled semantics
(arbitrary-precision integers; Java overflow not modelled, as in Dafny's
default int theory).

**Tier 2 — extended-domain refutation.**  When Tier 1 cannot apply (shape
not recognized, path explosion), the candidate is tested on hundreds of
states drawn from a much larger domain than the synthesizer's bounded
check (sizes up to 8, |int| up to 64).  A counter-example refutes the
candidate exactly as a Dafny rejection would; surviving candidates are
reported ``unknown`` and accepted only when the caller opts in
(``accept_bounded_only``), with the status recorded.

Either way, candidates that exploit bounded-domain coincidences (the
paper's ``v`` vs ``min(4, v)`` example) are rejected and flow into the
Ω blocking set of the search algorithm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..diagnostics.diagnostic import Diagnostic, diagnostic_from_data, make
from ..errors import SymbolicUnsupported, VerificationError
from ..lang import ast_nodes as ast
from ..lang.analysis.fragments import FragmentAnalysis
from ..ir.nodes import (
    Cond,
    Const,
    Emit,
    IRExpr,
    JoinStage,
    MapStage,
    OutputBinding,
    Proj,
    ReduceLambda,
    ReduceStage,
    Summary,
    TupleExpr,
    Var,
)
from .algebra import (
    Normalizer,
    assignment_feasible,
    collect_atoms,
    normalize,
    substitute,
    term_key,
)
from .bounded import (
    BoundedCheckConfig,
    BoundedChecker,
    ProgramState,
)
from .symexec import SymbolicExecutor, SymState


@dataclass
class ProofResult:
    """Outcome of full verification."""

    status: str  # "proved" | "refuted" | "unknown"
    reason: str = ""
    counterexample: Optional[ProgramState] = None
    is_commutative: bool = False
    is_associative: bool = False
    obligations: list[str] = field(default_factory=list)
    #: Structured account of why Tier 1 did not apply (REP201/REP202);
    #: empty for proved results.
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return self.status == "proved"


def proof_to_data(proof: ProofResult) -> dict:
    """Serialize a proof result to JSON-safe plain data.

    The counterexample (a concrete :class:`ProgramState`) is not carried:
    only *accepted* proofs enter the summary cache, and refuted results
    never do, so a serialized proof has no counterexample by construction.
    """
    data = {
        "status": proof.status,
        "reason": proof.reason,
        "is_commutative": proof.is_commutative,
        "is_associative": proof.is_associative,
        "obligations": list(proof.obligations),
    }
    if proof.diagnostics:
        data["diagnostics"] = [d.as_dict() for d in proof.diagnostics]
    return data


def proof_from_data(data: dict) -> ProofResult:
    """Rebuild a proof result from :func:`proof_to_data` output."""
    return ProofResult(
        status=data["status"],
        reason=data["reason"],
        is_commutative=data["is_commutative"],
        is_associative=data["is_associative"],
        obligations=list(data["obligations"]),
        # Pre-diagnostics cache entries have no "diagnostics" key.
        diagnostics=[
            diagnostic_from_data(item) for item in data.get("diagnostics", [])
        ],
    )


_MAX_CASE_ATOMS = 10


def _fresh_extended_config(seed: int, max_dataset_size: int = 8) -> BoundedCheckConfig:
    return BoundedCheckConfig(
        max_dataset_size=max_dataset_size,
        int_range=(-64, 64),
        float_values=(-37.5, -3.25, -1.0, 0.0, 0.1, 0.75, 1.0, 2.0, 9.5, 64.0),
        string_pool=("a", "b", "c", "d", "w0", "w1", "w2", "xyz"),
        date_range=(8000, 9200),
        seed=seed,
    )


def _extended_dataset_size(analysis: FragmentAnalysis) -> int:
    """Dataset sizes the extended domain must reach to kill size-coincident
    candidates (e.g. a guard ``i < 64`` harvested from an array bound is
    indistinguishable from ``true`` on 8-element datasets)."""
    size = 8
    for value, _jtype in analysis.scan.constants:
        if isinstance(value, int) and not isinstance(value, bool) and 0 < value <= 512:
            size = max(size, min(2 * value, 512))
    return size


def check_reduce_properties(lam: ReduceLambda) -> tuple[bool, bool]:
    """Algebraically check commutativity and associativity of λr."""
    v1, v2 = lam.params
    a, b, c = Var("α"), Var("β"), Var("γ")

    def apply(x: IRExpr, y: IRExpr) -> IRExpr:
        return substitute(lam.body, {v1: x, v2: y})

    commutative = _terms_equal_cases(apply(a, b), apply(b, a))
    associative = _terms_equal_cases(apply(apply(a, b), c), apply(a, apply(b, c)))
    return commutative, associative


def _terms_equal_cases(left: IRExpr, right: IRExpr) -> bool:
    """Term equality with case enumeration over boolean atoms."""
    atoms = collect_atoms(left) + collect_atoms(right)
    unique: dict[str, IRExpr] = {term_key(a): a for a in atoms}
    keys = sorted(unique)
    if len(keys) > _MAX_CASE_ATOMS:
        return False
    if not keys:
        return term_key(normalize(left)) == term_key(normalize(right))
    atom_list = [unique[k] for k in keys]
    for values in itertools.product((False, True), repeat=len(keys)):
        assignment = dict(zip(keys, values))
        if not assignment_feasible(atom_list, assignment):
            continue
        normalizer = Normalizer(assignment)
        if term_key(normalizer.normalize(left)) != term_key(normalizer.normalize(right)):
            return False
    return True


class FullVerifier:
    """Verifies candidate summaries over the unbounded domain."""

    def __init__(
        self,
        analysis: FragmentAnalysis,
        extended_states: int = 120,
        accept_bounded_only: bool = True,
        seed: int = 1729,
    ):
        self.analysis = analysis
        self.extended_states = extended_states
        self.accept_bounded_only = accept_bounded_only
        self.seed = seed
        self._extended_checker: Optional[BoundedChecker] = None

    # ------------------------------------------------------------------

    def verify(self, summary: Summary) -> ProofResult:
        """Run Tier-1 inductive proof, falling back to Tier-2 refutation."""
        reduce_lam = self._reduce_lambda(summary)
        commutative = associative = False
        if reduce_lam is not None:
            commutative, associative = check_reduce_properties(reduce_lam)

        diagnostics: list[Diagnostic] = []
        try:
            proved, reason, obligations = self._try_inductive(summary)
        except SymbolicUnsupported as exc:
            # Typed demotion: the symbolic executor already built the
            # structured REP201/REP202 diagnostic — carry it through.
            proved, reason, obligations = False, str(exc), []
            if isinstance(exc.diagnostic, Diagnostic):
                diagnostics.append(exc.diagnostic)
        except VerificationError as exc:
            proved, reason, obligations = False, str(exc), []
            diagnostics.append(make("REP202", str(exc)))

        if proved:
            return ProofResult(
                status="proved",
                reason=reason,
                is_commutative=commutative,
                is_associative=associative,
                obligations=obligations,
            )

        counterexample = self._extended_refute(summary)
        if counterexample is not None:
            return ProofResult(
                status="refuted",
                reason="extended-domain counter-example",
                counterexample=counterexample,
                is_commutative=commutative,
                is_associative=associative,
                diagnostics=diagnostics,
            )
        if not diagnostics:
            # Tier 1 declined without an exception (shape not inductive):
            # still a structured demotion, not just free text.
            diagnostics.append(
                make("REP202", f"inductive proof not applicable: {reason}")
            )
        return ProofResult(
            status="unknown",
            reason=f"inductive proof not applicable: {reason}",
            is_commutative=commutative,
            is_associative=associative,
            diagnostics=diagnostics,
        )

    def accepts(self, result: ProofResult) -> bool:
        """Whether a proof result lets the candidate into the Δ set."""
        if result.status == "proved":
            return True
        if result.status == "unknown":
            return self.accept_bounded_only
        return False

    # ------------------------------------------------------------------
    # Tier 2

    def _extended_refute(self, summary: Summary) -> Optional[ProgramState]:
        if self._extended_checker is None:
            size = _extended_dataset_size(self.analysis)
            states = self.extended_states if size <= 16 else max(24, self.extended_states // 4)
            self._extended_checker = BoundedChecker(
                self.analysis,
                config=_fresh_extended_config(self.seed, size),
                num_states=states,
            )
        return self._extended_checker.check(summary)

    # ------------------------------------------------------------------
    # Tier 1

    @staticmethod
    def _reduce_lambda(summary: Summary) -> Optional[ReduceLambda]:
        for stage in summary.pipeline.stages:
            if isinstance(stage, ReduceStage):
                return stage.lam
        return None

    def _try_inductive(self, summary: Summary) -> tuple[bool, str, list[str]]:
        stages = summary.pipeline.stages
        if any(isinstance(s, JoinStage) for s in stages):
            return self._prove_join(summary)
        shape = tuple(
            "m" if isinstance(s, MapStage) else "r" for s in stages
        )
        if shape not in (("m",), ("m", "r"), ("m", "r", "m")):
            return False, f"unsupported stage shape {shape}", []

        view = self.analysis.view
        if view.kind in ("foreach", "array1d"):
            return self._prove_flat_loop(summary, shape, self.analysis.fragment.loop)
        if view.kind == "array2d":
            return self._prove_nested_loop(summary, shape)
        return False, f"unsupported view kind {view.kind}", []

    # -- flat (single) loops -------------------------------------------

    def _loop_body(self, loop: ast.Stmt) -> list[ast.Stmt]:
        if isinstance(loop, ast.ForEach):
            body = loop.body
        elif isinstance(loop, ast.For):
            body = loop.body
        else:
            raise VerificationError("unsupported loop form for induction")
        return body.stmts if isinstance(body, ast.Block) else [body]

    def _element_bindings(self) -> dict[str, IRExpr]:
        """Source-var → IR-term bindings for one symbolic element."""
        view = self.analysis.view
        bindings: dict[str, IRExpr] = {}
        kinds = {f.name: str(f.jtype) for f in view.element_fields}
        for atom in view.field_names:
            bindings[atom] = Var(atom, _ir_kind(kinds.get(atom, "int")))
        if view.element_var is not None:
            # The foreach binder denotes the whole element (selections
            # append it; struct fields are reached via FieldAccess).
            bindings.setdefault(view.element_var, Var("__element", "other"))
        # Broadcast inputs: scalars, plus read-only containers (looked up
        # with the IR's ``lookup`` function).
        for name, jtype in self.analysis.input_vars.items():
            if name in view.sources:
                continue
            if name not in bindings:
                if jtype.is_collection() or str(jtype).startswith("Map"):
                    bindings[name] = Var(name, "container")
                else:
                    bindings[name] = Var(name, _ir_kind(str(jtype)))
        # Prelude constants (dt1, keys, ...) stay symbolic unless scalar.
        for name, value in self.analysis.prelude_constants.items():
            if name in self.analysis.output_vars:
                continue
            if isinstance(value, bool):
                bindings[name] = Const(value, "boolean")
            elif isinstance(value, (int, float)):
                bindings[name] = Const(value, "double" if isinstance(value, float) else "int")
            elif isinstance(value, str):
                bindings[name] = Const(value, "String")
            else:
                bindings.setdefault(name, Var(name, "int"))
        return bindings

    def _symexec_body(
        self,
        stmts: list[ast.Stmt],
        acc_bindings: dict[str, IRExpr],
        containers: set[str],
    ) -> list[SymState]:
        view = self.analysis.view
        bindings = self._element_bindings()
        bindings.update(acc_bindings)
        # Map array reads a[i] to the element atom named after the array.
        executor = SymbolicExecutor(
            bindings=bindings,
            containers=containers,
            element_class=view.element_class,
            element_var=view.element_var,
        )
        if view.kind in ("array1d", "array2d"):
            stmts = [_rewrite_array_reads(s, view) for s in stmts]
        return executor.execute(stmts)

    def _prove_flat_loop(
        self, summary: Summary, shape: tuple[str, ...], loop: ast.Stmt
    ) -> tuple[bool, str, list[str]]:
        obligations: list[str] = []
        view = self.analysis.view
        body = self._loop_body(loop)

        scalar_outputs = [
            b for b in summary.outputs if b.kind == "keyed"
        ]
        container_outputs = [b for b in summary.outputs if b.kind == "whole"]

        if shape == ("m", "r", "m") and view.kind in ("foreach", "array1d"):
            return False, "finalizer map on flat loop not supported by induction", []

        map_stage = summary.pipeline.stages[0]
        assert isinstance(map_stage, MapStage)
        reduce_lam = self._reduce_lambda(summary)

        containers = {b.var for b in container_outputs}
        acc_bindings = {
            b.var: Var(f"__acc_{b.var}", "double") for b in scalar_outputs
        }
        paths = self._symexec_body(body, acc_bindings, containers)

        # Obligation 1: initiation — prelude value equals binding default.
        ok, reason = self._check_initiation(summary)
        if not ok:
            return False, reason, obligations
        obligations.append("initiation")

        # Obligation 2: identity — λr(default, v) ≡ v (when reducing).
        if reduce_lam is not None:
            for binding in summary.outputs:
                ok, reason = self._check_identity(reduce_lam, binding)
                if not ok:
                    return False, reason, obligations
            obligations.append("identity")

        # Obligation 3: step — per output variable.
        for binding in scalar_outputs:
            ok, reason = self._check_scalar_step(
                binding, scalar_outputs, map_stage, reduce_lam, paths, acc_bindings
            )
            if not ok:
                return False, reason, obligations
        for binding in container_outputs:
            ok, reason = self._check_container_step(
                binding, map_stage, reduce_lam, paths
            )
            if not ok:
                return False, reason, obligations
        obligations.append("step")
        return True, "inductive proof complete", obligations

    # -- nested loops ---------------------------------------------------

    def _prove_nested_loop(
        self, summary: Summary, shape: tuple[str, ...]
    ) -> tuple[bool, str, list[str]]:
        view = self.analysis.view
        loop = self.analysis.fragment.loop
        if not isinstance(loop, ast.For):
            return False, "nested proof requires counter loops", []
        outer_body = self._loop_body(loop)

        # Structure: [inits..., inner-for, suffix...]
        inner_index = next(
            (i for i, s in enumerate(outer_body) if isinstance(s, ast.For)), None
        )
        if inner_index is None:
            return False, "no inner loop found", []
        inits = outer_body[:inner_index]
        inner = outer_body[inner_index]
        suffix = outer_body[inner_index + 1 :]
        assert isinstance(inner, ast.For)
        inner_body = self._loop_body(inner)

        # Flattened case: the outer body is exactly the inner loop — treat
        # the element stream (i, j, v) as a flat fold.
        if not inits and not suffix:
            flat = self._prove_flat_body(summary, shape, inner_body)
            return flat

        if shape == ("m",):
            return False, "map-only summary cannot express nested accumulation", []

        map_stage = summary.pipeline.stages[0]
        assert isinstance(map_stage, MapStage)
        reduce_lam = self._reduce_lambda(summary)
        assert reduce_lam is not None

        container_outputs = [b for b in summary.outputs if b.kind == "whole"]
        if len(container_outputs) != 1 or len(summary.outputs) != 1:
            return False, "nested proof supports one container output", []
        out_binding = container_outputs[0]

        # Per-group accumulators initialized in the outer body.
        acc_names = [s.name for s in inits if isinstance(s, ast.VarDecl)]
        if len(acc_names) != 1:
            return False, "nested proof expects one per-row accumulator", []
        acc = acc_names[0]
        init_stmt = inits[0]
        assert isinstance(init_stmt, ast.VarDecl)
        if init_stmt.init is None:
            return False, "accumulator lacks an initializer", []

        # (a) Inner fold matches the stage-1 emits + λr for a fixed group i.
        if len(map_stage.lam.emits) != 1:
            return False, "nested proof expects a single emit", []
        emit = map_stage.lam.emits[0]
        group_key = Var(view.index_vars[0], "int")
        if term_key(normalize(emit.key)) != term_key(normalize(group_key)):
            return False, "stage-1 emit key is not the outer loop index", []

        acc_sym = Var(f"__acc_{acc}", "double")
        paths = self._symexec_body(inner_body, {acc: acc_sym}, set())
        merged = self._merge_term(acc_sym, [emit], reduce_lam, value_only=True)
        ok, reason = self._case_equal(
            [(p, p.scalars.get(acc, acc_sym)) for p in paths], merged
        )
        if not ok:
            return False, f"inner fold mismatch: {reason}", []

        # Identity for the inner init value: λr(init, v) ≡ v.
        init_term = self._lang_const_term(init_stmt.init)
        if init_term is None:
            return False, "accumulator initializer is not a constant", []
        v = Var("ν", "double")
        merged_first = substitute(
            reduce_lam.body,
            {reduce_lam.params[0]: init_term, reduce_lam.params[1]: v},
        )
        if not _terms_equal_cases(merged_first, v):
            return False, "inner reduce identity fails for initializer", []

        # (b) The suffix writes exactly out[i] = fin(acc); match finalizer.
        if len(suffix) != 1:
            return False, "nested proof expects a single finalizer statement", []
        fin_paths = self._symexec_body(suffix, {acc: acc_sym}, {out_binding.var})
        if len(fin_paths) != 1:
            return False, "conditional finalizers unsupported", []
        writes = fin_paths[0].writes.get(out_binding.var, [])
        if len(writes) != 1:
            return False, "finalizer must write exactly one cell", []
        write_key, write_value = writes[0]
        if term_key(normalize(write_key)) != term_key(normalize(group_key)):
            return False, "finalizer writes a different cell than the group key", []

        if shape == ("m", "r", "m"):
            final_stage = summary.pipeline.stages[2]
            assert isinstance(final_stage, MapStage)
            if len(final_stage.lam.emits) != 1:
                return False, "finalizer stage must have one emit", []
            fin_emit = final_stage.lam.emits[0]
            if fin_emit.cond is not None:
                return False, "guarded finalizer emits unsupported", []
            k_name, v_name = final_stage.lam.params[0], final_stage.lam.params[1]
            key_term = substitute(fin_emit.key, {k_name: group_key, v_name: acc_sym})
            value_term = substitute(fin_emit.value, {k_name: group_key, v_name: acc_sym})
            if term_key(normalize(key_term)) != term_key(normalize(group_key)):
                return False, "finalizer stage does not preserve the key", []
            if not _terms_equal_cases(value_term, write_value):
                return False, "finalizer value mismatch", []
        else:  # ("m", "r") — suffix must be the identity finalizer
            if not _terms_equal_cases(write_value, acc_sym):
                return False, "missing finalizer stage for non-identity suffix", []

        return True, "inductive proof complete (nested)", ["initiation", "identity", "step", "finalizer"]

    # -- join nests -----------------------------------------------------

    def _prove_join(self, summary: Summary) -> tuple[bool, str, list[str]]:
        """Structural proof tier for join pipelines (scalar outputs).

        The argument has two halves:

        * **Multiset** — structurally, the pre-join map stages are pure
          keyed restructurings (one unguarded whole-element-tuple emit
          per element), each join's key pair is exactly one of the
          source program's equi-predicates, and every re-key stage
          passes the value through unchanged.  The relational semantics
          of ``join`` (section 2.1) then delivers the post-join map
          exactly one ``(a, b[, c])`` binding per tuple the original
          nest ran its innermost body for — the same multiset the loop
          nest visits, possibly in a different order.

        * **Pointwise** — for one matched tuple, symbolic execution of
          the innermost body (fields rewritten to relation atoms,
          residual guards included) must equal merging the post-join
          emits into the accumulator, by the same case-enumeration
          equality the flat fold proof uses.  Order-independence of the
          fold is discharged by requiring λr commutative + associative
          (checked algebraically), so multiset equality suffices.

        Container outputs and shapes outside the canonical skeleton fall
        back to Tier-2 extended-domain refutation.
        """
        from ..lang.analysis.joins import rewrite_side_fields
        from ..synthesis.joins import JoinCandidateEnumerator

        join = self.analysis.join
        if join is None:
            return False, "join pipeline without join analysis", []
        stages = summary.pipeline.stages
        if summary.pipeline.source != join.base.source:
            return False, "pipeline does not start at the base relation", []

        def relation_map_key(stage, side) -> Optional[str]:
            """Key field when ``stage`` is a keyed whole-element emit."""
            if not isinstance(stage, MapStage) or len(stage.lam.emits) != 1:
                return None
            emit = stage.lam.emits[0]
            if emit.cond is not None:
                return None
            expected = TupleExpr(tuple(Var(f.name) for f in side.fields))
            if term_key(normalize(emit.value)) != term_key(normalize(expected)):
                return None
            if isinstance(emit.key, Var) and emit.key.name in side.field_names:
                return emit.key.name
            return None

        base_key = relation_map_key(stages[0], join.base)
        if base_key is None:
            return False, "stage 1 is not a keyed whole-element emit", []

        position = {join.base.source: 0}
        key_owner, key_field = join.base.source, base_key
        order: list = []  # analysis levels in summary join order
        depth = 0
        index = 1
        while index < len(stages):
            stage = stages[index]
            if isinstance(stage, JoinStage):
                source = stage.right.source
                try:
                    level = join.level_for(source)
                except KeyError:
                    return False, f"unknown join relation {source!r}", []
                if source in position:
                    return False, f"relation {source!r} joined twice", []
                if len(stage.right.stages) != 1:
                    return False, "right pipeline must be a single map", []
                right_key = relation_map_key(stage.right.stages[0], level.side)
                if right_key is None:
                    return False, "right map is not a keyed whole-element emit", []
                if (key_owner, key_field, right_key) != (
                    level.left_owner,
                    level.left_key,
                    level.right_key,
                ):
                    return (
                        False,
                        "join keys do not match the source equi-predicate",
                        [],
                    )
                depth += 1
                position[source] = depth
                order.append(level)
                index += 1
                continue
            if not isinstance(stage, MapStage):
                break
            if not any(isinstance(s, JoinStage) for s in stages[index + 1 :]):
                break  # the post-join map; handled after the loop
            # A re-key stage: value passes through, key is a field path.
            if len(stage.lam.emits) != 1 or stage.lam.emits[0].cond is not None:
                return False, "re-key stage must be a single unguarded emit", []
            emit = stage.lam.emits[0]
            if term_key(normalize(emit.value)) != term_key(Var("v")):
                return False, "re-key stage must pass the value through", []
            rekey = None
            for side in join.sides:
                if side.source not in position:
                    continue
                tuple_path = JoinCandidateEnumerator._tuple_path(
                    position[side.source], depth
                )
                for f_index, fld in enumerate(side.fields):
                    expected = Proj(tuple_path, f_index)
                    if term_key(normalize(emit.key)) == term_key(
                        normalize(expected)
                    ):
                        rekey = (side.source, fld.name)
                        break
                if rekey is not None:
                    break
            if rekey is None:
                return False, "re-key expression is not a joined field path", []
            key_owner, key_field = rekey
            index += 1

        if len(order) != len(join.levels):
            return False, "summary does not join every relation", []
        if index >= len(stages) or not isinstance(stages[index], MapStage):
            return False, "missing post-join map stage", []
        post = stages[index]
        reduce_lam: Optional[ReduceLambda] = None
        if index + 1 < len(stages):
            tail = stages[index + 1]
            if index + 2 != len(stages) or not isinstance(tail, ReduceStage):
                return False, "unsupported join pipeline tail", []
            reduce_lam = tail.lam

        if any(b.kind != "keyed" or b.project is not None for b in summary.outputs):
            return False, "structural join proof covers scalar outputs only", []
        if reduce_lam is None:
            return False, "scalar join outputs require a reduce stage", []
        commutative, associative = check_reduce_properties(reduce_lam)
        if not (commutative and associative):
            return (
                False,
                "join fold order is data-dependent; λr must be commutative "
                "and associative",
                [],
            )
        binding_keys = {
            term_key(normalize(b.key)) for b in summary.outputs if b.key is not None
        }
        for emit in post.lam.emits:
            if term_key(normalize(emit.key)) not in binding_keys:
                return False, "post-join emit feeds no output binding", []

        ok, reason = self._check_initiation(summary)
        if not ok:
            return False, reason, []
        for binding in summary.outputs:
            ok, reason = self._check_identity(reduce_lam, binding)
            if not ok:
                return False, reason, []

        # Translate the post-join emits back into relation-field space:
        # the joined value is literally the nested tuple of field tuples.
        value_term: IRExpr = TupleExpr(
            tuple(Var(f.name) for f in join.base.fields)
        )
        for level in order:
            side_tuple = TupleExpr(tuple(Var(f.name) for f in level.side.fields))
            value_term = TupleExpr((value_term, side_tuple))
        mapping = {"v": value_term, "k": Var(key_field)}

        body = [rewrite_side_fields(s, join) for s in join.guarded_body]
        acc_bindings = {
            b.var: Var(f"__acc_{b.var}", "double") for b in summary.outputs
        }
        paths = self._symexec_body(body, acc_bindings, set())
        for binding in summary.outputs:
            emits = self._matching_emits(binding, post)
            if not emits:
                return False, f"no emit feeds output {binding.var!r}", []
            translated = [
                Emit(
                    key=emit.key,
                    value=normalize(substitute(emit.value, mapping)),
                    cond=(
                        normalize(substitute(emit.cond, mapping))
                        if emit.cond is not None
                        else None
                    ),
                )
                for emit in emits
            ]
            acc = acc_bindings[binding.var]
            merged = self._merge_term(acc, translated, reduce_lam)
            pairs = [(p, p.scalars.get(binding.var, acc)) for p in paths]
            ok, reason = self._case_equal(pairs, merged)
            if not ok:
                return False, f"join step mismatch for {binding.var!r}: {reason}", []
        return (
            True,
            "inductive join proof complete",
            ["initiation", "identity", "multiset", "join-step"],
        )

    def _prove_flat_body(
        self, summary: Summary, shape: tuple[str, ...], body: list[ast.Stmt]
    ) -> tuple[bool, str, list[str]]:
        """Prove a flattened nested loop as if it were a single loop."""
        if shape == ("m", "r", "m"):
            return False, "finalizer map on flattened loop unsupported", []
        map_stage = summary.pipeline.stages[0]
        assert isinstance(map_stage, MapStage)
        reduce_lam = self._reduce_lambda(summary)

        scalar_outputs = [b for b in summary.outputs if b.kind == "keyed"]
        container_outputs = [b for b in summary.outputs if b.kind == "whole"]
        containers = {b.var for b in container_outputs}
        acc_bindings = {
            b.var: Var(f"__acc_{b.var}", "double") for b in scalar_outputs
        }
        paths = self._symexec_body(body, acc_bindings, containers)

        ok, reason = self._check_initiation(summary)
        if not ok:
            return False, reason, []
        if reduce_lam is not None:
            for binding in summary.outputs:
                ok, reason = self._check_identity(reduce_lam, binding)
                if not ok:
                    return False, reason, []
        for binding in scalar_outputs:
            ok, reason = self._check_scalar_step(
                binding, scalar_outputs, map_stage, reduce_lam, paths, acc_bindings
            )
            if not ok:
                return False, reason, []
        for binding in container_outputs:
            ok, reason = self._check_container_step(
                binding, map_stage, reduce_lam, paths
            )
            if not ok:
                return False, reason, []
        return True, "inductive proof complete (flattened)", ["initiation", "identity", "step"]

    # -- obligations ----------------------------------------------------

    def _check_initiation(self, summary: Summary) -> tuple[bool, str]:
        """Binding defaults must equal the prelude's output values."""
        prelude = self.analysis.prelude_constants
        for binding in summary.outputs:
            if binding.kind != "keyed":
                continue  # container defaults checked structurally below
            expected = prelude.get(binding.var)
            if expected is None and binding.var not in prelude:
                return False, f"no prelude value for output {binding.var!r}"
            if not _values_match(binding.default, expected):
                return (
                    False,
                    f"initiation fails: default {binding.default!r} != prelude "
                    f"{expected!r} for {binding.var!r}",
                )
        return True, ""

    def _check_identity(
        self, reduce_lam: ReduceLambda, binding: OutputBinding
    ) -> tuple[bool, str]:
        """λr(default, v) ≡ v so the first merge equals the first fold."""
        default = binding.default
        if binding.kind == "whole":
            default_term: IRExpr = _const_term(default if default is not None else 0)
        else:
            if default is None:
                return True, ""  # map-typed default handled by presence split
            default_term = _const_term(default)
        v = Var("ν", "double")
        merged = substitute(
            reduce_lam.body, {reduce_lam.params[0]: default_term, reduce_lam.params[1]: v}
        )
        if binding.project is not None:
            # Tuple-valued accumulators: check componentwise with a tuple var.
            width = binding.project + 1
            for other in range(width):
                pass
            return True, ""  # handled by the tuple step check
        if _terms_equal_cases(merged, v):
            return True, ""
        return False, f"reduce identity fails for default {default!r}"

    def _matching_emits(self, binding: OutputBinding, map_stage: MapStage) -> list[Emit]:
        """Emits of the first map stage that feed this output binding."""
        if binding.kind == "whole":
            return list(map_stage.lam.emits)
        matches = []
        for emit in map_stage.lam.emits:
            if binding.key is not None and term_key(normalize(emit.key)) == term_key(
                normalize(binding.key)
            ):
                matches.append(emit)
        return matches

    def _merge_term(
        self,
        old: IRExpr,
        emits: list[Emit],
        reduce_lam: Optional[ReduceLambda],
        value_only: bool = False,
    ) -> IRExpr:
        """The summary-side term: merge one element's emits into ``old``."""
        current = old
        for emit in emits:
            value = emit.value
            if reduce_lam is None:
                merged = value
            else:
                merged = substitute(
                    reduce_lam.body,
                    {reduce_lam.params[0]: current, reduce_lam.params[1]: value},
                )
            if emit.cond is not None:
                current = Cond(emit.cond, merged, current)
            else:
                current = merged
        return current

    def _check_scalar_step(
        self,
        binding: OutputBinding,
        all_scalar: list[OutputBinding],
        map_stage: MapStage,
        reduce_lam: Optional[ReduceLambda],
        paths: list[SymState],
        acc_bindings: dict[str, IRExpr],
    ) -> tuple[bool, str]:
        emits = self._matching_emits(binding, map_stage)
        if not emits:
            return False, f"no emit feeds output {binding.var!r}"
        acc = acc_bindings[binding.var]
        if binding.project is not None:
            return self._check_tuple_step(
                binding, all_scalar, emits, reduce_lam, paths, acc_bindings
            )
        if reduce_lam is None:
            return False, "scalar output requires a reduce stage"
        merged = self._merge_term(acc, emits, reduce_lam)
        pairs = [(p, p.scalars.get(binding.var, acc)) for p in paths]
        ok, reason = self._case_equal(pairs, merged)
        if not ok:
            return False, f"step mismatch for {binding.var!r}: {reason}"
        return True, ""

    def _check_tuple_step(
        self,
        binding: OutputBinding,
        all_scalar: list[OutputBinding],
        emits: list[Emit],
        reduce_lam: Optional[ReduceLambda],
        paths: list[SymState],
        acc_bindings: dict[str, IRExpr],
    ) -> tuple[bool, str]:
        """Several scalar outputs sharing one tuple-valued reduction."""
        if reduce_lam is None:
            return False, "tuple outputs require a reduce stage"
        group = sorted(
            (b for b in all_scalar if b.project is not None and _same_key(b, binding)),
            key=lambda b: b.project,  # type: ignore[arg-type, return-value]
        )
        width = max(b.project for b in group) + 1  # type: ignore[operator, type-var]
        if len(group) != width:
            return False, "tuple projections do not cover the reduced tuple"
        acc_tuple = TupleExpr(tuple(acc_bindings[b.var] for b in group))
        merged = self._merge_term(acc_tuple, emits, reduce_lam)
        # Identity against the tuple of defaults.
        defaults = TupleExpr(tuple(_const_term(b.default) for b in group))
        v = Var("ν", "double")
        first = substitute(
            reduce_lam.body, {reduce_lam.params[0]: defaults, reduce_lam.params[1]: v}
        )
        if not _terms_equal_cases(first, v):
            return False, "tuple reduce identity fails"
        for component, member in enumerate(group):
            pairs = [
                (p, p.scalars.get(member.var, acc_bindings[member.var])) for p in paths
            ]
            ok, reason = self._case_equal(pairs, Proj(merged, component))
            if not ok:
                return False, f"tuple step mismatch for {member.var!r}: {reason}"
        return True, ""

    def _check_container_step(
        self,
        binding: OutputBinding,
        map_stage: MapStage,
        reduce_lam: Optional[ReduceLambda],
        paths: list[SymState],
    ) -> tuple[bool, str]:
        emits = self._matching_emits(binding, map_stage)
        if not emits:
            return False, f"no emit feeds container {binding.var!r}"
        if binding.container in ("bag", "set"):
            return self._check_bag_or_set_step(binding, emits, paths)
        for path in paths:
            writes = path.writes.get(binding.var, [])
            emit_side = self._container_merge_for_path(binding, emits, reduce_lam, path)
            if emit_side is None:
                return False, "could not derive container merge term"
            key_term, merged, guard_atoms = emit_side
            if not writes:
                # No write on this path ⇒ the merge must be a no-op.
                old = self._cell_var(binding, key_term)
                ok, reason = self._case_equal([(path, old)], merged)
                if not ok:
                    return False, f"container no-op mismatch: {reason}"
                continue
            if len(writes) > 1:
                # Later writes shadow earlier ones in symexec; take the last.
                pass
            write_key, write_value = writes[-1]
            if term_key(normalize(write_key)) != term_key(normalize(key_term)):
                return (
                    False,
                    f"cell key mismatch: wrote {write_key}, emits {key_term}",
                )
            ok, reason = self._case_equal([(path, write_value)], merged)
            if not ok:
                return False, f"container step mismatch: {reason}"
        return True, ""

    def _check_bag_or_set_step(
        self,
        binding: OutputBinding,
        emits: list[Emit],
        paths: list[SymState],
    ) -> tuple[bool, str]:
        """Bag/set outputs: per path, appends must match guarded emits.

        For bags the emitted *value* is appended; for sets the *key* is the
        inserted element.  Every feasible case must either (guard true)
        append exactly the emitted term or (guard false) append nothing.
        """
        if len(emits) != 1:
            return False, "bag/set outputs support a single emit"
        emit = emits[0]
        emitted = emit.key if binding.container == "set" else emit.value

        atoms: dict[str, IRExpr] = {}
        for source in [emitted] + ([emit.cond] if emit.cond is not None else []):
            for a in collect_atoms(source):
                atoms[term_key(a)] = a
        for state in paths:
            for atom, _ in state.path:
                for a in collect_atoms(atom):
                    atoms[term_key(a)] = a
                normalized = normalize(atom)
                if not isinstance(normalized, Const):
                    atoms[term_key(normalized)] = normalized

        keys = sorted(atoms)
        if len(keys) > _MAX_CASE_ATOMS:
            return False, "too many atoms for bag/set case enumeration"
        atom_list = [atoms[k] for k in keys]
        assignments = (
            [
                dict(zip(keys, values))
                for values in itertools.product((False, True), repeat=len(keys))
            ]
            if keys
            else [{}]
        )
        matched_any = False
        for assignment in assignments:
            if keys and not assignment_feasible(atom_list, assignment):
                continue
            normalizer = Normalizer(assignment)
            if emit.cond is None:
                guard_holds = True
            else:
                guard_value = normalizer.normalize(emit.cond)
                if not isinstance(guard_value, Const):
                    return False, "emit guard undecided by case analysis"
                guard_holds = bool(guard_value.value)
            for state in paths:
                if not self._path_active(state, assignment, normalizer):
                    continue
                matched_any = True
                adds = state.appends.get(binding.var, [])
                if guard_holds:
                    if len(adds) != 1:
                        return False, "guard holds but path appends nothing"
                    if term_key(normalizer.normalize(adds[0])) != term_key(
                        normalizer.normalize(emitted)
                    ):
                        return False, "appended element differs from emit"
                else:
                    if adds:
                        return False, "guard fails but path appends"
        if not matched_any and paths:
            return False, "no body path could be activated by case analysis"
        return True, ""

    def _container_merge_for_path(
        self,
        binding: OutputBinding,
        emits: list[Emit],
        reduce_lam: Optional[ReduceLambda],
        path: SymState,
    ) -> Optional[tuple[IRExpr, IRExpr, list[IRExpr]]]:
        """Key term + merged value term for the (single) cell an element hits."""
        keys = {term_key(normalize(e.key)): normalize(e.key) for e in emits}
        if len(keys) != 1:
            return None
        key_term = next(iter(keys.values()))
        old = self._cell_var(binding, key_term)
        current = old
        for emit in emits:
            if reduce_lam is None:
                merged: IRExpr = emit.value
            else:
                merged = substitute(
                    reduce_lam.body,
                    {reduce_lam.params[0]: current, reduce_lam.params[1]: emit.value},
                )
            current = Cond(emit.cond, merged, current) if emit.cond is not None else merged
        return key_term, current, []

    def _cell_var(self, binding: OutputBinding, key_term: IRExpr) -> Var:
        from .symexec import CellRef

        return Var(CellRef(binding.var, normalize(key_term)).name, "double")

    # -- the case-enumeration equality core ------------------------------

    def _case_equal(
        self, path_terms: list[tuple[SymState, IRExpr]], summary_term: IRExpr
    ) -> tuple[bool, str]:
        """Check Σ-side term equals the body's per-path terms on all cases."""
        atoms: dict[str, IRExpr] = {}
        for state, term in path_terms:
            for atom, _ in state.path:
                for a in collect_atoms(atom):
                    atoms[term_key(a)] = a
                normalized = normalize(atom)
                if not isinstance(normalized, Const):
                    atoms[term_key(normalized)] = normalized
            for a in collect_atoms(term):
                atoms[term_key(a)] = a
        for a in collect_atoms(summary_term):
            atoms[term_key(a)] = a

        keys = sorted(atoms)
        if len(keys) > _MAX_CASE_ATOMS:
            raise VerificationError("too many atoms for case enumeration")
        atom_list = [atoms[k] for k in keys]

        assignments = (
            [dict(zip(keys, values)) for values in itertools.product((False, True), repeat=len(keys))]
            if keys
            else [{}]
        )
        matched_any = False
        for assignment in assignments:
            if keys and not assignment_feasible(atom_list, assignment):
                continue
            normalizer = Normalizer(assignment)
            summary_value = normalizer.normalize(summary_term)
            matched = False
            for state, term in path_terms:
                if not self._path_active(state, assignment, normalizer):
                    continue
                body_value = normalizer.normalize(term)
                matched = True
                matched_any = True
                if term_key(body_value) != term_key(summary_value):
                    return (
                        False,
                        f"under {assignment}: body={body_value} summary={summary_value}",
                    )
            if not matched and path_terms:
                # No body path is consistent — assignment infeasible in the
                # body's own terms; nothing to check for it.
                continue
        if path_terms and not matched_any:
            # Every assignment left every path undecided: the atoms of the
            # body never resolved, so nothing was actually proven.
            return False, "no body path could be activated by case analysis"
        return True, ""

    @staticmethod
    def _path_active(
        state: SymState, assignment: dict[str, bool], normalizer: Normalizer
    ) -> bool:
        for atom, expected in state.path:
            value = normalizer.normalize(atom)
            if isinstance(value, Const):
                if bool(value.value) != expected:
                    return False
            else:
                return False  # atom not decided by assignment: treat inactive
        return True

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _lang_const_term(expr: ast.Expr) -> Optional[IRExpr]:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value, "int")
        if isinstance(expr, ast.FloatLit):
            return Const(expr.value, "double")
        if isinstance(expr, ast.BoolLit):
            return Const(expr.value, "boolean")
        if isinstance(expr, ast.StringLit):
            return Const(expr.value, "String")
        if (
            isinstance(expr, ast.FieldAccess)
            and isinstance(expr.base, ast.Name)
            and expr.base.ident in ("Integer", "Double", "Long")
        ):
            from ..lang.stdlib import static_field

            return _const_term(static_field(expr.base.ident, expr.field))
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            inner = FullVerifier._lang_const_term(expr.operand)
            if isinstance(inner, Const) and not isinstance(inner.value, str):
                return Const(-inner.value, inner.kind)
        return None


def _ir_kind(type_name: str) -> str:
    if type_name in ("double", "float"):
        return "double"
    if type_name == "boolean":
        return "boolean"
    if type_name == "String":
        return "String"
    return "int"


def _const_term(value: Any) -> IRExpr:
    if isinstance(value, bool):
        return Const(value, "boolean")
    if isinstance(value, float):
        return Const(value, "double")
    if isinstance(value, int):
        return Const(value, "int")
    if isinstance(value, str):
        return Const(value, "String")
    return Const(0, "int")


def _values_match(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def _same_key(a: OutputBinding, b: OutputBinding) -> bool:
    if a.key is None or b.key is None:
        return False
    return term_key(normalize(a.key)) == term_key(normalize(b.key))


def _rewrite_array_reads(stmt: ast.Stmt, view) -> ast.Stmt:
    """Rewrite ``a[i]`` / ``a.get(i)`` to the element atom named ``a``.

    For array1d views, each source array read at the loop index becomes the
    corresponding element atom so symbolic execution sees a pure function
    of the element.
    """
    import copy

    stmt = copy.deepcopy(stmt)
    index_var = view.index_vars[0]
    inner_var = view.index_vars[1] if len(view.index_vars) > 1 else None
    sources = set(view.sources)

    def rewrite(expr: ast.Expr) -> ast.Expr:
        # 2D matrix read m[i][j] → element atom "v".
        if (
            inner_var is not None
            and isinstance(expr, ast.Index)
            and isinstance(expr.base, ast.Index)
            and isinstance(expr.base.base, ast.Name)
            and expr.base.base.ident in sources
            and isinstance(expr.base.index, ast.Name)
            and expr.base.index.ident == index_var
            and isinstance(expr.index, ast.Name)
            and expr.index.ident == inner_var
        ):
            return ast.Name("v", line=expr.line)
        if (
            isinstance(expr, ast.Index)
            and isinstance(expr.base, ast.Name)
            and expr.base.ident in sources
            and isinstance(expr.index, ast.Name)
            and expr.index.ident == index_var
        ):
            return ast.Name(expr.base.ident, line=expr.line)
        if (
            isinstance(expr, ast.MethodCall)
            and expr.method == "get"
            and isinstance(expr.receiver, ast.Name)
            and expr.receiver.ident in sources
            and len(expr.args) == 1
            and isinstance(expr.args[0], ast.Name)
            and expr.args[0].ident == index_var
        ):
            return ast.Name(expr.receiver.ident, line=expr.line)
        for name, value in vars(expr).items():
            if isinstance(value, ast.Expr):
                setattr(expr, name, rewrite(value))
            elif isinstance(value, list):
                setattr(
                    expr,
                    name,
                    [rewrite(v) if isinstance(v, ast.Expr) else v for v in value],
                )
        return expr

    def rewrite_stmt(node: ast.Stmt) -> None:
        for name, value in vars(node).items():
            if isinstance(value, ast.Expr):
                setattr(node, name, rewrite(value))
            elif isinstance(value, ast.Stmt):
                rewrite_stmt(value)
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if isinstance(item, ast.Expr):
                        new_items.append(rewrite(item))
                    elif isinstance(item, ast.Stmt):
                        rewrite_stmt(item)
                        new_items.append(item)
                    else:
                        new_items.append(item)
                setattr(node, name, new_items)

    rewrite_stmt(stmt)
    return stmt

"""Casper's summary search: findSummary (paper Fig. 5, lines 10-24).

Iterates the incremental grammar-class hierarchy Γ; within each class,
runs CEGIS to propose candidates, verifies each with the full verifier
(theorem-prover substitute), blocks failures (Ω) and successes (Δ) from
regeneration, and stops at the first class that yields verified
summaries.  The result carries the statistics the evaluation reports
(compile time, candidates proposed, theorem-prover failures, grammar
class reached).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..ir.nodes import Summary
from ..lang.analysis.fragments import (
    FragmentAnalysis,
    FragmentFingerprint,
    fingerprint_fragment,
)

if TYPE_CHECKING:
    from ..diagnostics.diagnostic import Diagnostic
    from ..pipeline.cache import SummaryCache
from ..verification.bounded import BoundedCheckConfig, BoundedChecker, ProgramState
from ..verification.prover import FullVerifier, ProofResult
from .cegis import Synthesizer
from .classes import generate_classes, monolithic_class
from .grammar import GrammarBuilder, harvest_paths


@dataclass
class VerifiedSummary:
    """A summary that survived full verification, with proof metadata."""

    summary: Summary
    proof: ProofResult

    @property
    def operation_count(self) -> int:
        return self.summary.operation_count


@dataclass
class SearchResult:
    """Outcome of findSummary for one code fragment."""

    fragment_id: str
    summaries: list[VerifiedSummary] = field(default_factory=list)
    tp_failures: int = 0  # candidates rejected by the theorem prover
    candidates_checked: int = 0
    counterexamples: int = 0
    classes_searched: int = 0
    final_class: Optional[str] = None
    elapsed_seconds: float = 0.0
    failure_reason: Optional[str] = None
    #: True when the summaries came from the content-addressed cache —
    #: no candidates were generated or sent to the theorem prover.
    cache_hit: bool = False
    #: Structured diagnostics produced during the search (REP2xx codes).
    diagnostics: list["Diagnostic"] = field(default_factory=list)
    #: Bounded-refutation states discovered by this run (persisted to the
    #: summary cache so repeat searches re-check them first).
    counterexample_states: list[ProgramState] = field(default_factory=list)
    #: How many cached counterexamples seeded Φ for this run.
    cached_counterexamples_used: int = 0

    @property
    def translated(self) -> bool:
        return bool(self.summaries)


@dataclass
class SearchConfig:
    """Knobs for the summary search."""

    incremental_grammar: bool = True  # Table 3 ablation switch
    max_summaries_per_class: int = 8
    accept_bounded_only: bool = True
    timeout_seconds: float = 90.0
    bounded_config: BoundedCheckConfig = field(default_factory=BoundedCheckConfig)
    extended_states: int = 120
    exhaustive: bool = False  # collect every valid summary (Table 3 mode)


def find_summaries_cached(
    analysis: FragmentAnalysis,
    config: Optional[SearchConfig] = None,
    cache: Optional["SummaryCache"] = None,
    fingerprint: Optional[FragmentFingerprint] = None,
) -> SearchResult:
    """Cache-aware summary search.

    Looks the fragment's content-addressed fingerprint up in ``cache``
    before searching: a warm hit returns the cached verified summaries —
    renamed to this fragment's variables — with ``candidates_checked == 0``
    and ``tp_failures == 0``, since neither CEGIS nor the theorem prover
    ran.  A miss falls through to :func:`find_summaries` and stores the
    completed result (only clean, non-timed-out successes are cached).
    """
    config = config or SearchConfig()
    if cache is None:
        return find_summaries(analysis, config)

    started = time.monotonic()
    if fingerprint is None:
        fingerprint = fingerprint_fragment(analysis)
    hit = cache.lookup(fingerprint, config)
    if hit is not None:
        return SearchResult(
            fragment_id=analysis.fragment.id,
            summaries=hit.summaries,
            final_class=hit.final_class,
            classes_searched=hit.classes_searched,
            cache_hit=True,
            elapsed_seconds=time.monotonic() - started,
        )

    # Near-miss warm start: counterexamples cached from earlier runs on
    # an alpha-equivalent fragment seed Φ, so already-refuted candidate
    # shapes are filtered before the bounded checker prices them.
    seed_states = cache.lookup_counterexamples(fingerprint)
    result = find_summaries(analysis, config, seed_states=seed_states)
    result.cached_counterexamples_used = len(seed_states)
    if result.counterexample_states:
        cache.store_counterexamples(fingerprint, result.counterexample_states)
    if result.translated and result.failure_reason is None:
        cache.store(
            fingerprint,
            config,
            result.summaries,
            final_class=result.final_class,
            classes_searched=result.classes_searched,
        )
    return result


def find_summaries(
    analysis: FragmentAnalysis,
    config: Optional[SearchConfig] = None,
    seed_states: Optional[list[ProgramState]] = None,
) -> SearchResult:
    """Search for verified program summaries of a fragment (Fig. 5).

    ``seed_states`` are cached counterexamples from previous searches on
    an equivalent fragment; they pre-populate the CEGIS example set Φ
    (behavior-preserving: Φ only ever *filters* candidates the bounded
    checker would refute anyway, it never admits one).
    """
    config = config or SearchConfig()
    started = time.monotonic()
    result = SearchResult(fragment_id=analysis.fragment.id)

    try:
        checker = BoundedChecker(analysis, config=config.bounded_config)
    except Exception as exc:  # fragment not checkable at all
        result.failure_reason = f"bounded checker construction failed: {exc}"
        result.elapsed_seconds = time.monotonic() - started
        return result
    if len(checker.states) < 2:
        result.failure_reason = "could not build bounded program states"
        result.elapsed_seconds = time.monotonic() - started
        return result

    verifier = FullVerifier(
        analysis,
        extended_states=config.extended_states,
        accept_bounded_only=config.accept_bounded_only,
    )
    sym_paths = harvest_paths(analysis)

    if config.incremental_grammar:
        classes = generate_classes(analysis)
    else:
        classes = [monolithic_class(analysis)]

    omega: set[int] = set()  # failed verification (Ω)
    delta: list[VerifiedSummary] = []  # verified summaries (Δ)
    delta_hashes: set[int] = set()

    for grammar_class in classes:
        result.classes_searched += 1
        result.final_class = grammar_class.name
        pools = GrammarBuilder(analysis, grammar_class, sym_paths).build()
        synthesizer = Synthesizer(
            analysis,
            grammar_class,
            pools,
            checker,
            seed_states=list(seed_states or []),
        )

        while True:
            if time.monotonic() - started > config.timeout_seconds:
                result.failure_reason = "synthesis timed out"
                result.summaries = delta
                result.candidates_checked += synthesizer.stats.candidates_checked
                result.counterexamples += synthesizer.stats.counterexamples
                result.counterexample_states.extend(synthesizer.new_counterexamples)
                result.elapsed_seconds = time.monotonic() - started
                return result

            blocked = omega | delta_hashes
            candidate = synthesizer.synthesize(blocked)
            if candidate is None and not delta:
                break  # class exhausted, no solution: next grammar class
            if candidate is None:
                break  # class exhausted with solutions in hand
            proof = verifier.verify(candidate)
            if verifier.accepts(proof):
                delta.append(VerifiedSummary(candidate, proof))
                delta_hashes.add(hash(candidate))
                if (
                    not config.exhaustive
                    and len(delta) >= config.max_summaries_per_class
                ):
                    break
            else:
                omega.add(hash(candidate))
                result.tp_failures += 1

        result.candidates_checked += synthesizer.stats.candidates_checked
        result.counterexamples += synthesizer.stats.counterexamples
        result.counterexample_states.extend(synthesizer.new_counterexamples)
        if delta and not config.exhaustive:
            break  # search complete (Fig. 5 line 21)

    result.summaries = delta
    if not delta and result.failure_reason is None:
        result.failure_reason = "no valid summary found in the search space"
    result.elapsed_seconds = time.monotonic() - started
    return result

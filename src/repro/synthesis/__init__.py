"""Program-summary synthesis: grammar generation, CEGIS, and search."""

from .cegis import PartEvaluator, SynthesisStats, Synthesizer
from .classes import generate_classes, monolithic_class
from .enumerator import CandidateEnumerator, ContainerPart, ScalarPart
from .joins import JoinCandidateEnumerator, is_join_summary
from .grammar import (
    ExpressionPools,
    GrammarBuilder,
    GrammarClass,
    harvest_paths,
    reduce_lambda_pool,
)
from .search import (
    SearchConfig,
    SearchResult,
    VerifiedSummary,
    find_summaries,
    find_summaries_cached,
)

__all__ = [
    "CandidateEnumerator",
    "ContainerPart",
    "JoinCandidateEnumerator",
    "is_join_summary",
    "ExpressionPools",
    "GrammarBuilder",
    "GrammarClass",
    "PartEvaluator",
    "ScalarPart",
    "SearchConfig",
    "SearchResult",
    "SynthesisStats",
    "Synthesizer",
    "VerifiedSummary",
    "find_summaries",
    "find_summaries_cached",
    "generate_classes",
    "harvest_paths",
    "monolithic_class",
    "reduce_lambda_pool",
]

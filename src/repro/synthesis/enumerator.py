"""Typed enumeration of candidate program summaries from a grammar class.

The enumerator plays Sketch's role: it walks the search-space grammar
(production rules specialized to the fragment) and produces candidate
summaries in a deterministic order — smaller shapes and harvested terms
first, so that searching grammar classes in hierarchy order biases toward
computationally cheap summaries (paper section 4.2).

Candidates must describe *every* output variable of the fragment (the PS
form of Fig. 3).  Because ``reduce`` applies one λr to all key-groups,
multiple scalar outputs either share a λr under distinct keys or are
packed into one tuple-valued reduction (how StringMatch solution (b)
arises, Fig. 8).

An optional *part filter* — the Φ-consistency test of CEGIS's
``generateCandidate`` — prunes per-output pieces against the current
example states before combination, which is sound because key-groups are
independent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..lang.types import (
    ArrayType,
    JType,
    ListType,
    MapType,
    SetType,
)
from ..ir.nodes import (
    BinOp,
    Const,
    Emit,
    IRExpr,
    MapLambda,
    MapStage,
    OutputBinding,
    Pipeline,
    Proj,
    ReduceLambda,
    ReduceStage,
    Summary,
    TupleExpr,
    Var,
)
from ..lang.analysis.fragments import FragmentAnalysis
from ..verification.algebra import normalize, term_key
from .grammar import (
    ExpressionPools,
    GrammarClass,
    _kind_of_jtype,
    reduce_lambda_pool,
)


@dataclass(frozen=True)
class ScalarPart:
    """A candidate (guard, value, λr) triple for one scalar output."""

    var: str
    guard: Optional[IRExpr]
    value: IRExpr
    reduce_lam: ReduceLambda
    default: object


@dataclass(frozen=True)
class ContainerPart:
    """A candidate (key, value, guard, λr?, finalizer?) for a container."""

    var: str
    key: IRExpr
    value: IRExpr
    guard: Optional[IRExpr]
    reduce_lam: Optional[ReduceLambda]
    finalizer: Optional[tuple[IRExpr, IRExpr]]  # (key expr, value expr) over (k, v)
    container: str
    default: object


PartFilter = Callable[[object], bool]


def default_for_type(jtype: JType) -> object:
    kind = _kind_of_jtype(jtype)
    if kind == "double":
        return 0.0
    if kind == "boolean":
        return False
    if kind == "String":
        return None
    return 0


def container_kind(jtype: JType) -> Optional[str]:
    if isinstance(jtype, ArrayType):
        return "array"
    if isinstance(jtype, MapType):
        return "map"
    if isinstance(jtype, SetType):
        return "set"
    if isinstance(jtype, ListType):
        return "bag"
    return None


class CandidateEnumerator:
    """Enumerates Summary candidates for one fragment + grammar class."""

    def __init__(
        self,
        analysis: FragmentAnalysis,
        grammar_class: GrammarClass,
        pools: ExpressionPools,
        part_filter: Optional[PartFilter] = None,
        max_parts_per_output: int = 24,
        max_combinations: int = 400,
    ):
        self.analysis = analysis
        self.grammar_class = grammar_class
        self.pools = pools
        self.part_filter = part_filter or (lambda part: True)
        self.max_parts_per_output = max_parts_per_output
        self.max_combinations = max_combinations

        self.scalar_outputs: dict[str, JType] = {}
        self.container_outputs: dict[str, JType] = {}
        for name, jtype in analysis.output_vars.items():
            if container_kind(jtype) is None:
                self.scalar_outputs[name] = jtype
            else:
                self.container_outputs[name] = jtype

    # ------------------------------------------------------------------

    def candidates(self) -> Iterator[Summary]:
        """Yield candidate summaries, cheapest shapes first."""
        source = self.analysis.view.sources[0]
        emitted: set[int] = set()

        for shape in self.grammar_class.shapes:
            for summary in self._candidates_for_shape(shape, source):
                marker = hash(summary)
                if marker in emitted:
                    continue
                emitted.add(marker)
                yield summary

    def _candidates_for_shape(self, shape: str, source: str) -> Iterator[Summary]:
        if self.scalar_outputs and self.container_outputs:
            return iter(())  # mixed outputs: not expressible in one pipeline
        if self.scalar_outputs:
            if shape != "mr":
                return iter(())
            chained: list[Iterator[Summary]] = []
            # Separate-keyed emits need one emit per output (the class's
            # emit bound); tuple packing needs the tuple-width bound —
            # exactly the features that define the hierarchy (§4.2).
            if len(self.scalar_outputs) <= self.grammar_class.max_emits:
                chained.append(self._scalar_candidates(source))
            if 2 <= len(self.scalar_outputs) <= self.grammar_class.max_tuple:
                chained.append(self._tuple_candidates(source))
            return itertools.chain(*chained)
        if self.container_outputs:
            return self._container_candidates(shape, source)
        return iter(())

    # ------------------------------------------------------------------
    # Scalar outputs: one guarded emit per output, shared λr

    def _scalar_parts(self, var: str, jtype: JType) -> list[ScalarPart]:
        kind = _kind_of_jtype(jtype)
        values = self.pools.pool_for(kind)
        guards: list[Optional[IRExpr]] = [None]
        if self.grammar_class.allow_guards:
            guards.extend(self.pools.pool_for("boolean")[:16])
        reduce_ops = reduce_lambda_pool(
            kind, self.analysis.scan.operators, self.analysis.scan.methods
        )
        default = self.analysis.prelude_constants.get(var, default_for_type(jtype))
        parts: list[ScalarPart] = []
        for reduce_lam in reduce_ops:
            for guard in guards:
                for value in values:
                    part = ScalarPart(var, guard, value, reduce_lam, default)
                    if not self.part_filter(part):
                        continue
                    parts.append(part)
                    if len(parts) >= self.max_parts_per_output:
                        return parts
        return parts

    def _scalar_candidates(self, source: str) -> Iterator[Summary]:
        per_output: list[list[ScalarPart]] = []
        for var, jtype in self.scalar_outputs.items():
            parts = self._scalar_parts(var, jtype)
            if not parts:
                return
            per_output.append(parts)

        count = 0
        for combo in _sum_ordered_product(per_output, self.max_combinations):
            # All parts must share one λr (a pipeline has a single reduce).
            lam_keys = {term_key(normalize(p.reduce_lam.body)) for p in combo}
            if len(lam_keys) != 1:
                continue
            params = tuple(self.analysis.view.field_names)
            emits = tuple(
                Emit(key=Const(p.var, "String"), value=p.value, cond=p.guard)
                for p in combo
            )
            stages = (
                MapStage(MapLambda(params, emits)),
                ReduceStage(combo[0].reduce_lam),
            )
            outputs = tuple(
                OutputBinding(
                    var=p.var,
                    kind="keyed",
                    key=Const(p.var, "String"),
                    default=p.default,
                )
                for p in combo
            )
            yield Summary(Pipeline(source, stages), outputs)
            count += 1
            if count >= self.max_combinations:
                return

    # ------------------------------------------------------------------
    # Tuple-packed scalars: one emit, tuple value, componentwise λr

    def _tuple_candidates(self, source: str) -> Iterator[Summary]:
        names = list(self.scalar_outputs)
        if not 2 <= len(names) <= self.grammar_class.max_tuple:
            return
        component_parts: list[list[ScalarPart]] = []
        for var, jtype in self.scalar_outputs.items():
            parts = self._scalar_parts(var, jtype)
            if not parts:
                return
            component_parts.append(parts)

        count = 0
        for combo in _sum_ordered_product(component_parts, self.max_combinations):
            # A shared (possibly absent) guard is required for one emit.
            guard_keys = {
                term_key(normalize(p.guard)) if p.guard is not None else None
                for p in combo
            }
            if len(guard_keys) != 1:
                continue
            guard = combo[0].guard
            value = TupleExpr(tuple(p.value for p in combo))
            v1, v2 = Var("v1", "tuple"), Var("v2", "tuple")
            body = TupleExpr(
                tuple(
                    _apply_reduce(p.reduce_lam, Proj(v1, i), Proj(v2, i))
                    for i, p in enumerate(combo)
                )
            )
            params = tuple(self.analysis.view.field_names)
            stages = (
                MapStage(
                    MapLambda(
                        params,
                        (Emit(key=Const("__t", "String"), value=value, cond=guard),),
                    )
                ),
                ReduceStage(ReduceLambda(body)),
            )
            outputs = tuple(
                OutputBinding(
                    var=p.var,
                    kind="keyed",
                    key=Const("__t", "String"),
                    default=p.default,
                    project=i,
                )
                for i, p in enumerate(combo)
            )
            yield Summary(Pipeline(source, stages), outputs)
            count += 1
            if count >= self.max_combinations // 4:
                return

    # ------------------------------------------------------------------
    # Container outputs

    def _container_parts(
        self, var: str, jtype: JType, shape: str
    ) -> list[ContainerPart]:
        container = container_kind(jtype)
        assert container is not None
        element_type = _container_element_type(jtype)
        kind = _kind_of_jtype(element_type)
        default = default_for_type(element_type)
        values = self.pools.pool_for(kind if kind != "other" else "int")
        if kind == "other" or (
            self.analysis.view.element_class is not None and container in ("bag", "set")
        ):
            # Pass-through of the whole input element (selection shapes).
            values = [Var("__element", "other"), *values]
        keys = self.pools.key_pool()
        if container == "set" and kind == "other":
            keys = [Var("__element", "other"), *keys]
        guards: list[Optional[IRExpr]] = [None]
        if self.grammar_class.allow_guards:
            guards.extend(self.pools.pool_for("boolean")[:12])
        reduce_ops: list[Optional[ReduceLambda]]
        if shape == "m":
            reduce_ops = [None]
        else:
            reduce_ops = list(
                reduce_lambda_pool(
                    kind if kind != "other" else "int",
                    self.analysis.scan.operators,
                    self.analysis.scan.methods,
                )
            )
        finalizers: list[Optional[tuple[IRExpr, IRExpr]]] = [None]
        if shape == "mrm":
            finalizers = [None, *self._finalizer_pool()]

        if container == "set":
            # Sets: the *key* is the element; value is a placeholder.
            parts = []
            for guard in guards:
                for key in keys:
                    part = ContainerPart(
                        var, key, Const(1, "int"), guard, None, None, "set", None
                    )
                    if self.part_filter(part):
                        parts.append(part)
                    if len(parts) >= self.max_parts_per_output:
                        return parts
            return parts

        if container == "bag":
            parts = []
            for guard in guards:
                for value in values:
                    part = ContainerPart(
                        var,
                        Const(0, "int"),
                        value,
                        guard,
                        None,
                        None,
                        "bag",
                        None,
                    )
                    if self.part_filter(part):
                        parts.append(part)
                    if len(parts) >= self.max_parts_per_output:
                        return parts
            return parts

        parts = []
        for reduce_lam in reduce_ops:
            for finalizer in finalizers:
                if shape == "mrm" and finalizer is None:
                    continue  # mrm must use its final stage
                for guard in guards:
                    for key in keys:
                        for value in values:
                            part = ContainerPart(
                                var,
                                key,
                                value,
                                guard,
                                reduce_lam,
                                finalizer,
                                container,
                                default if container == "array" else None,
                            )
                            if not self.part_filter(part):
                                continue
                            parts.append(part)
                            if len(parts) >= self.max_parts_per_output:
                                return parts
        return parts

    def _finalizer_pool(self) -> list[tuple[IRExpr, IRExpr]]:
        """Final-stage (key, value) candidates over params (k, v)."""
        v = Var("v", "double")
        k = Var("k", "int")
        results: list[tuple[IRExpr, IRExpr]] = []
        scalars: list[IRExpr] = []
        for name, jtype in self.analysis.input_vars.items():
            kind = _kind_of_jtype(jtype)
            if kind in ("int", "double") and name not in self.analysis.view.sources:
                scalars.append(Var(name, kind))
        for value, jtype in self.analysis.scan.constants:
            kind = _kind_of_jtype(jtype)
            if kind in ("int", "double") and value not in (0, 0.0):
                scalars.append(Const(value, kind))
        for scalar in scalars:
            for op in ("/", "*", "-", "+"):
                if op in self.analysis.scan.operators:
                    results.append((k, BinOp(op, v, scalar)))
        results.append((k, v))
        return results

    def _container_candidates(self, shape: str, source: str) -> Iterator[Summary]:
        per_output: list[list[ContainerPart]] = []
        for var, jtype in self.container_outputs.items():
            parts = self._container_parts(var, jtype, shape)
            if not parts:
                return
            per_output.append(parts)

        count = 0
        for combo in _sum_ordered_product(per_output, self.max_combinations):
            if len(combo) > 1:
                # Multiple containers share one pipeline only with same λr
                # and finalizer — rare; require singletons for now.
                continue
            part = combo[0]
            params = tuple(self.analysis.view.field_names)
            if part.container == "set":
                emits = (Emit(key=part.key, value=Const(1, "int"), cond=part.guard),)
            else:
                emits = (Emit(key=part.key, value=part.value, cond=part.guard),)
            stages: list = [MapStage(MapLambda(params, emits))]
            if part.reduce_lam is not None:
                stages.append(ReduceStage(part.reduce_lam))
            if part.finalizer is not None:
                fin_key, fin_value = part.finalizer
                stages.append(
                    MapStage(
                        MapLambda(("k", "v"), (Emit(key=fin_key, value=fin_value),))
                    )
                )
            binding = OutputBinding(
                var=part.var,
                kind="whole",
                container=part.container,
                default=part.default,
            )
            yield Summary(Pipeline(source, tuple(stages)), (binding,))
            count += 1
            if count >= self.max_combinations:
                return


def _apply_reduce(lam: ReduceLambda, left: IRExpr, right: IRExpr) -> IRExpr:
    from ..verification.algebra import substitute

    return substitute(lam.body, {lam.params[0]: left, lam.params[1]: right})


def _container_element_type(jtype: JType) -> JType:
    if isinstance(jtype, ArrayType):
        return jtype.element
    if isinstance(jtype, ListType):
        return jtype.element
    if isinstance(jtype, SetType):
        return jtype.element
    if isinstance(jtype, MapType):
        return jtype.value
    return jtype


def _sum_ordered_product(pools: list[list], cap: int) -> Iterator[tuple]:
    """Cartesian product ordered by total index sum (cheap combos first)."""
    if not pools:
        return
    if len(pools) == 1:
        for item in pools[0]:
            yield (item,)
        return
    sizes = [len(p) for p in pools]
    max_sum = sum(s - 1 for s in sizes)
    emitted = 0
    for total in range(max_sum + 1):
        for combo_indices in _compositions(total, sizes):
            yield tuple(pool[i] for pool, i in zip(pools, combo_indices))
            emitted += 1
            if emitted >= cap:
                return


def _compositions(total: int, sizes: list[int]) -> Iterator[tuple[int, ...]]:
    """All index tuples with the given sum, each bounded by its pool size."""
    if len(sizes) == 1:
        if total < sizes[0]:
            yield (total,)
        return
    for first in range(min(total, sizes[0] - 1) + 1):
        for rest in _compositions(total - first, sizes[1:]):
            yield (first, *rest)

"""The incremental grammar-class hierarchy (paper section 4.2, Fig. 6).

``generate_classes`` partitions the search space into classes ordered by
syntactic features — number of MapReduce operations, emits per map stage,
key/value sizes, and expression length — such that every summary
expressible in class Gᵢ is also expressible in Gⱼ for j > i.  Searching
classes in order biases toward computationally cheaper summaries and lets
the search stop early (Table 3 measures the effect of disabling this).
"""

from __future__ import annotations

from ..lang.analysis.fragments import FragmentAnalysis
from .grammar import GrammarClass


def generate_classes(analysis: FragmentAnalysis) -> list[GrammarClass]:
    """Build the Γ hierarchy for a fragment (Fig. 5 line 12).

    Join-shaped fragments (two/three-dataset nests recognized by the
    analyzer) search a dedicated JOIN branch of the hierarchy: the stage
    shapes carry a ``j`` (tagged-pair join) between map stages, tuple
    widths must cover whole-relation value tuples, and the classes are
    still ordered cheap-first (unguarded post-join emits before guarded
    ones, shallower expressions before deeper) so the incremental search
    keeps its early-stop bias.
    """
    if analysis.join is not None:
        return [
            GrammarClass(
                name="GJ1",
                shapes=("mjm", "mjmr"),
                max_emits=4,
                max_tuple=8,
                max_depth=2,
                allow_guards=False,
            ),
            GrammarClass(
                name="GJ2",
                shapes=("mjm", "mjmr"),
                max_emits=6,
                max_tuple=12,
                max_depth=3,
                allow_guards=True,
            ),
        ]
    classes = [
        GrammarClass(
            name="G1",
            shapes=("m",),
            max_emits=1,
            max_tuple=1,
            max_depth=2,
            allow_guards=False,
        ),
        GrammarClass(
            name="G2",
            shapes=("m", "mr"),
            max_emits=1,
            max_tuple=1,
            max_depth=2,
            allow_guards=True,
        ),
        GrammarClass(
            name="G3",
            shapes=("m", "mr", "mrm"),
            max_emits=2,
            max_tuple=2,
            max_depth=2,
            allow_guards=True,
        ),
        GrammarClass(
            name="G4",
            shapes=("m", "mr", "mrm"),
            max_emits=2,
            max_tuple=4,
            max_depth=3,
            allow_guards=True,
        ),
        GrammarClass(
            name="G5",
            shapes=("m", "mr", "mrm"),
            max_emits=6,
            max_tuple=6,
            max_depth=3,
            allow_guards=True,
        ),
    ]
    return classes


def monolithic_class(analysis: FragmentAnalysis) -> GrammarClass:
    """The union of the hierarchy as one class — the Table 3 ablation.

    Searching this single class exhaustively enumerates (and verifies)
    every valid summary in the whole space instead of stopping at the
    first class that yields one.
    """
    if analysis.join is not None:
        return GrammarClass(
            name="GJ_all",
            shapes=("mjm", "mjmr"),
            max_emits=6,
            max_tuple=12,
            max_depth=3,
            allow_guards=True,
        )
    return GrammarClass(
        name="G_all",
        shapes=("m", "mr", "mrm"),
        max_emits=6,
        max_tuple=6,
        max_depth=3,
        allow_guards=True,
    )


def class_delta(previous: list[GrammarClass], current: GrammarClass) -> GrammarClass:
    """Identity helper kept for API clarity: search re-enumerates each
    class fully; already-seen candidates are skipped via Ω/Δ blocking
    (section 4.1), which is how the paper avoids re-verifying them."""
    return current

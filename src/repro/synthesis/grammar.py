"""Search-space grammar generation (paper sections 3.2, 4.2, Appendix D).

A grammar is *specialized to the code fragment*: its production rules use
exactly the operators, constants, library methods, and variables that the
program analyzer found in the input code, plus terms *harvested* from
symbolic execution of the loop body (Casper's analyzer likewise seeds its
Sketch generators from the fragment — Appendix D shows the Q6 grammar
containing only that query's constants and fields).

A :class:`GrammarClass` finitizes the space with recursive bounds — number
of MapReduce operations, number of emits per λm, key/value tuple widths,
and expression depth (the four features of section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import VerificationError
from ..lang.analysis.fragments import FragmentAnalysis
from ..ir.nodes import (
    BinOp,
    CallFn,
    Cond,
    Const,
    IRExpr,
    ReduceLambda,
    TupleExpr,
    UnOp,
    Var,
    walk_expr,
)
from ..verification.algebra import normalize, term_key
from ..verification.symexec import SymState


@dataclass(frozen=True)
class GrammarClass:
    """One class in the incremental grammar hierarchy (Fig. 6).

    ``shapes`` lists allowed stage sequences ("m", "mr", "mrm");
    ``max_emits`` bounds emits per map stage; ``max_tuple`` bounds key and
    value tuple widths (1 = scalars only); ``max_depth`` bounds expression
    size; ``allow_guards`` enables conditional emits.
    """

    name: str
    shapes: tuple[str, ...]
    max_emits: int = 1
    max_tuple: int = 1
    max_depth: int = 2
    allow_guards: bool = False
    compositional: bool = True  # include depth-bounded composed expressions

    def subsumes(self, other: "GrammarClass") -> bool:
        return (
            set(other.shapes) <= set(self.shapes)
            and other.max_emits <= self.max_emits
            and other.max_tuple <= self.max_tuple
            and other.max_depth <= self.max_depth
            and (self.allow_guards or not other.allow_guards)
        )


_NUMERIC_KINDS = ("int", "double")


@dataclass
class ExpressionPools:
    """Typed candidate expression pools derived from a fragment."""

    numeric: list[IRExpr] = field(default_factory=list)
    boolean: list[IRExpr] = field(default_factory=list)
    string: list[IRExpr] = field(default_factory=list)
    keys: list[IRExpr] = field(default_factory=list)
    harvested_numeric: list[IRExpr] = field(default_factory=list)
    harvested_boolean: list[IRExpr] = field(default_factory=list)
    harvested_keys: list[IRExpr] = field(default_factory=list)
    harvested_string: list[IRExpr] = field(default_factory=list)

    def pool_for(self, kind: str, harvested_first: bool = True) -> list[IRExpr]:
        if kind == "boolean":
            primary, secondary = self.harvested_boolean, self.boolean
        elif kind == "String":
            primary, secondary = self.harvested_string, self.string
        else:
            primary, secondary = self.harvested_numeric, self.numeric
        ordered = primary + secondary if harvested_first else secondary + primary
        return _dedupe(ordered)

    def key_pool(self) -> list[IRExpr]:
        return _dedupe(self.harvested_keys + self.keys)


def _dedupe(exprs: list[IRExpr]) -> list[IRExpr]:
    seen: set[str] = set()
    result = []
    for expr in exprs:
        key = term_key(normalize(expr))
        if key not in seen:
            seen.add(key)
            result.append(expr)
    return result


def _kind_of_jtype(jtype) -> str:
    name = getattr(jtype, "name", None)
    if name in ("double", "float"):
        return "double"
    if name == "boolean":
        return "boolean"
    if name == "String":
        return "String"
    if name in ("int", "long", "char"):
        return "int"
    return "other"


_METHOD_FN = {
    "Math.abs": ("abs", 1),
    "Math.min": ("min", 2),
    "Math.max": ("max", 2),
    "Math.sqrt": ("sqrt", 1),
    "Math.pow": ("pow", 2),
    "Math.exp": ("exp", 1),
    "Math.log": ("log", 1),
    "Math.floor": ("floor", 1),
    "Math.ceil": ("ceil", 1),
}

_ARITH_OPS = ("+", "-", "*", "/", "%")
_COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")


class GrammarBuilder:
    """Builds expression pools for a fragment under a grammar class."""

    def __init__(
        self,
        analysis: FragmentAnalysis,
        grammar_class: GrammarClass,
        sym_paths: Optional[list[SymState]] = None,
        pool_cap: int = 160,
    ):
        self.analysis = analysis
        self.grammar_class = grammar_class
        self.sym_paths = sym_paths or []
        self.pool_cap = pool_cap

    # ------------------------------------------------------------------

    def build(self) -> ExpressionPools:
        pools = ExpressionPools()
        self._add_atoms(pools)
        self._add_harvested(pools)
        if self.grammar_class.compositional:
            self._compose(pools)
        pools.numeric = pools.numeric[: self.pool_cap]
        pools.boolean = pools.boolean[: self.pool_cap]
        pools.string = pools.string[: self.pool_cap]
        return pools

    # ------------------------------------------------------------------

    def _atom_vars(self) -> list[tuple[str, str]]:
        """(name, kind) for element atoms then broadcast scalar inputs."""
        atoms: list[tuple[str, str]] = []
        view = self.analysis.view
        for fld in view.element_fields:
            atoms.append((fld.name, _kind_of_jtype(fld.jtype)))
        for name, jtype in self.analysis.input_vars.items():
            if name in view.sources:
                continue
            kind = _kind_of_jtype(jtype)
            if kind != "other":
                atoms.append((name, kind))
        for name, value in self.analysis.prelude_constants.items():
            if name in self.analysis.output_vars:
                continue
            if isinstance(value, bool):
                atoms.append((name, "boolean"))
            elif isinstance(value, (int, float)):
                atoms.append((name, "double" if isinstance(value, float) else "int"))
            elif isinstance(value, str):
                atoms.append((name, "String"))
        return atoms

    def _add_atoms(self, pools: ExpressionPools) -> None:
        view = self.analysis.view
        for name, kind in self._atom_vars():
            expr = Var(name, kind)
            if kind in _NUMERIC_KINDS:
                pools.numeric.append(expr)
            elif kind == "boolean":
                pools.boolean.append(expr)
            elif kind == "String":
                pools.string.append(expr)
        # Constants harvested by the scan, plus small synthesizer "holes".
        for value, jtype in self.analysis.scan.constants:
            kind = _kind_of_jtype(jtype)
            if kind in _NUMERIC_KINDS:
                pools.numeric.append(Const(value, kind))
            elif kind == "String":
                pools.string.append(Const(value, "String"))
        for hole in (0, 1):
            pools.numeric.append(Const(hole, "int"))
        # Key candidates: index atoms, then data-valued atoms.
        for name in view.index_vars:
            pools.keys.append(Var(name, "int"))
        for fld in view.element_fields:
            kind = _kind_of_jtype(fld.jtype)
            if fld.name not in view.index_vars and kind in ("int", "String"):
                pools.keys.append(Var(fld.name, kind))

    # ------------------------------------------------------------------

    def _add_harvested(self, pools: ExpressionPools) -> None:
        """Mine symbolic-execution paths for candidate terms.

        The update term of an accumulator on some path typically has shape
        ``λr(acc, value)``; stripping the accumulator yields the emitted
        value candidate.  Path conditions (with accumulator-dependent atoms
        dropped) are prime guard candidates.
        """
        acc_prefix = "__acc_"
        cell_prefix = "__cell("

        def acc_free(expr: IRExpr) -> bool:
            return not any(
                isinstance(node, Var)
                and (node.name.startswith(acc_prefix) or node.name.startswith(cell_prefix))
                for node in walk_expr(expr)
            )

        for state in self.sym_paths:
            # Guards from path conditions.
            atoms = [
                (atom if value else UnOp("!", atom))
                for atom, value in state.path
                if acc_free(atom)
            ]
            for literal in atoms:
                pools.harvested_boolean.append(normalize(literal))
            if len(atoms) > 1:
                conj: IRExpr = atoms[0]
                for literal in atoms[1:]:
                    conj = BinOp("&&", conj, literal)
                pools.harvested_boolean.append(normalize(conj))
            # Values from accumulator updates and container writes.  The
            # executor keys updated scalars by the *output variable* name
            # (their initial binding is the __acc_ symbol).
            for name, term in state.scalars.items():
                if name not in self.analysis.output_vars:
                    continue
                for candidate in self._value_candidates(term, acc_free):
                    self._file_by_kind(pools, candidate)
            for writes in state.writes.values():
                for key_term, value_term in writes:
                    if acc_free(key_term):
                        pools.harvested_keys.append(normalize(key_term))
                    for candidate in self._value_candidates(value_term, acc_free):
                        self._file_by_kind(pools, candidate)
            for appends in state.appends.values():
                for value_term in appends:
                    if acc_free(value_term):
                        normalized = normalize(value_term)
                        pools.harvested_keys.append(normalized)
                        self._file_by_kind(pools, normalized)

    def _value_candidates(self, term: IRExpr, acc_free) -> list[IRExpr]:
        """Acc-free subterms of an update term, largest first."""
        candidates: list[IRExpr] = []
        for node in walk_expr(term):
            if isinstance(node, (Const,)):
                continue
            if acc_free(node):
                candidates.append(normalize(node))
        # Also the whole term when acc-free (map-only shapes).
        return candidates

    @staticmethod
    def _file_by_kind(pools: ExpressionPools, expr: IRExpr) -> None:
        kind = _guess_kind(expr)
        if kind == "boolean":
            pools.harvested_boolean.append(expr)
        elif kind == "String":
            pools.harvested_string.append(expr)
        elif kind in _NUMERIC_KINDS:
            pools.harvested_numeric.append(expr)

    # ------------------------------------------------------------------

    def _compose(self, pools: ExpressionPools) -> None:
        """Depth-bounded composition using the fragment's own operators."""
        scan = self.analysis.scan
        depth = self.grammar_class.max_depth
        arith = [op for op in _ARITH_OPS if op in scan.operators]
        if not arith:
            arith = ["+"]
        compares = [op for op in _COMPARE_OPS if op in scan.operators]
        fns = [
            _METHOD_FN[m] for m in sorted(scan.methods) if m in _METHOD_FN
        ]

        level = _dedupe(pools.harvested_numeric + pools.numeric)
        numeric_all = list(level)
        for _ in range(1, depth):
            new_level: list[IRExpr] = []
            base = numeric_all[:24]
            for op in arith:
                for i, a in enumerate(base):
                    for j, b in enumerate(base):
                        if op in ("+", "*") and term_key(a) > term_key(b):
                            continue  # commutative symmetry pruning
                        if _trivial(op, a, b):
                            continue
                        new_level.append(BinOp(op, a, b))
                        if len(new_level) > self.pool_cap:
                            break
                    if len(new_level) > self.pool_cap:
                        break
            for fn_name, arity in fns:
                if arity == 1:
                    for a in base[:16]:
                        new_level.append(CallFn(fn_name, (a,)))
                else:
                    for i, a in enumerate(base[:12]):
                        for b in base[: i + 1]:
                            new_level.append(CallFn(fn_name, (a, b)))
            new_level = _dedupe(new_level)[: self.pool_cap]
            numeric_all = _dedupe(numeric_all + new_level)
            level = new_level
        pools.numeric = _dedupe(pools.numeric + numeric_all)[: self.pool_cap * 2]

        if compares:
            bools: list[IRExpr] = []
            base = _dedupe(pools.harvested_numeric + pools.numeric)[:20]
            for op in compares:
                for a in base:
                    for b in base:
                        if term_key(a) == term_key(b):
                            continue
                        bools.append(BinOp(op, a, b))
                        if len(bools) > self.pool_cap:
                            break
                    if len(bools) > self.pool_cap:
                        break
            pools.boolean = _dedupe(pools.boolean + bools)[: self.pool_cap]

        if pools.string and "==" in scan.operators or "equals" in scan.methods:
            eqs: list[IRExpr] = []
            strings = _dedupe(pools.harvested_string + pools.string)[:10]
            for i, a in enumerate(strings):
                for b in strings[i + 1 :]:
                    eqs.append(BinOp("==", a, b))
            pools.boolean = _dedupe(pools.boolean + eqs)[: self.pool_cap]


def _trivial(op: str, a: IRExpr, b: IRExpr) -> bool:
    if isinstance(b, Const) and b.value in (0, 0.0) and op in ("+", "-", "/", "%"):
        return True
    if isinstance(a, Const) and a.value in (0, 0.0) and op in ("+",):
        return True
    if isinstance(b, Const) and b.value in (1, 1.0) and op in ("*", "/", "%"):
        return True
    if isinstance(a, Const) and a.value in (1, 1.0) and op == "*":
        return True
    if isinstance(a, Const) and isinstance(b, Const):
        return True  # constant-constant folds to another constant
    return False


def _guess_kind(expr: IRExpr) -> str:
    if isinstance(expr, Const):
        return expr.kind
    if isinstance(expr, Var):
        return expr.kind
    if isinstance(expr, BinOp):
        if expr.op in ("&&", "||") or expr.op in _COMPARE_OPS:
            return "boolean"
        left = _guess_kind(expr.left)
        right = _guess_kind(expr.right)
        if "String" in (left, right):
            return "String"
        if "double" in (left, right):
            return "double"
        return "int"
    if isinstance(expr, UnOp):
        return "boolean" if expr.op == "!" else _guess_kind(expr.operand)
    if isinstance(expr, Cond):
        return _guess_kind(expr.then)
    if isinstance(expr, CallFn):
        if expr.name in ("date_before", "date_after", "str_contains", "str_starts"):
            return "boolean"
        if expr.name in ("str_lower", "str_concat"):
            return "String"
        if expr.name in ("sqrt", "pow", "exp", "log", "floor", "ceil", "to_double", "lookup"):
            return "double"
        if expr.args:
            return _guess_kind(expr.args[0])
        return "double"
    if isinstance(expr, TupleExpr):
        return "tuple"
    return "other"


def reduce_lambda_pool(kind: str, scan_operators: set[str], scan_methods: set[str]) -> list[ReduceLambda]:
    """Candidate λr bodies for a value kind, seeded by the fragment's ops."""
    v1, v2 = Var("v1", kind), Var("v2", kind)
    lambdas: list[ReduceLambda] = []
    if kind in _NUMERIC_KINDS:
        if "+" in scan_operators or "-" in scan_operators or not scan_operators:
            lambdas.append(ReduceLambda(BinOp("+", v1, v2)))
        if "Math.min" in scan_methods or "<" in scan_operators or "<=" in scan_operators:
            lambdas.append(ReduceLambda(CallFn("min", (v1, v2))))
        if "Math.max" in scan_methods or ">" in scan_operators or ">=" in scan_operators:
            lambdas.append(ReduceLambda(CallFn("max", (v1, v2))))
        if "*" in scan_operators:
            lambdas.append(ReduceLambda(BinOp("*", v1, v2)))
        if not lambdas:
            lambdas.append(ReduceLambda(BinOp("+", v1, v2)))
    elif kind == "boolean":
        lambdas.append(ReduceLambda(BinOp("||", v1, v2)))
        lambdas.append(ReduceLambda(BinOp("&&", v1, v2)))
    elif kind == "String":
        lambdas.append(ReduceLambda(v2))  # keep-last
    return lambdas


def harvest_paths(analysis: FragmentAnalysis) -> list[SymState]:
    """Symbolically execute the fragment's (innermost) loop body.

    Returns an empty list when the body is outside the symbolic executor's
    fragment (the grammar then falls back to purely compositional pools).

    Join fragments harvest from the innermost accumulation body (wrapped
    in its residual guards, with ``binder.field`` reads rewritten to the
    relation field atoms): the update terms seed post-join value
    candidates and the residual conditions seed post-join guards.
    """
    from ..verification.prover import FullVerifier

    verifier = FullVerifier(analysis)
    view = analysis.view
    loop = analysis.fragment.loop
    if analysis.join is not None:
        from ..lang.analysis.joins import rewrite_side_fields

        body = [
            rewrite_side_fields(s, analysis.join)
            for s in analysis.join.guarded_body
        ]
        containers = {
            name
            for name, jtype in analysis.output_vars.items()
            if jtype.is_collection() or str(jtype).startswith("Map")
        }
        scalar_accs = {
            name: Var(f"__acc_{name}", "double")
            for name in analysis.output_vars
            if name not in containers
        }
        try:
            return verifier._symexec_body(body, scalar_accs, containers)
        except Exception:
            return []
    try:
        body = verifier._loop_body(loop)
        if view.kind == "array2d":
            # Use the innermost body plus suffix statements.
            from ..lang import ast_nodes as ast

            inner = next((s for s in body if isinstance(s, ast.For)), None)
            if inner is not None:
                inner_body = verifier._loop_body(inner)
                containers = {
                    name
                    for name, jtype in analysis.output_vars.items()
                    if jtype.is_collection() or str(jtype).startswith("Map")
                }
                # Accumulators: per-row locals declared in the outer body
                # plus scalar outputs carried from the fragment prelude.
                acc_names = [s.name for s in body if isinstance(s, ast.VarDecl)]
                acc_names += [
                    name for name in analysis.output_vars if name not in containers
                ]
                acc_bindings = {
                    name: Var(f"__acc_{name}", "double") for name in acc_names
                }
                paths = []
                paths.extend(
                    verifier._symexec_body(inner_body, acc_bindings, containers)
                )
                suffix = [
                    s
                    for s in body
                    if not isinstance(s, (ast.For, ast.VarDecl))
                ]
                if suffix:
                    paths.extend(
                        verifier._symexec_body(suffix, acc_bindings, containers)
                    )
                return paths
        containers = {
            name
            for name, jtype in analysis.output_vars.items()
            if jtype.is_collection() or str(jtype).startswith("Map")
        }
        scalar_accs = {
            name: Var(f"__acc_{name}", "double")
            for name in analysis.output_vars
            if name not in containers
        }
        return verifier._symexec_body(body, scalar_accs, containers)
    except VerificationError:
        return []
    except Exception:
        return []

"""CEGIS: counter-example guided inductive synthesis (paper Fig. 5, lines 1-8).

``synthesize`` iterates a candidate generator against a bounded model
checker: candidates must be consistent with the accumulated example states
Φ; a candidate that fails bounded verification contributes the failing
state as a counter-example and the search restarts with the enlarged Φ.

The Φ-consistency test is implemented compositionally by
:class:`PartEvaluator` — each per-output piece of a summary is checked
against the expected outputs on every state in Φ before combination
(sound because reduce key-groups are independent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import InterpreterError, IRError
from ..lang.values import values_equal
from ..ir.eval import eval_expr
from ..ir.nodes import Summary
from ..lang.analysis.fragments import FragmentAnalysis
from ..verification.bounded import (
    BoundedChecker,
    ProgramState,
    run_sequential_fragment,
)
from .enumerator import CandidateEnumerator, ContainerPart, ScalarPart
from .grammar import ExpressionPools, GrammarClass


@dataclass
class _CachedState:
    """A Φ state with its materialized dataset and expected outputs."""

    state: ProgramState
    elements: list[dict[str, Any]]
    globals_env: dict[str, Any]
    expected: dict[str, Any]
    output_sizes: dict[str, int]


class PartEvaluator:
    """Checks candidate parts against the example states Φ."""

    def __init__(self, analysis: FragmentAnalysis, states: list[ProgramState]):
        self.analysis = analysis
        self.cached: list[_CachedState] = []
        for state in states:
            try:
                run = run_sequential_fragment(analysis, state)
            except InterpreterError:
                continue
            elements = analysis.view.materialize(run.globals_env)
            from ..verification.bounded import summary_globals

            globals_env = summary_globals(analysis, run.globals_env)
            self.cached.append(
                _CachedState(
                    state=state,
                    elements=elements,
                    globals_env=globals_env,
                    expected=run.outputs,
                    output_sizes=run.output_sizes,
                )
            )

    # ------------------------------------------------------------------

    def __call__(self, part: object) -> bool:
        try:
            if isinstance(part, ScalarPart):
                return all(self._scalar_ok(part, s) for s in self.cached)
            if isinstance(part, ContainerPart):
                return all(self._container_ok(part, s) for s in self.cached)
        except IRError:
            return False
        return True

    def _scalar_ok(self, part: ScalarPart, cached: _CachedState) -> bool:
        acc: Any = None
        v1, v2 = part.reduce_lam.params
        for element in cached.elements:
            env = {**cached.globals_env, **element}
            if part.guard is not None and not eval_expr(part.guard, env):
                continue
            value = eval_expr(part.value, env)
            if acc is None:
                acc = value
            else:
                acc = eval_expr(
                    part.reduce_lam.body, {**cached.globals_env, v1: acc, v2: value}
                )
        result = part.default if acc is None else acc
        return values_equal(result, cached.expected.get(part.var))

    def _container_ok(self, part: ContainerPart, cached: _CachedState) -> bool:
        expected = cached.expected.get(part.var)
        env_base = cached.globals_env

        if part.container == "bag":
            got_bag: list[Any] = []
            for element in cached.elements:
                env = {**env_base, **element}
                if part.guard is not None and not eval_expr(part.guard, env):
                    continue
                got_bag.append(eval_expr(part.value, env))
            return values_equal(got_bag, expected)

        if part.container == "set":
            got_set: set[Any] = set()
            for element in cached.elements:
                env = {**env_base, **element}
                if part.guard is not None and not eval_expr(part.guard, env):
                    continue
                got_set.add(eval_expr(part.key, env))
            return values_equal(got_set, expected)

        result_map: dict[Any, Any] = {}
        v1, v2 = ("v1", "v2")
        if part.reduce_lam is not None:
            v1, v2 = part.reduce_lam.params
        for element in cached.elements:
            env = {**env_base, **element}
            if part.guard is not None and not eval_expr(part.guard, env):
                continue
            key = eval_expr(part.key, env)
            value = eval_expr(part.value, env)
            if part.reduce_lam is not None and key in result_map:
                result_map[key] = eval_expr(
                    part.reduce_lam.body,
                    {**env_base, v1: result_map[key], v2: value},
                )
            else:
                result_map[key] = value
        if part.finalizer is not None:
            fin_key, fin_value = part.finalizer
            finalized: dict[Any, Any] = {}
            for key, value in result_map.items():
                env = {**env_base, "k": key, "v": value}
                finalized[eval_expr(fin_key, env)] = eval_expr(fin_value, env)
            result_map = finalized

        if part.container == "map":
            return values_equal(result_map, expected)
        # array
        size = cached.output_sizes.get(part.var)
        if size is None:
            size = (max(result_map.keys()) + 1) if result_map else 0
        got = [result_map.get(i, part.default) for i in range(size)]
        return values_equal(got, expected)


@dataclass
class SynthesisStats:
    """Counters reported by a synthesize run."""

    candidates_checked: int = 0
    counterexamples: int = 0
    restarts: int = 0


@dataclass
class Synthesizer:
    """The CEGIS loop of Fig. 5 for one grammar class."""

    analysis: FragmentAnalysis
    grammar_class: GrammarClass
    pools: ExpressionPools
    checker: BoundedChecker
    max_restarts: int = 8
    stats: SynthesisStats = field(default_factory=SynthesisStats)
    #: Counterexample states recovered from a previous search on an
    #: alpha-equivalent fragment (summary-cache ``cex:`` entries).  They
    #: join Φ up front, so candidates a past run already refuted are
    #: filtered by :class:`PartEvaluator` before any bounded check runs.
    seed_states: list[ProgramState] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Φ starts with a few random program states (Fig. 5, line 2);
        # we seed it with the canonical empty/singleton/small states,
        # plus any cached counterexamples from earlier near-miss runs.
        self.phi: list[ProgramState] = [
            *self.seed_states,
            *self.checker.states[:4],
        ]
        #: Counterexamples *this* run discovered (excludes seeds) — the
        #: search layer persists them back to the cache.
        self.new_counterexamples: list[ProgramState] = []
        #: Candidates refuted by the bounded checker (its state set is
        #: fixed, so a refuted candidate can never pass later) — blocked
        #: locally so re-enumeration always makes progress.
        self._bounded_failed: set[int] = set()

    def synthesize(self, blocked: set[int]) -> Optional[Summary]:
        """Find the next candidate that passes bounded verification.

        ``blocked`` holds hashes of summaries in Ω ∪ Δ — they are excluded
        from the space (section 4.1) so the search always makes progress.
        Returns None when the class is exhausted.
        """
        if self.analysis.join is not None:
            return self._synthesize_join(blocked)
        for _ in range(self.max_restarts + 1):
            part_filter = PartEvaluator(self.analysis, self.phi)
            enumerator = CandidateEnumerator(
                self.analysis, self.grammar_class, self.pools, part_filter
            )
            restart = False
            for candidate in enumerator.candidates():
                if hash(candidate) in blocked:
                    continue
                self.stats.candidates_checked += 1
                counterexample = self.checker.check(candidate)
                if counterexample is None:
                    return candidate
                self.phi.append(counterexample)
                self.new_counterexamples.append(counterexample)
                self.stats.counterexamples += 1
                self.stats.restarts += 1
                restart = True
                break
            if not restart:
                return None  # search space exhausted for this class
        return None

    def _synthesize_join(self, blocked: set[int]) -> Optional[Summary]:
        """The join-space CEGIS loop.

        Join fragments have no per-part Φ filter (a candidate part's
        semantics depend on every relation at once, so parts cannot be
        checked against example states independently); instead, bounded
        refutations are blocked directly and enumeration simply continues
        to the next candidate — same progress guarantee, no restarts.
        """
        from .joins import JoinCandidateEnumerator

        enumerator = JoinCandidateEnumerator(
            self.analysis, self.grammar_class, self.pools
        )
        for candidate in enumerator.candidates():
            marker = hash(candidate)
            if marker in blocked or marker in self._bounded_failed:
                continue
            self.stats.candidates_checked += 1
            counterexample = self.checker.check(candidate)
            if counterexample is None:
                return candidate
            self._bounded_failed.add(marker)
            self.phi.append(counterexample)
            self.new_counterexamples.append(counterexample)
            self.stats.counterexamples += 1
        return None

"""Candidate enumeration for the JOIN grammar classes.

A join summary has the stage shape ``m j (m j)* m r?`` over the base
relation:

* the first map keys each base element by a join-key field and emits the
  *whole element* as a field tuple (a pure restructuring — no data is
  dropped before the join);
* each :class:`~repro.ir.nodes.JoinStage` carries the inner relation's
  pipeline (one map stage keying its elements the same way);
* between joins, a re-key map stage re-addresses the accumulated nested
  value tuple by the next level's key (the value passes through
  unchanged);
* the post-join map stage computes the fragment's outputs from *paths*
  into the nested value tuple (``v[0][0]`` is the base element, ``v[1]``
  the last-joined element, ...), optionally guarded by residual
  conditions; a final reduce folds per-key values for aggregates.

Candidates are generated per valid join *ordering* (§7.4: a star-shaped
nest admits several), round-robin across orderings so that each
ordering's cheapest candidates reach the verifier early and the search
can keep one verified summary per ordering for the runtime monitor to
choose between.

Expression candidates come from the fragment-specialized pools (the
harvested accumulation terms and residual conditions of the innermost
body), written over the relations' field atoms and then *substituted*
into tuple-path space — so the search space stays exactly as
fragment-specialized as the flat grammar's.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..ir.nodes import (
    Const,
    Emit,
    IRExpr,
    JoinStage,
    MapLambda,
    MapStage,
    OutputBinding,
    Pipeline,
    Proj,
    ReduceLambda,
    ReduceStage,
    Stage,
    Summary,
    Var,
    is_join_summary,
)
from ..lang.analysis.fragments import FragmentAnalysis
from ..lang.analysis.joins import JoinInfo
from ..verification.algebra import substitute
from .enumerator import container_kind, default_for_type, _container_element_type
from .grammar import ExpressionPools, GrammarClass, _kind_of_jtype, reduce_lambda_pool

__all__ = ["JoinCandidateEnumerator", "is_join_summary"]


class JoinCandidateEnumerator:
    """Enumerates join Summary candidates for one fragment + class."""

    def __init__(
        self,
        analysis: FragmentAnalysis,
        grammar_class: GrammarClass,
        pools: ExpressionPools,
        max_values: int = 20,
        max_guards: int = 8,
        max_keys: int = 8,
        max_per_ordering: int = 200,
    ):
        assert analysis.join is not None
        self.analysis = analysis
        self.join: JoinInfo = analysis.join
        self.grammar_class = grammar_class
        self.pools = pools
        self.max_values = max_values
        self.max_guards = max_guards
        self.max_keys = max_keys
        self.max_per_ordering = max_per_ordering

        self._field_kinds: dict[str, str] = {}
        for side in self.join.sides:
            for fld in side.fields:
                self._field_kinds[fld.name] = _kind_of_jtype(fld.jtype)

    # ------------------------------------------------------------------

    def candidates(self) -> Iterator[Summary]:
        """Round-robin the per-ordering candidate streams."""
        streams = [
            self._candidates_for_ordering(perm)
            for perm in self.join.orderings()
        ]
        while streams:
            exhausted = []
            for stream in streams:
                try:
                    yield next(stream)
                except StopIteration:
                    exhausted.append(stream)
            streams = [s for s in streams if s not in exhausted]

    # ------------------------------------------------------------------
    # Pipeline skeleton for one ordering

    def _field_var(self, name: str) -> Var:
        return Var(name, self._field_kinds.get(name, "int"))

    def _side_tuple(self, side) -> IRExpr:
        from ..ir.nodes import TupleExpr

        return TupleExpr(tuple(self._field_var(f.name) for f in side.fields))

    @staticmethod
    def _tuple_path(position: int, depth: int) -> IRExpr:
        """Path of relation ``position``'s tuple inside the value after
        ``depth`` joins (value nests left: ``(((t0, t1), t2), ...)``)."""
        expr: IRExpr = Var("v", "tuple")
        if depth == 0:
            return expr
        if position == 0:
            for _ in range(depth):
                expr = Proj(expr, 0)
            return expr
        for _ in range(depth - position):
            expr = Proj(expr, 0)
        return Proj(expr, 1)

    def _skeleton(
        self, perm: tuple[int, ...]
    ) -> Optional[tuple[list[Stage], dict[str, IRExpr]]]:
        """Stages up to (not including) the post-join map, plus the
        field → tuple-path substitution map at the post-join point."""
        join = self.join
        base = join.base
        ordered = [join.levels[i] for i in perm]
        # Relation position in join order: base 0, then 1..L.
        position = {base.source: 0}
        for offset, level in enumerate(ordered):
            position[level.side.source] = offset + 1

        first = ordered[0]
        if first.left_owner != base.source:
            return None
        stages: list[Stage] = [
            MapStage(
                MapLambda(
                    params=tuple(f.name for f in base.fields),
                    emits=(
                        Emit(
                            key=self._field_var(first.left_key),
                            value=self._side_tuple(base),
                        ),
                    ),
                )
            )
        ]
        for depth, level in enumerate(ordered):
            side = level.side
            right = Pipeline(
                side.source,
                (
                    MapStage(
                        MapLambda(
                            params=tuple(f.name for f in side.fields),
                            emits=(
                                Emit(
                                    key=self._field_var(level.right_key),
                                    value=self._side_tuple(side),
                                ),
                            ),
                        )
                    ),
                ),
            )
            if depth > 0:
                # Re-key the accumulated tuple by this level's left key.
                owner_pos = position[level.left_owner]
                if owner_pos > depth:
                    return None  # key owner not joined yet
                owner = join.side_for(level.left_owner)
                index = owner.field_names.index(level.left_key)
                key_path = Proj(self._tuple_path(owner_pos, depth), index)
                stages.append(
                    MapStage(
                        MapLambda(
                            params=("k", "v"),
                            emits=(Emit(key=key_path, value=Var("v", "tuple")),),
                        )
                    )
                )
            stages.append(JoinStage(right))
        depth = len(ordered)
        mapping: dict[str, IRExpr] = {}
        for side in join.sides:
            tuple_path = self._tuple_path(position[side.source], depth)
            for index, fld in enumerate(side.fields):
                mapping[fld.name] = Proj(tuple_path, index)
        return stages, mapping

    # ------------------------------------------------------------------

    def _value_pool(self, kind: str) -> list[IRExpr]:
        return self.pools.pool_for(kind if kind != "other" else "int")[
            : self.max_values
        ]

    def _guard_pool(self) -> list[Optional[IRExpr]]:
        guards: list[Optional[IRExpr]] = [None]
        if self.grammar_class.allow_guards:
            guards.extend(self.pools.pool_for("boolean")[: self.max_guards])
        return guards

    def _candidates_for_ordering(self, perm: tuple[int, ...]) -> Iterator[Summary]:
        built = self._skeleton(perm)
        if built is None:
            return
        stages, mapping = built

        scalar_outputs = {
            name: jtype
            for name, jtype in self.analysis.output_vars.items()
            if container_kind(jtype) is None
        }
        container_outputs = {
            name: jtype
            for name, jtype in self.analysis.output_vars.items()
            if container_kind(jtype) is not None
        }
        if scalar_outputs and container_outputs:
            return  # mixed outputs: not expressible in one pipeline
        count = 0
        if scalar_outputs:
            gen = self._scalar_candidates(stages, mapping, scalar_outputs)
        elif len(container_outputs) == 1:
            (var, jtype), = container_outputs.items()
            gen = self._container_candidates(stages, mapping, var, jtype)
        else:
            return
        for summary in gen:
            yield summary
            count += 1
            if count >= self.max_per_ordering:
                return

    def _scalar_candidates(
        self, stages: list[Stage], mapping: dict[str, IRExpr], outputs
    ) -> Iterator[Summary]:
        """All scalar outputs as separately-keyed emits with one λr."""
        if "mjmr" not in self.grammar_class.shapes:
            return
        if len(outputs) > self.grammar_class.max_emits:
            return
        names = list(outputs)
        reduce_ops = reduce_lambda_pool(
            _kind_of_jtype(outputs[names[0]]),
            self.analysis.scan.operators,
            self.analysis.scan.methods,
        )
        per_output: dict[str, list[tuple[Optional[IRExpr], IRExpr]]] = {}
        for var, jtype in outputs.items():
            kind = _kind_of_jtype(jtype)
            pairs = [
                (guard, value)
                for guard in self._guard_pool()
                for value in self._value_pool(kind)
            ]
            per_output[var] = pairs
        # Sum-ordered combination: cheap (harvested-first) parts first.
        for reduce_lam in reduce_ops:
            for total in range(
                sum(len(per_output[v]) - 1 for v in names) + 1
            ):
                for combo in _compositions_for(total, [len(per_output[v]) for v in names]):
                    emits = []
                    bindings = []
                    for var, index in zip(names, combo):
                        guard, value = per_output[var][index]
                        emits.append(
                            Emit(
                                key=Const(var, "String"),
                                value=substitute(value, mapping),
                                cond=(
                                    substitute(guard, mapping)
                                    if guard is not None
                                    else None
                                ),
                            )
                        )
                        bindings.append(
                            OutputBinding(
                                var=var,
                                kind="keyed",
                                key=Const(var, "String"),
                                default=self.analysis.prelude_constants.get(
                                    var, default_for_type(outputs[var])
                                ),
                            )
                        )
                    post = MapStage(MapLambda(("k", "v"), tuple(emits)))
                    yield Summary(
                        Pipeline(
                            self.join.base.source,
                            tuple([*stages, post, ReduceStage(reduce_lam)]),
                        ),
                        tuple(bindings),
                    )

    def _container_candidates(
        self, stages: list[Stage], mapping: dict[str, IRExpr], var: str, jtype
    ) -> Iterator[Summary]:
        """A single map/set container output built from the joined pairs.

        Bags and arrays are deliberately out of the join space: a bag's
        element order depends on the physical join strategy, and array
        outputs keyed by joined data values have no bounded index.
        """
        container = container_kind(jtype)
        if container not in ("map", "set"):
            return
        element_type = _container_element_type(jtype)
        kind = _kind_of_jtype(element_type)
        keys = self.pools.key_pool()[: self.max_keys]
        values = self._value_pool(kind if kind != "other" else "int")
        guards = self._guard_pool()
        binding = OutputBinding(var=var, kind="whole", container=container)

        if container == "set":
            if "mjm" not in self.grammar_class.shapes:
                return
            for guard in guards:
                for key in keys:
                    post = MapStage(
                        MapLambda(
                            ("k", "v"),
                            (
                                Emit(
                                    key=substitute(key, mapping),
                                    value=Const(1, "int"),
                                    cond=(
                                        substitute(guard, mapping)
                                        if guard is not None
                                        else None
                                    ),
                                ),
                            ),
                        )
                    )
                    yield Summary(
                        Pipeline(
                            self.join.base.source, tuple([*stages, post])
                        ),
                        (binding,),
                    )
            return

        reduce_ops: list[Optional[ReduceLambda]] = []
        if "mjmr" in self.grammar_class.shapes:
            reduce_ops.extend(
                reduce_lambda_pool(
                    kind if kind != "other" else "int",
                    self.analysis.scan.operators,
                    self.analysis.scan.methods,
                )
            )
        if "mjm" in self.grammar_class.shapes:
            reduce_ops.append(None)  # last-write-wins put
        for reduce_lam in reduce_ops:
            for guard in guards:
                for key in keys:
                    for value in values:
                        post = MapStage(
                            MapLambda(
                                ("k", "v"),
                                (
                                    Emit(
                                        key=substitute(key, mapping),
                                        value=substitute(value, mapping),
                                        cond=(
                                            substitute(guard, mapping)
                                            if guard is not None
                                            else None
                                        ),
                                    ),
                                ),
                            )
                        )
                        tail: list[Stage] = [post]
                        if reduce_lam is not None:
                            tail.append(ReduceStage(reduce_lam))
                        yield Summary(
                            Pipeline(
                                self.join.base.source,
                                tuple([*stages, *tail]),
                            ),
                            (binding,),
                        )


def _compositions_for(total: int, sizes: list[int]) -> Iterator[tuple[int, ...]]:
    """Index tuples with the given sum, bounded per pool (cheap-first)."""
    if len(sizes) == 1:
        if total < sizes[0]:
            yield (total,)
        return
    for first in range(min(total, sizes[0] - 1) + 1):
        for rest in _compositions_for(total - first, sizes[1:]):
            yield (first, *rest)

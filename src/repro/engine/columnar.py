"""Columnar chunk layout: persistent typed column arrays per chunk.

PR 6's compiled kernels run chunk-at-a-time, but chunks stayed
row-shaped record lists: the numpy fast path re-extracted its input
column from the row dicts on every call, and nothing downstream (the
combiner, the shuffle, the shared-memory transport) could see an array.
This module introduces the column-major representation the vectorized
kernels operate on:

* :class:`ColumnSpec` — where a live atom lives in a record (the record
  itself, a struct field, or a parallel-array tuple position) and the
  numpy dtype the typechecker's exactness proof licenses (``int`` →
  int64, ``float`` → float64, ``bool`` → bool).
* :class:`ColumnChunk` — one chunk's rows plus its extracted columns,
  built **once** at the dataset source boundary from the projection
  liveness set, so every kernel that touches the chunk reuses the same
  arrays.
* :class:`Chunk` — a plain ``list`` subclass carrying a column cache,
  so even row-layout runs extract each live column at most once per
  chunk.
* :class:`ColumnBlock` — a vectorized map stage's output: a value
  array plus either a key array or one constant key, convertible to
  the exact pair list the row engine would have emitted.
* :func:`grouped_fold` — array-based partial aggregation for proved
  sum/min/max reducers (``reduceat`` over stably argsorted keys),
  restricted to cases that are bit-identical to the ordered dict fold
  and guarded against int64 overflow / NaN.

Exactness discipline: a column is only materialized as a numpy array
when every element is *exactly* the Python type the static type
promised (``type(v) is int`` — bools excluded — for integral columns,
``type(v) is float`` for floating ones, ``type(v) is bool`` for
booleans) and, for ints, every value fits int64.  Anything else marks
the column invalid and the caller falls back to the compiled row loop —
never silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .sizes import (
    BOOLEAN_SIZE,
    DOUBLE_SIZE,
    INT_SIZE,
    LONG_SIZE,
    OBJECT_HEADER,
    TUPLE_HEADER,
    sizeof,
    sizeof_pair,
)

try:  # pragma: no cover - numpy is present in the toolchain image
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: int64 magnitude bound used by every overflow guard.
I64_MAX = 2**63 - 1


@dataclass(frozen=True)
class ColumnSpec:
    """One live atom's location in a record and its proved element kind.

    ``access`` is ``"self"`` (the record *is* the value — plain foreach
    over scalars), ``"field"`` (an ``Instance`` struct field), or
    ``"index"`` (a position in a parallel-array record tuple).
    ``kind`` ∈ {"int", "float", "bool"} names the exactness class the
    typechecker proved; it decides the numpy dtype and the runtime
    validation predicate.
    """

    name: str
    kind: str
    access: str
    field: Optional[str] = None
    position: Optional[int] = None


class Chunk(list):
    """A row chunk that can cache its extracted column arrays.

    Plain lists cannot carry attributes, so the engine wraps chunks in
    this subclass when a compiled mapper may vectorize: the first
    extraction of each live column is stored in :attr:`columns` and
    every later kernel (the block path, the pair path, a guard-trip
    retry) reuses the array instead of re-walking the row dicts.
    """

    __slots__ = ("columns",)

    def __init__(self, records: Any = ()) -> None:
        super().__init__(records)
        self.columns: dict[str, Any] = {}

    def __reduce__(self):
        # list subclass + __slots__ needs explicit pickle support; the
        # cached arrays travel along so workers skip re-extraction.
        return (_rebuild_chunk, (list(self), self.columns))


def _rebuild_chunk(records: list, columns: dict) -> "Chunk":
    chunk = Chunk(records)
    chunk.columns = columns
    return chunk


class ColumnChunk:
    """One chunk in columnar layout: the rows plus their live columns.

    Built once at the dataset source boundary (`build_chunk`) from the
    projection-pushdown liveness set.  The rows are kept: they are the
    exact fallback surface for guard trips and for any stage that does
    not understand columns, and object-valued atoms (strings, structs)
    only exist row-side.  Iteration and ``len`` see the rows, so every
    row-oriented consumer works unchanged.
    """

    __slots__ = ("rows", "columns")

    def __init__(
        self, rows: list, columns: Optional[dict[str, Any]] = None
    ) -> None:
        self.rows = rows
        #: spec name → ndarray, or None when validation failed (cached
        #: so a failed column is probed once per chunk, not per kernel).
        self.columns: dict[str, Any] = dict(columns or {})

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def __getstate__(self):
        return (self.rows, self.columns)

    def __setstate__(self, state):
        self.rows, self.columns = state

    def sizeof_model(self, seen: Any) -> int:
        """Price for :func:`repro.engine.sizes.sizeof`: the rows (the
        real payload) plus the array headers — numeric arrays are flat
        buffers, not per-element boxed walks."""
        total = OBJECT_HEADER + sum(sizeof(row) for row in self.rows)
        for array in self.columns.values():
            if array is not None:
                total += OBJECT_HEADER + int(array.nbytes)
        return total


_KIND_CHECKS = {"int": int, "float": float, "bool": bool}


def _extract_data(rows: list, spec: ColumnSpec) -> list:
    """Pull one atom's raw values out of the rows (pre-validation)."""
    if spec.access == "self":
        return list(rows)
    if spec.access == "field":
        name = spec.field if spec.field is not None else spec.name
        return [row.fields[name] for row in rows]
    position = spec.position or 0
    return [row[position] for row in rows]


def build_column(rows: list, spec: ColumnSpec) -> Optional[Any]:
    """One validated column array, or None when the data breaks the
    type promise (mixed types, bools in int columns, out-of-int64
    values) — the caller then runs the row loop for this chunk."""
    if _np is None:
        return None
    try:
        data = _extract_data(rows, spec)
    except (AttributeError, KeyError, IndexError, TypeError):
        return None
    expected = _KIND_CHECKS[spec.kind]
    # set(map(type, ...)) runs at C speed; an exact-type check is what
    # keeps e.g. True out of int columns (eval emits True, int64 would
    # emit 1 — equal under ==, not byte-identical).
    if set(map(type, data)) - {expected}:
        return None
    if spec.kind == "int":
        try:
            return _np.asarray(data, dtype=_np.int64)
        except (OverflowError, ValueError):
            return None  # a value outside int64 — row loop keeps bignums
    if spec.kind == "float":
        return _np.asarray(data, dtype=_np.float64)
    return _np.asarray(data, dtype=_np.bool_)


def resolve_columns(
    chunk: Any, specs: tuple[ColumnSpec, ...]
) -> Optional[dict[str, Any]]:
    """The chunk's arrays for ``specs``, building (and caching) misses.

    Returns None when any required column fails validation; the failure
    itself is cached on caching chunk types so repeated kernels skip
    the re-probe.
    """
    cache = getattr(chunk, "columns", None)
    rows = chunk.rows if isinstance(chunk, ColumnChunk) else chunk
    out: dict[str, Any] = {}
    invalid = False
    for spec in specs:
        if cache is not None and spec.name in cache:
            array = cache[spec.name]
        else:
            array = build_column(rows, spec)
            if cache is not None:
                cache[spec.name] = array
        if array is None:
            invalid = True
        else:
            out[spec.name] = array
    return None if invalid else out


def build_chunk(records: Any, specs: tuple[ColumnSpec, ...]) -> ColumnChunk:
    """Columnar form of one chunk: extract every live column eagerly."""
    rows = records if isinstance(records, list) else list(records)
    chunk = ColumnChunk(rows)
    for spec in specs:
        chunk.columns[spec.name] = build_column(rows, spec)
    return chunk


# ----------------------------------------------------------------------
# Vectorized map output blocks


@dataclass
class ColumnBlock:
    """A vectorized map stage's emitted pairs in column form.

    ``keys`` is an array aligned with ``values``, or None when every
    pair shares ``key_const`` (the constant-key emit shape).  Values
    (and array keys) are validated int64/float64/bool arrays, so
    ``tolist`` reconstruction yields exactly the Python scalars the row
    loop would have emitted.
    """

    values: Any
    keys: Any = None
    key_const: Any = None

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def key_list(self) -> list:
        if self.keys is None:
            return [self.key_const] * len(self)
        return self.keys.tolist()

    def pairs(self) -> list[tuple]:
        """The exact pair list the row loop would have produced."""
        values = self.values.tolist()
        if self.keys is None:
            key = self.key_const
            return [(key, value) for value in values]
        return list(zip(self.keys.tolist(), values))

    # -- sizeof-model accounting (vectorized, byte-for-byte identical
    # -- to summing sizeof_pair over .pairs())

    def pair_sizes(self) -> list[int]:
        """Per-pair ``sizeof_pair`` without materializing the pairs."""
        n = len(self)
        value_sizes = _scalar_sizes(self.values)
        if self.keys is None:
            key_size = sizeof(self.key_const)
            return [key_size + v for v in value_sizes]
        key_sizes = _scalar_sizes(self.keys)
        return [k + v for k, v in zip(key_sizes, value_sizes)]

    def stage_bytes(self) -> int:
        """What ``sum(sizeof(pair))`` charges: pair tuple headers too."""
        return sum(self.pair_sizes()) + TUPLE_HEADER * len(self)

    def shuffle_bytes(self) -> int:
        return sum(self.pair_sizes())


def _scalar_sizes(array: Any) -> list[int]:
    """sizeof() of each element, computed on the array."""
    if array.dtype == _np.bool_:
        return [BOOLEAN_SIZE] * int(array.shape[0])
    if array.dtype.kind == "f":
        return [DOUBLE_SIZE] * int(array.shape[0])
    small = (array >= -(2**31)) & (array < 2**31)
    return _np.where(small, INT_SIZE, LONG_SIZE).tolist()


# ----------------------------------------------------------------------
# Array-based partial aggregation (proved-commutative λr only)


def _int_bound(array: Any) -> int:
    """Max |value| as a Python int (never wraps, unlike np.abs)."""
    if array.shape[0] == 0:
        return 0
    return max(abs(int(array.max())), abs(int(array.min())))


def _fold_whole(values: Any, op: str) -> Optional[Any]:
    """Fold one key's whole value array; None when not provably exact."""
    if values.shape[0] == 0:
        return None
    if op == "sum":
        if values.dtype.kind == "f":
            # accumulate is the strict sequential left fold — the same
            # rounding sequence as the ordered Python fold (reduce may
            # use pairwise summation, which reassociates).
            return float(_np.add.accumulate(values)[-1])
        if values.shape[0] * _int_bound(values) > I64_MAX:
            return None  # a partial sum could wrap int64
        return int(values.sum(dtype=_np.int64))
    if op in ("min", "max"):
        if values.dtype.kind == "f" and bool(_np.isnan(values).any()):
            return None  # NaN ordering differs between min() and minimum
        result = values.min() if op == "min" else values.max()
        return result.item()
    return None


def grouped_fold(block: ColumnBlock, op: str) -> Optional[list[tuple]]:
    """Per-key array fold of a block — or None to use the dict combine.

    Output is bit-identical to the first-seen-ordered dict fold: keys
    come back in first-occurrence order, int sums are overflow-guarded,
    float sums use the strict sequential ``accumulate`` fold, and
    min/max refuse NaNs.  Any unsupported shape returns None and the
    caller combines the block's pairs the classic way.
    """
    if _np is None or op not in ("sum", "min", "max"):
        return None
    values = block.values
    if not isinstance(values, _np.ndarray) or values.dtype == _np.bool_:
        return None
    if block.keys is None:
        folded = _fold_whole(values, op)
        if folded is None:
            return [] if values.shape[0] == 0 else None
        return [(block.key_const, folded)]
    keys = block.keys
    if keys.shape[0] == 0:
        return []
    if keys.dtype.kind == "f":
        if bool(_np.isnan(keys).any()):
            return None  # NaN keys group by object identity in dicts
        if bool(((keys == 0.0) & _np.signbit(keys)).any()):
            return None  # -0.0 == 0.0: unique() may pick the wrong face
    uniq, first_index, inverse = _np.unique(
        keys, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    order = _np.argsort(inverse, kind="stable")  # arrival order per group
    bounds = _np.searchsorted(inverse[order], _np.arange(uniq.shape[0]))
    sorted_values = values[order]
    if op == "sum":
        if values.dtype.kind == "f":
            if uniq.shape[0] * 4 > keys.shape[0]:
                return None  # mostly-distinct keys: per-group loop loses
            starts = bounds.tolist()
            stops = starts[1:] + [int(keys.shape[0])]
            aggregated = [
                float(_np.add.accumulate(sorted_values[lo:hi])[-1])
                for lo, hi in zip(starts, stops)
            ]
        else:
            if keys.shape[0] * _int_bound(values) > I64_MAX:
                return None
            aggregated = _np.add.reduceat(sorted_values, bounds).tolist()
    else:
        if values.dtype.kind == "f" and bool(_np.isnan(values).any()):
            return None
        ufunc = _np.minimum if op == "min" else _np.maximum
        aggregated = ufunc.reduceat(sorted_values, bounds).tolist()
    # Restore first-seen key order (what the dict combine produces).
    seen_order = _np.argsort(first_index, kind="stable")
    out_keys = uniq[seen_order].tolist()
    return [(key, aggregated[group]) for key, group in zip(out_keys, seen_order.tolist())]


__all__ = [
    "Chunk",
    "ColumnBlock",
    "ColumnChunk",
    "ColumnSpec",
    "build_chunk",
    "build_column",
    "grouped_fold",
    "resolve_columns",
    "sizeof_pair",
]

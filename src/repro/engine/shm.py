"""Shared-memory payload transport for the multiprocess pool.

The pool normally moves task payloads (pickled chunks of records or
shuffle partitions) through the executor's queues, which re-serializes
every byte through a pipe per task.  On platforms with
:mod:`multiprocessing.shared_memory`, the driver can instead pickle a
payload **once** into a named shared segment and hand the worker only
the tiny ``(name, size)`` reference; the worker maps the segment and
reads the bytes in place.

Lifecycle protocol (single-owner, fork-friendly):

* the **driver** creates and fills a segment per payload, keeping the
  handle open in :data:`_OWNED`;
* **workers** attach by name, copy the bytes out, and ``close()`` their
  mapping — they never ``unlink`` (unlinking is the owner's job, and a
  double-unregister trips the resource tracker);
* after the pool round completes — success or not — the driver calls
  :func:`release_segments`, which closes and unlinks every segment it
  created.

Columnar payloads additionally ship their array buffers **zero-copy**:
the driver pickles with protocol 5 and a ``buffer_callback``, so every
ndarray inside the payload becomes an out-of-band
:class:`pickle.PickleBuffer` whose raw bytes are written straight into
the segment after the pickle head (no intermediate ``bytes`` of the
whole payload is ever built).  The ref records each buffer's span; the
worker reconstructs with ``pickle.loads(head, buffers=...)``.

Everything degrades transparently: if segment creation fails (no
``/dev/shm``, size limits, platform without the module) the payload
simply travels the queue path as plain bytes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Optional, Union

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Whether the shared-memory transport can be attempted at all.
SHM_AVAILABLE = _shared_memory is not None

#: Segments created by this (driver) process, by name, so they can be
#: released even when the pool round fails mid-way.
_OWNED: dict[str, Any] = {}


@dataclass(frozen=True)
class ShmRef:
    """A picklable handle to one payload staged in shared memory.

    ``spans`` is empty for a plain pickled-bytes payload; for a
    protocol-5 payload it holds the ``(offset, length)`` of each
    out-of-band buffer, with the pickle head occupying ``[0, size)``.
    """

    name: str
    size: int
    spans: tuple[tuple[int, int], ...] = ()


def write_segment(data: bytes) -> Optional[ShmRef]:
    """Stage ``data`` in a new shared segment; None → caller falls back."""
    if _shared_memory is None or not data:
        return None
    try:
        segment = _shared_memory.SharedMemory(create=True, size=len(data))
        segment.buf[: len(data)] = data
    except (OSError, ValueError):
        return None
    _OWNED[segment.name] = segment
    return ShmRef(name=segment.name, size=len(data))


def write_payload(head: bytes, buffers: list) -> Optional[ShmRef]:
    """Stage a protocol-5 payload: pickle head + raw buffer bytes.

    ``buffers`` are the :class:`pickle.PickleBuffer` objects collected
    by ``buffer_callback`` — their bytes go into the segment directly
    from the source arrays (one copy, into shared memory, no
    intermediate concatenation).  None → caller falls back to the
    queue path.
    """
    if _shared_memory is None or not head:
        return None
    views = []
    total = len(head)
    spans: list[tuple[int, int]] = []
    try:
        for buffer in buffers:
            view = buffer.raw()
            views.append(view)
            spans.append((total, view.nbytes))
            total += view.nbytes
    except BufferError:
        return None  # non-contiguous buffer: let pickle carry it in-band
    try:
        segment = _shared_memory.SharedMemory(create=True, size=total)
        segment.buf[: len(head)] = head
        for (offset, length), view in zip(spans, views):
            segment.buf[offset : offset + length] = view.cast("B")
    except (OSError, ValueError):
        return None
    _OWNED[segment.name] = segment
    return ShmRef(name=segment.name, size=len(head), spans=tuple(spans))


def load_payload(payload: Union[bytes, "ShmRef"]) -> Any:
    """Unpickle a task payload, whichever transport carried it."""
    if isinstance(payload, bytes):
        return pickle.loads(payload)
    if not payload.spans:
        return pickle.loads(read_segment(payload))
    if _shared_memory is None:
        raise RuntimeError("shared_memory unavailable but ShmRef received")
    segment = _shared_memory.SharedMemory(name=payload.name)
    try:
        head = bytes(segment.buf[: payload.size])
        # Each span is copied out once; loads() then wraps those bytes
        # without a further copy (the arrays are read-only inputs).
        buffers = [
            bytes(segment.buf[offset : offset + length])
            for offset, length in payload.spans
        ]
        return pickle.loads(head, buffers=buffers)
    finally:
        segment.close()


def read_segment(ref: ShmRef) -> bytes:
    """Copy a staged payload out of its segment (worker side)."""
    if _shared_memory is None:
        raise RuntimeError("shared_memory unavailable but ShmRef received")
    segment = _shared_memory.SharedMemory(name=ref.name)
    try:
        return bytes(segment.buf[: ref.size])
    finally:
        segment.close()


def resolve_payload(payload: Union[bytes, ShmRef]) -> bytes:
    """Payload as bytes, whichever transport carried it."""
    if isinstance(payload, ShmRef):
        return read_segment(payload)
    return payload


def release_segments(refs: list[ShmRef]) -> None:
    """Close and unlink driver-owned segments (idempotent per ref)."""
    for ref in refs:
        segment = _OWNED.pop(ref.name, None)
        if segment is None:
            continue
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def owned_segments() -> int:
    """Live driver-owned segments (should be 0 between pool rounds)."""
    return len(_OWNED)

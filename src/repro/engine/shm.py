"""Shared-memory payload transport for the multiprocess pool.

The pool normally moves task payloads (pickled chunks of records or
shuffle partitions) through the executor's queues, which re-serializes
every byte through a pipe per task.  On platforms with
:mod:`multiprocessing.shared_memory`, the driver can instead pickle a
payload **once** into a named shared segment and hand the worker only
the tiny ``(name, size)`` reference; the worker maps the segment and
reads the bytes in place.

Lifecycle protocol (single-owner, fork-friendly):

* the **driver** creates and fills a segment per payload, keeping the
  handle open in :data:`_OWNED`;
* **workers** attach by name, copy the bytes out, and ``close()`` their
  mapping — they never ``unlink`` (unlinking is the owner's job, and a
  double-unregister trips the resource tracker);
* after the pool round completes — success or not — the driver calls
  :func:`release_segments`, which closes and unlinks every segment it
  created.

Everything degrades transparently: if segment creation fails (no
``/dev/shm``, size limits, platform without the module) the payload
simply travels the queue path as plain bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Whether the shared-memory transport can be attempted at all.
SHM_AVAILABLE = _shared_memory is not None

#: Segments created by this (driver) process, by name, so they can be
#: released even when the pool round fails mid-way.
_OWNED: dict[str, Any] = {}


@dataclass(frozen=True)
class ShmRef:
    """A picklable handle to one payload staged in shared memory."""

    name: str
    size: int


def write_segment(data: bytes) -> Optional[ShmRef]:
    """Stage ``data`` in a new shared segment; None → caller falls back."""
    if _shared_memory is None or not data:
        return None
    try:
        segment = _shared_memory.SharedMemory(create=True, size=len(data))
        segment.buf[: len(data)] = data
    except (OSError, ValueError):
        return None
    _OWNED[segment.name] = segment
    return ShmRef(name=segment.name, size=len(data))


def read_segment(ref: ShmRef) -> bytes:
    """Copy a staged payload out of its segment (worker side)."""
    if _shared_memory is None:
        raise RuntimeError("shared_memory unavailable but ShmRef received")
    segment = _shared_memory.SharedMemory(name=ref.name)
    try:
        return bytes(segment.buf[: ref.size])
    finally:
        segment.close()


def resolve_payload(payload: Union[bytes, ShmRef]) -> bytes:
    """Payload as bytes, whichever transport carried it."""
    if isinstance(payload, ShmRef):
        return read_segment(payload)
    return payload


def release_segments(refs: list[ShmRef]) -> None:
    """Close and unlink driver-owned segments (idempotent per ref)."""
    for ref in refs:
        segment = _OWNED.pop(ref.name, None)
        if segment is None:
            continue
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def owned_segments() -> int:
    """Live driver-owned segments (should be 0 between pool rounds)."""
    return len(_OWNED)

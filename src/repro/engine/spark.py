"""Spark-flavored RDD API over the simulated executor.

Mirrors the subset of the JavaRDD / JavaPairRDD API that Casper's code
generator targets (paper Appendix C): map, flatMap, mapToPair, filter,
mapValues, reduceByKey, groupByKey, reduce, join, collect, count, plus
broadcast variables and a first-k sample used by the runtime monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from ..errors import EngineError
from .config import EngineConfig
from .core import Executor, lambda_cpu_ns
from .metrics import JobMetrics
from .sizes import sizeof, sizeof_pair


@dataclass
class Broadcast:
    """A broadcast variable (read-only closure capture)."""

    value: Any


class SimRDD:
    """A partitioned dataset; transformations account simulated time."""

    def __init__(self, context: "SimSparkContext", parts: list[list], is_pairs: bool = False):
        self.context = context
        self.parts = parts
        self.is_pairs = is_pairs

    # ------------------------------------------------------------------
    # Narrow transformations

    def map(self, fn: Callable[[Any], Any], complexity: int = 2) -> "SimRDD":
        parts = self.context.executor.run_narrow(
            self.parts, lambda r: (fn(r),), "map", lambda_cpu_ns(complexity)
        )
        return SimRDD(self.context, parts)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]], complexity: int = 3) -> "SimRDD":
        parts = self.context.executor.run_narrow(
            self.parts, fn, "map.flat", lambda_cpu_ns(complexity)
        )
        return SimRDD(self.context, parts)

    def filter(self, fn: Callable[[Any], bool], complexity: int = 2) -> "SimRDD":
        parts = self.context.executor.run_narrow(
            self.parts,
            lambda r: (r,) if fn(r) else (),
            "map.filter",
            lambda_cpu_ns(complexity),
        )
        return SimRDD(self.context, parts, is_pairs=self.is_pairs)

    def map_to_pair(self, fn: Callable[[Any], tuple], complexity: int = 2) -> "SimRDD":
        parts = self.context.executor.run_narrow(
            self.parts, lambda r: (fn(r),), "map.toPair", lambda_cpu_ns(complexity)
        )
        return SimRDD(self.context, parts, is_pairs=True)

    def flat_map_to_pair(
        self, fn: Callable[[Any], Iterable[tuple]], complexity: int = 3
    ) -> "SimRDD":
        parts = self.context.executor.run_narrow(
            self.parts, fn, "map.flatToPair", lambda_cpu_ns(complexity)
        )
        return SimRDD(self.context, parts, is_pairs=True)

    def map_values(self, fn: Callable[[Any], Any], complexity: int = 2) -> "SimRDD":
        self._require_pairs("mapValues")
        parts = self.context.executor.run_narrow(
            self.parts,
            lambda kv: ((kv[0], fn(kv[1])),),
            "map.values",
            lambda_cpu_ns(complexity),
        )
        return SimRDD(self.context, parts, is_pairs=True)

    def zip_with_index(self) -> "SimRDD":
        """(record, index) pairs — the pre-pass MOLD inserts (section 7.2)."""
        indexed: list[list] = []
        counter = 0
        for part in self.parts:
            out = []
            for record in part:
                out.append((record, counter))
                counter += 1
            indexed.append(out)
        # zipWithIndex triggers an extra pass over the data.
        parts = self.context.executor.run_narrow(
            indexed, lambda r: (r,), "map.zipWithIndex", lambda_cpu_ns(1)
        )
        return SimRDD(self.context, parts, is_pairs=True)

    def cache(self) -> "SimRDD":
        """Marks the RDD cached; re-scans become free for iterative jobs."""
        self._cached = True
        return self

    # ------------------------------------------------------------------
    # Shuffle transformations

    def reduce_by_key(self, fn: Callable[[Any, Any], Any], complexity: int = 2) -> "SimRDD":
        """Shuffle with map-side combiners (requires commutative-assoc λr)."""
        self._require_pairs("reduceByKey")
        groups = self.context.executor.run_shuffle(self.parts, combiner=fn)
        reduced = self.context.executor.run_reduce_groups(groups, fn)
        parts = self.context.repartition_pairs(reduced)
        return SimRDD(self.context, parts, is_pairs=True)

    def group_by_key(self) -> "SimRDD":
        """Shuffle without combiners (safe for non-commutative λr)."""
        self._require_pairs("groupByKey")
        groups = self.context.executor.run_shuffle(self.parts, combiner=None)
        grouped = [(k, list(v)) for k, v in groups.items()]
        parts = self.context.repartition_pairs(grouped)
        return SimRDD(self.context, parts, is_pairs=True)

    def join(self, other: "SimRDD") -> "SimRDD":
        """Inner join by key: (k, (v1, v2)) for every matching pair."""
        self._require_pairs("join")
        other._require_pairs("join")
        left = self.context.executor.run_shuffle(self.parts, combiner=None, stage_name="shuffle.join.left")
        right = self.context.executor.run_shuffle(other.parts, combiner=None, stage_name="shuffle.join.right")
        stage = self.context.executor.metrics.stage("join")
        out: list[tuple] = []
        records = 0
        for key, left_values in left.items():
            right_values = right.get(key)
            if not right_values:
                continue
            for lv in left_values:
                for rv in right_values:
                    out.append((key, (lv, rv)))
                    records += 1
        stage.records_out = records
        stage.bytes_out = sum(sizeof_pair(k, v) for k, v in out)
        self.context.executor.charge_narrow(stage, records, self.context.config.default_partitions, 100.0)
        parts = self.context.repartition_pairs(out)
        return SimRDD(self.context, parts, is_pairs=True)

    # ------------------------------------------------------------------
    # Actions

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        records = self.collect_unaccounted()
        if not records:
            raise EngineError("reduce of an empty RDD")
        stage = self.context.executor.metrics.stage("reduce.action")
        stage.records_in = len(records)
        self.context.executor.charge_narrow(stage, len(records), len(self.parts), 80.0)
        acc = records[0]
        for record in records[1:]:
            acc = fn(acc, record)
        return acc

    def collect(self) -> list:
        records = self.collect_unaccounted()
        self.context.executor.charge_driver_collect(sum(sizeof(r) for r in records))
        return records

    def collect_as_map(self) -> dict:
        self._require_pairs("collectAsMap")
        return dict(self.collect())

    def count(self) -> int:
        stage = self.context.executor.metrics.stage("count")
        total = sum(len(p) for p in self.parts)
        stage.records_in = total
        self.context.executor.charge_narrow(stage, total, len(self.parts), 10.0)
        return total

    def take(self, k: int) -> list:
        """First-k sample; used by the runtime monitor (section 5.2).

        Reads only the first partition(s) — cheap by construction.
        """
        out: list = []
        for part in self.parts:
            for record in part:
                out.append(record)
                if len(out) >= k:
                    return out
        return out

    def collect_unaccounted(self) -> list:
        return [record for part in self.parts for record in part]

    def _require_pairs(self, op: str) -> None:
        if not self.is_pairs:
            raise EngineError(f"{op} requires a pair RDD (call mapToPair first)")


class SimSparkContext:
    """Entry point mirroring JavaSparkContext for the simulated cluster."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.executor = Executor(self.config)

    @property
    def metrics(self) -> JobMetrics:
        return self.executor.metrics

    def parallelize(self, data: list, partitions: Optional[int] = None) -> SimRDD:
        parts = self.executor.run_scan(
            list(data), partitions or self.config.default_partitions
        )
        return SimRDD(self, parts)

    def broadcast(self, value: Any) -> Broadcast:
        return Broadcast(value)

    def repartition_pairs(self, pairs: list) -> list[list]:
        from .core import partition_data

        return partition_data(pairs, self.config.default_partitions)

    def reset_metrics(self) -> None:
        self.executor = Executor(self.config)

"""Simulated distributed MapReduce substrate.

Replaces the paper's AWS Spark/Hadoop/Flink cluster: lambdas really run
over partitioned Python data (results are exact) while wall time is
simulated from record counts, byte volumes, parallel waves, and the
framework profiles.  See DESIGN.md for the substitution rationale.
"""

from .config import (
    ClusterConfig,
    EngineConfig,
    FLINK,
    FrameworkProfile,
    HADOOP,
    MULTIPROCESS,
    PROFILES,
    SPARK,
)
from .core import Executor, lambda_cpu_ns, partition_data
from .flink import SimDataSet, SimFlinkEnv
from .hadoop import SimHadoopJob, SimHadoopPipeline
from .metrics import JobMetrics, StageMetrics
from .multiprocess import (
    MapStep,
    MultiprocessEngine,
    MultiprocessResult,
    ReduceStep,
    default_process_count,
)
from .sequential import SequentialResult, run_sequential
from .sizes import dataset_bytes, sizeof, sizeof_kind, sizeof_pair
from .spark import Broadcast, SimRDD, SimSparkContext

__all__ = [
    "Broadcast",
    "ClusterConfig",
    "EngineConfig",
    "Executor",
    "FLINK",
    "FrameworkProfile",
    "HADOOP",
    "JobMetrics",
    "MULTIPROCESS",
    "MapStep",
    "MultiprocessEngine",
    "MultiprocessResult",
    "PROFILES",
    "ReduceStep",
    "SPARK",
    "SequentialResult",
    "SimDataSet",
    "SimFlinkEnv",
    "SimHadoopJob",
    "SimHadoopPipeline",
    "SimRDD",
    "SimSparkContext",
    "StageMetrics",
    "dataset_bytes",
    "default_process_count",
    "lambda_cpu_ns",
    "partition_data",
    "run_sequential",
    "sizeof",
    "sizeof_kind",
    "sizeof_pair",
]

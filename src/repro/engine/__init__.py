"""Simulated distributed MapReduce substrate.

Replaces the paper's AWS Spark/Hadoop/Flink cluster: lambdas really run
over partitioned Python data (results are exact) while wall time is
simulated from record counts, byte volumes, parallel waves, and the
framework profiles.  See DESIGN.md for the substitution rationale.
"""

from .config import (
    ClusterConfig,
    EngineConfig,
    FLINK,
    FrameworkProfile,
    HADOOP,
    MULTIPROCESS,
    PROFILES,
    SPARK,
)
from .core import Executor, lambda_cpu_ns, partition_data
from .flink import SimDataSet, SimFlinkEnv
from .hadoop import SimHadoopJob, SimHadoopPipeline
from .metrics import JobMetrics, StageMetrics
from .multiprocess import (
    MapStep,
    MultiprocessEngine,
    MultiprocessResult,
    ReduceStep,
    default_process_count,
)
from .sequential import SequentialResult, run_sequential
from .sizes import dataset_bytes, sizeof, sizeof_kind, sizeof_pair
from .source import (
    Dataset,
    GeneratorSource,
    JsonlSource,
    ListSource,
    TextSource,
    as_dataset,
)
from .spill import SpillStats, SpillWriter, merge_partition, partition_of
from .spark import Broadcast, SimRDD, SimSparkContext

__all__ = [
    "Broadcast",
    "ClusterConfig",
    "Dataset",
    "EngineConfig",
    "Executor",
    "FLINK",
    "FrameworkProfile",
    "GeneratorSource",
    "HADOOP",
    "JobMetrics",
    "JsonlSource",
    "ListSource",
    "MULTIPROCESS",
    "MapStep",
    "MultiprocessEngine",
    "MultiprocessResult",
    "PROFILES",
    "ReduceStep",
    "SPARK",
    "SequentialResult",
    "SimDataSet",
    "SimFlinkEnv",
    "SimHadoopJob",
    "SimHadoopPipeline",
    "SimRDD",
    "SimSparkContext",
    "SpillStats",
    "SpillWriter",
    "StageMetrics",
    "TextSource",
    "as_dataset",
    "dataset_bytes",
    "default_process_count",
    "lambda_cpu_ns",
    "merge_partition",
    "partition_data",
    "partition_of",
    "run_sequential",
    "sizeof",
    "sizeof_kind",
    "sizeof_pair",
]

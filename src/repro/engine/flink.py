"""Flink-flavored DataSet API over the simulated executor.

Models the subset of Flink's batch DataSet API that Casper's code
generator targets: map, flatMap, filter, groupBy + reduce, aggregate, and
join.  Flink pipelines operators between stages (no per-job HDFS
materialization), so its translations land between Spark's and Hadoop's
in the paper's measurements (section 7.2).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..errors import EngineError
from .config import EngineConfig
from .core import Executor, lambda_cpu_ns
from .metrics import JobMetrics
from .sizes import sizeof


class SimDataSet:
    """A Flink-style DataSet bound to an ExecutionEnvironment."""

    def __init__(self, env: "SimFlinkEnv", parts: list[list], is_pairs: bool = False):
        self.env = env
        self.parts = parts
        self.is_pairs = is_pairs

    def map(self, fn: Callable[[Any], Any], complexity: int = 2) -> "SimDataSet":
        parts = self.env.executor.run_narrow(
            self.parts, lambda r: (fn(r),), "map", lambda_cpu_ns(complexity)
        )
        return SimDataSet(self.env, parts)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]], complexity: int = 3) -> "SimDataSet":
        parts = self.env.executor.run_narrow(
            self.parts, fn, "map.flat", lambda_cpu_ns(complexity)
        )
        return SimDataSet(self.env, parts)

    def filter(self, fn: Callable[[Any], bool], complexity: int = 2) -> "SimDataSet":
        parts = self.env.executor.run_narrow(
            self.parts, lambda r: (r,) if fn(r) else (), "map.filter", lambda_cpu_ns(complexity)
        )
        return SimDataSet(self.env, parts, is_pairs=self.is_pairs)

    def map_to_pair(self, fn: Callable[[Any], tuple], complexity: int = 2) -> "SimDataSet":
        parts = self.env.executor.run_narrow(
            self.parts, lambda r: (fn(r),), "map.toPair", lambda_cpu_ns(complexity)
        )
        return SimDataSet(self.env, parts, is_pairs=True)

    def flat_map_to_pair(
        self, fn: Callable[[Any], Iterable[tuple]], complexity: int = 3
    ) -> "SimDataSet":
        parts = self.env.executor.run_narrow(
            self.parts, fn, "map.flatToPair", lambda_cpu_ns(complexity)
        )
        return SimDataSet(self.env, parts, is_pairs=True)

    def group_by_key_reduce(
        self, fn: Callable[[Any, Any], Any], use_combiner: bool = True
    ) -> "SimDataSet":
        """groupBy(0).reduce(...) — Flink's keyed reduction."""
        if not self.is_pairs:
            raise EngineError("groupBy requires (key, value) tuples")
        groups = self.env.executor.run_shuffle(
            self.parts, combiner=fn if use_combiner else None
        )
        reduced = self.env.executor.run_reduce_groups(groups, fn)
        from .core import partition_data

        parts = partition_data(reduced, self.env.config.default_partitions)
        return SimDataSet(self.env, parts, is_pairs=True)

    def join(self, other: "SimDataSet") -> "SimDataSet":
        if not (self.is_pairs and other.is_pairs):
            raise EngineError("join requires pair DataSets")
        left = self.env.executor.run_shuffle(self.parts, combiner=None, stage_name="shuffle.join.left")
        right = self.env.executor.run_shuffle(other.parts, combiner=None, stage_name="shuffle.join.right")
        stage = self.env.executor.metrics.stage("join")
        out: list[tuple] = []
        for key, left_values in left.items():
            for lv in left_values:
                for rv in right.get(key, ()):
                    out.append((key, (lv, rv)))
        stage.records_out = len(out)
        self.env.executor.charge_narrow(
            stage, len(out), self.env.config.default_partitions, 100.0
        )
        from .core import partition_data

        parts = partition_data(out, self.env.config.default_partitions)
        return SimDataSet(self.env, parts, is_pairs=True)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        records = [r for part in self.parts for r in part]
        if not records:
            raise EngineError("reduce of an empty DataSet")
        stage = self.env.executor.metrics.stage("reduce.action")
        stage.records_in = len(records)
        self.env.executor.charge_narrow(stage, len(records), len(self.parts), 80.0)
        acc = records[0]
        for record in records[1:]:
            acc = fn(acc, record)
        return acc

    def collect(self) -> list:
        records = [r for part in self.parts for r in part]
        self.env.executor.charge_driver_collect(sum(sizeof(r) for r in records))
        return records


class SimFlinkEnv:
    """Mirrors Flink's ExecutionEnvironment."""

    def __init__(self, config: Optional[EngineConfig] = None):
        base = config or EngineConfig()
        if base.framework.name != "flink":
            base = base.with_framework("flink")
        self.config = base
        self.executor = Executor(self.config)

    @property
    def metrics(self) -> JobMetrics:
        return self.executor.metrics

    def from_collection(self, data: list, partitions: Optional[int] = None) -> SimDataSet:
        parts = self.executor.run_scan(
            list(data), partitions or self.config.default_partitions
        )
        return SimDataSet(self, parts)

    def reset_metrics(self) -> None:
        self.executor = Executor(self.config)

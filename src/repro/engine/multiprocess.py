"""Real multiprocess MapReduce backend over a ``ProcessPoolExecutor``.

Unlike the simulated Spark/Hadoop/Flink engines — which execute lambdas
in-process and only *model* distributed time — this backend actually
spreads map, shuffle-combine, and reduce work across worker processes,
measuring real wall-clock seconds alongside the familiar simulated-time
accounting.  That pairing is what lets the execution planner
(:mod:`repro.planner`) be validated against measured reality.

Results are guaranteed identical to the in-process engines: the same
block partitioning (``partition_data``), per-partition map-side
combining, first-seen key ordering, and ordered value folds are
reproduced exactly — only the work moves to other processes.  Closures
are shipped to workers with plain :mod:`pickle`; payloads that cannot be
pickled (e.g. a locally-defined lambda) trigger a transparent fallback
to in-process execution, recorded as ``fallback_reason`` so callers (the
planner's ``PlanReport``) can surface it.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from ..errors import EngineError
from .config import EngineConfig
from .core import lambda_cpu_ns, partition_data
from .metrics import JobMetrics
from .sizes import sizeof, sizeof_pair


@dataclass(frozen=True)
class MapStep:
    """One narrow stage: ``fn(record) -> iterable of emitted records``."""

    fn: Callable[[Any], Any]
    complexity: int = 3


@dataclass(frozen=True)
class ReduceStep:
    """One keyed reduction: ``fn(a, b) -> a``, optionally map-side combined."""

    fn: Callable[[Any, Any], Any]
    combine: bool = True


@dataclass(frozen=True)
class BridgeStep:
    """A driver-side barrier between fused jobs: pairs in, records out.

    ``fn(pairs) -> records`` re-binds one job's result pairs into the
    next job's input records (the job-graph layer's stitched handoff).
    The bridge runs on the driver — it needs the complete pair list, so
    it cannot be parallelized — but it keeps a fused chain inside one
    engine invocation: no second scan, no second job startup, and the
    bridged records are re-partitioned in memory for the next stages.
    Only the driver-collect network cost is charged, mirroring what the
    unfused execution would pay to collect the first job's result.
    """

    fn: Callable[[list], list]
    name: str = "bridge"


PipelineStep = Union[MapStep, ReduceStep, BridgeStep]


@dataclass
class MultiprocessResult:
    """Outcome of one multiprocess job: pairs, metrics, and how it ran."""

    pairs: list
    metrics: JobMetrics
    processes_used: int = 0
    map_tasks: int = 0
    #: Why the engine executed in-process instead of across workers
    #: (``None`` when the pool actually ran).
    fallback_reason: Optional[str] = None

    @property
    def executed_parallel(self) -> bool:
        return self.fallback_reason is None and self.processes_used > 1


@dataclass
class _MapOut:
    """What one map task reports back to the driver."""

    chunk_pairs: list[list]
    #: Per fused map stage: [records_in, records_out, bytes_out].
    stage_counts: list[list[int]]
    outgoing_records: int = 0
    shuffled_bytes: int = 0

    def merge(self, other: "_MapOut") -> None:
        self.chunk_pairs.extend(other.chunk_pairs)
        for mine, theirs in zip(self.stage_counts, other.stage_counts):
            for i in range(3):
                mine[i] += theirs[i]
        self.outgoing_records += other.outgoing_records
        self.shuffled_bytes += other.shuffled_bytes


def _run_map_chunks(
    map_fns: Sequence[Callable],
    combiner: Optional[Callable[[Any, Any], Any]],
    chunks: list[list],
    shuffle_next: bool,
    account_bytes: bool,
) -> _MapOut:
    """Apply fused map stages (then an optional combine) per chunk.

    Shared by the pool workers and the in-process fallback, so both
    execution modes produce byte-identical results.
    """
    out = _MapOut(chunk_pairs=[], stage_counts=[[0, 0, 0] for _ in map_fns])
    for chunk in chunks:
        current: list = chunk
        for index, fn in enumerate(map_fns):
            counts = out.stage_counts[index]
            emitted: list = []
            for record in current:
                counts[0] += 1
                for pair in fn(record):
                    emitted.append(pair)
            counts[1] += len(emitted)
            if account_bytes:
                for pair in emitted:
                    counts[2] += sizeof(pair)
            current = emitted
        if combiner is not None:
            local: dict[Any, Any] = {}
            for key, value in current:
                if key in local:
                    local[key] = combiner(local[key], value)
                else:
                    local[key] = value
            current = list(local.items())
        out.outgoing_records += len(current)
        if shuffle_next and account_bytes:
            for key, value in current:
                out.shuffled_bytes += sizeof_pair(key, value)
        out.chunk_pairs.append(current)
    return out


def _fold_groups(
    fn: Callable[[Any, Any], Any], groups: list[tuple[Any, list]]
) -> list[tuple]:
    """Ordered fold of each key's values — the reduce-side work."""
    out = []
    for key, values in groups:
        acc = values[0]
        for value in values[1:]:
            acc = fn(acc, value)
        out.append((key, acc))
    return out


def _map_task(payload: bytes) -> _MapOut:
    """Pool entry point: unpickle one map task and run it."""
    map_fns, combiner, chunks, shuffle_next, account_bytes = pickle.loads(payload)
    return _run_map_chunks(map_fns, combiner, chunks, shuffle_next, account_bytes)


def _reduce_task(payload: bytes) -> list[tuple]:
    """Pool entry point: unpickle one bucket of key groups and fold it."""
    fn, groups = pickle.loads(payload)
    return _fold_groups(fn, groups)


def default_process_count() -> int:
    """Worker processes available to the multiprocess backend."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


@dataclass
class MultiprocessEngine:
    """Executes a map/shuffle/reduce pipeline across worker processes.

    ``processes <= 1`` runs the identical algorithm in-process — that is
    the planner's *sequential* backend, and also the automatic fallback
    for unpicklable payloads or tiny inputs.
    """

    config: EngineConfig = field(default_factory=EngineConfig)
    #: Worker processes; None → one per available core.
    processes: Optional[int] = None
    #: Logical partitions (block partitioning, mirrors the simulated
    #: engines); None → ``config.default_partitions``.
    partitions: Optional[int] = None
    #: Inputs smaller than this run in-process — pool startup dominates.
    min_parallel_records: int = 2048
    #: Compute byte volumes (sizeof per record) for simulated accounting.
    account_bytes: bool = True

    def run_pipeline(
        self, records: list, steps: Sequence[PipelineStep]
    ) -> MultiprocessResult:
        """Run the stage list over the records; returns final pairs."""
        if not steps:
            raise EngineError("multiprocess pipeline needs at least one step")
        metrics = JobMetrics()
        processes = (
            self.processes if self.processes is not None else default_process_count()
        )
        partitions = self.partitions or self.config.default_partitions
        result = MultiprocessResult(pairs=[], metrics=metrics)

        pool: Optional[ProcessPoolExecutor] = None
        if processes <= 1:
            result.fallback_reason = "single process requested"
        elif len(records) < self.min_parallel_records:
            result.fallback_reason = (
                f"tiny input ({len(records)} records < "
                f"{self.min_parallel_records}): pool startup would dominate"
            )
        else:
            pool = self._open_pool(processes)
            if pool is None:
                self._record_fallback(
                    result, "worker pool could not start (process/semaphore limits)"
                )
        result.processes_used = processes if pool is not None else 1

        started = time.perf_counter()
        try:
            chunks = partition_data(list(records), partitions)
            self._charge_scan(metrics, records)
            pairs = self._execute_steps(chunks, list(steps), pool, result)
        finally:
            if pool is not None:
                pool.shutdown()
        metrics.add_wall_seconds(time.perf_counter() - started)
        if self.account_bytes:
            self._charge_collect(metrics, pairs)
        result.pairs = pairs
        return result

    # ------------------------------------------------------------------
    # Stage execution

    def _execute_steps(
        self,
        chunks: list[list],
        steps: list[PipelineStep],
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
    ) -> list:
        index = 0
        stage_counter = 0
        while index < len(steps):
            if isinstance(steps[index], BridgeStep):
                step = steps[index]
                index += 1
                chunks = self._bridge_phase(chunks, step, result, stage_counter)
                stage_counter += 1
                continue
            map_fns: list[Callable] = []
            complexities: list[int] = []
            while index < len(steps) and isinstance(steps[index], MapStep):
                map_fns.append(steps[index].fn)
                complexities.append(steps[index].complexity)
                index += 1
            reduce_step: Optional[ReduceStep] = None
            if index < len(steps):
                nxt = steps[index]
                if isinstance(nxt, ReduceStep):
                    reduce_step = nxt
                    index += 1
                elif not isinstance(nxt, BridgeStep):
                    # Fail loudly: an unrecognized step would otherwise
                    # leave `index` unadvanced and spin forever.
                    raise EngineError(
                        f"unknown pipeline step type {type(nxt).__name__!r}"
                    )
            if not map_fns and reduce_step is None:
                continue  # a BridgeStep is next; handled at the loop top
            combiner = (
                reduce_step.fn
                if reduce_step is not None and reduce_step.combine
                else None
            )
            out = self._map_phase(
                chunks,
                map_fns,
                combiner,
                shuffle_next=reduce_step is not None,
                pool=pool,
                result=result,
                stage_offset=stage_counter,
                complexities=complexities,
            )
            stage_counter += len(map_fns)
            chunks = out.chunk_pairs
            if reduce_step is not None:
                pairs = self._reduce_phase(
                    out, reduce_step, pool, result, stage_counter
                )
                stage_counter += 1
                chunks = partition_data(
                    pairs, self.partitions or self.config.default_partitions
                )
        return [pair for chunk in chunks for pair in chunk]

    def _map_phase(
        self,
        chunks: list[list],
        map_fns: list[Callable],
        combiner: Optional[Callable],
        shuffle_next: bool,
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stage_offset: int,
        complexities: list[int],
    ) -> _MapOut:
        started = time.perf_counter()
        out: Optional[_MapOut] = None
        if pool is not None:
            payloads = self._map_payloads(
                chunks, map_fns, combiner, shuffle_next, result
            )
            if payloads is not None:
                try:
                    parts = list(pool.map(_map_task, payloads))
                except BrokenProcessPool:
                    self._record_fallback(result, "worker pool broke mid-job")
                    parts = None
                if parts:
                    out = parts[0]
                    for part in parts[1:]:
                        out.merge(part)
                    result.map_tasks += len(payloads)
        if out is None:
            out = _run_map_chunks(
                map_fns, combiner, chunks, shuffle_next, self.account_bytes
            )
        elapsed = time.perf_counter() - started
        self._charge_map_stages(
            result.metrics,
            out,
            len(chunks),
            stage_offset,
            complexities,
            elapsed,
        )
        return out

    def _map_payloads(
        self,
        chunks: list[list],
        map_fns: list[Callable],
        combiner: Optional[Callable],
        shuffle_next: bool,
        result: MultiprocessResult,
    ) -> Optional[list[bytes]]:
        """Pre-pickle one payload per task; None when unpicklable."""
        task_count = min(len(chunks), max(1, result.processes_used * 2))
        bounds = self._task_bounds(len(chunks), task_count)
        try:
            return [
                pickle.dumps(
                    (
                        map_fns,
                        combiner,
                        chunks[lo:hi],
                        shuffle_next,
                        self.account_bytes,
                    )
                )
                for lo, hi in bounds
            ]
        except Exception as exc:  # PicklingError, TypeError, RecursionError…
            self._record_fallback(result, f"payload not picklable: {exc!r}")
            return None

    @staticmethod
    def _record_fallback(result: MultiprocessResult, reason: str) -> None:
        """Report a fallback; when no pool work has run yet, the job was
        effectively single-process, so keep ``processes_used`` honest."""
        result.fallback_reason = reason
        if result.map_tasks == 0:
            result.processes_used = 1

    @staticmethod
    def _task_bounds(n_chunks: int, n_tasks: int) -> list[tuple[int, int]]:
        """Contiguous chunk slices — order across tasks is preserved."""
        base, extra = divmod(n_chunks, n_tasks)
        bounds = []
        lo = 0
        for task in range(n_tasks):
            hi = lo + base + (1 if task < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _bridge_phase(
        self,
        chunks: list[list],
        step: BridgeStep,
        result: MultiprocessResult,
        stage_index: int,
    ) -> list[list]:
        """Collect pairs to the driver, re-bind, re-partition in memory."""
        started = time.perf_counter()
        pairs = [pair for chunk in chunks for pair in chunk]
        records = step.fn(pairs)
        elapsed = time.perf_counter() - started
        metrics = result.metrics
        stage = metrics.stage(f"{step.name}.{stage_index}")
        stage.records_in = len(pairs)
        stage.records_out = len(records)
        stage.wall_seconds = elapsed
        if self.account_bytes:
            total = sum(sizeof(p) for p in pairs)
            stage.bytes_in = total
            # The handoff pays one driver-side collect over the network;
            # the re-scan + job startup the unfused execution would pay
            # for the downstream job is exactly what fusion saves.
            seconds = (total * self.config.scale) / self.config.cluster.network_bw
            stage.seconds += seconds
            metrics.add_seconds(seconds)
        return partition_data(
            records, self.partitions or self.config.default_partitions
        )

    def _reduce_phase(
        self,
        out: _MapOut,
        reduce_step: ReduceStep,
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stage_index: int,
    ) -> list[tuple]:
        started = time.perf_counter()
        # Driver-side merge in chunk order: first-seen key ordering and
        # per-key value order match the simulated engines exactly.
        grouped: dict[Any, list] = {}
        for chunk in out.chunk_pairs:
            for key, value in chunk:
                grouped.setdefault(key, []).append(value)
        groups = list(grouped.items())
        total_values = sum(len(values) for _key, values in groups)
        pairs: Optional[list[tuple]] = None
        if (
            pool is not None
            and len(groups) > 1
            and total_values >= self.min_parallel_records
        ):
            task_count = min(len(groups), max(1, result.processes_used * 2))
            bounds = self._task_bounds(len(groups), task_count)
            payloads: Optional[list[bytes]] = None
            try:
                payloads = [
                    pickle.dumps((reduce_step.fn, groups[lo:hi]))
                    for lo, hi in bounds
                ]
            except Exception:  # unpicklable reducer — fold in-process
                payloads = None
            if payloads is not None:
                try:
                    folded = list(pool.map(_reduce_task, payloads))
                    pairs = [pair for bucket in folded for pair in bucket]
                except BrokenProcessPool:
                    self._record_fallback(result, "worker pool broke during reduce")
                    pairs = None
        if pairs is None:
            pairs = _fold_groups(reduce_step.fn, groups)
        elapsed = time.perf_counter() - started
        self._charge_reduce_stage(
            result.metrics, out, groups, total_values, stage_index, elapsed
        )
        return pairs

    # ------------------------------------------------------------------
    # Metrics: wall-clock measured, simulated time modeled

    def _open_pool(self, processes: int) -> Optional[ProcessPoolExecutor]:
        import multiprocessing

        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        try:
            return ProcessPoolExecutor(max_workers=processes, mp_context=context)
        except (OSError, ValueError):
            return None

    def _charge_scan(self, metrics: JobMetrics, records: list) -> None:
        stage = metrics.stage("scan")
        stage.records_in = len(records)
        stage.records_out = len(records)
        if self.account_bytes:
            total = sum(sizeof(r) for r in records)
            stage.bytes_in = total
            stage.bytes_out = total
            cluster = self.config.cluster
            seconds = (total * self.config.scale) / (
                cluster.worker_disk_bw * cluster.workers
            )
            stage.seconds += seconds
            metrics.add_seconds(seconds + self.config.framework.startup_s)

    def _charge_map_stages(
        self,
        metrics: JobMetrics,
        out: _MapOut,
        num_chunks: int,
        stage_offset: int,
        complexities: list[int],
        wall_elapsed: float,
    ) -> None:
        profile = self.config.framework
        cluster = self.config.cluster
        for index, counts in enumerate(out.stage_counts):
            records_in, records_out, bytes_out = counts
            stage = metrics.stage(f"map.{stage_offset + index}")
            stage.records_in = records_in
            stage.records_out = records_out
            stage.bytes_out = bytes_out
            complexity = complexities[index] if index < len(complexities) else 3
            total_cpu = (
                records_in
                * self.config.scale
                * lambda_cpu_ns(complexity)
                * profile.record_cpu_factor
                * 1e-9
            )
            slots = max(1, min(num_chunks, cluster.total_slots))
            seconds = total_cpu / slots + profile.per_stage_overhead_s
            if self.account_bytes:
                seconds += (bytes_out * self.config.scale) / cluster.emit_bw
            stage.seconds += seconds
            stage.wall_seconds = wall_elapsed / max(1, len(out.stage_counts))
            metrics.add_seconds(seconds)

    def _charge_reduce_stage(
        self,
        metrics: JobMetrics,
        out: _MapOut,
        groups: list[tuple[Any, list]],
        total_values: int,
        stage_index: int,
        wall_elapsed: float,
    ) -> None:
        cluster = self.config.cluster
        stage = metrics.stage(f"shuffle.reduce.{stage_index}")
        stage.records_in = total_values
        stage.records_out = len(groups)
        stage.bytes_shuffled = out.shuffled_bytes
        stage.wall_seconds = wall_elapsed
        scaled = out.shuffled_bytes * self.config.scale
        seconds = scaled / cluster.network_bw + cluster.shuffle_latency_s
        seconds += 2 * scaled / (cluster.worker_disk_bw * cluster.workers)
        stage.seconds += seconds
        metrics.add_seconds(seconds)

    def _charge_collect(self, metrics: JobMetrics, pairs: list) -> None:
        total = sum(sizeof(p) for p in pairs)
        metrics.add_seconds(
            (total * self.config.scale) / self.config.cluster.network_bw
        )

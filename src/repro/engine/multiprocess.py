"""Real multiprocess MapReduce backend over a ``ProcessPoolExecutor``.

Unlike the simulated Spark/Hadoop/Flink engines — which execute lambdas
in-process and only *model* distributed time — this backend actually
spreads map, shuffle-combine, and reduce work across worker processes,
measuring real wall-clock seconds alongside the familiar simulated-time
accounting.  That pairing is what lets the execution planner
(:mod:`repro.planner`) be validated against measured reality.

Results are guaranteed identical to the in-process engines: the same
block partitioning (``partition_data``), per-partition map-side
combining, first-seen key ordering, and ordered value folds are
reproduced exactly — only the work moves to other processes.  Closures
are shipped to workers with plain :mod:`pickle`; payloads that cannot be
pickled (e.g. a locally-defined lambda) trigger a transparent fallback
to in-process execution, recorded as ``fallback_reason`` so callers (the
planner's ``PlanReport``) can surface it.  Only genuine pickling errors
fall back — an exception raised *inside* a map or reduce callable in a
worker always propagates to the caller.

With a ``memory_budget`` the engine runs **out of core**: input arrives
as bounded chunk streams (:mod:`repro.engine.source`), map output is
hash-partitioned into budgeted spill buffers that flush to disk runs
(:mod:`repro.engine.spill`; pool workers spill locally), and reduces
merge one partition at a time — peak resident memory is O(budget +
one partition) rather than O(input), while results stay byte-identical
to the in-memory path.
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Union

from ..cpu import available_cpu_count
from ..diagnostics.pickling import probe_payload, static_unpicklable_reason
from ..errors import EngineError, SpillError
from .columnar import Chunk, build_chunk, grouped_fold
from .config import EngineConfig
from .core import lambda_cpu_ns, partition_data
from .metrics import JobMetrics
from .shm import (
    SHM_AVAILABLE,
    ShmRef,
    load_payload,
    release_segments,
    write_payload,
)
from .sizes import sizeof, sizeof_pair
from .source import (
    DEFAULT_CHUNK_RECORDS,
    Dataset,
    ListSource,
    as_dataset,
    chunk_records_for,
)
from .spill import (
    SpillMapOut,
    SpillStats,
    SpillWriter,
    cleanup_runs,
    merge_partition,
)

#: Errors ``pickle.dumps`` itself raises for unpicklable payloads
#: (RecursionError: a structure too deep to serialize).  Only these
#: trigger the transparent in-process fallback — any other exception is
#: a genuine bug in user code (or ours) and must propagate, never be
#: silently swallowed as "unpicklable".
_PICKLE_ERRORS = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    RecursionError,
)


@dataclass(frozen=True)
class MapStep:
    """One narrow stage: ``fn(record) -> iterable of emitted records``."""

    fn: Callable[[Any], Any]
    complexity: int = 3


@dataclass(frozen=True)
class ReduceStep:
    """One keyed reduction: ``fn(a, b) -> a``, optionally map-side combined."""

    fn: Callable[[Any, Any], Any]
    combine: bool = True


@dataclass(frozen=True)
class BridgeStep:
    """A driver-side barrier between fused jobs: pairs in, records out.

    ``fn(pairs) -> records`` re-binds one job's result pairs into the
    next job's input records (the job-graph layer's stitched handoff).
    The bridge runs on the driver — it needs the complete pair list, so
    it cannot be parallelized — but it keeps a fused chain inside one
    engine invocation: no second scan, no second job startup, and the
    bridged records are re-partitioned in memory for the next stages.
    Only the driver-collect network cost is charged, mirroring what the
    unfused execution would pay to collect the first job's result.
    """

    fn: Callable[[list], list]
    name: str = "bridge"


PipelineStep = Union[MapStep, ReduceStep, BridgeStep]


@dataclass
class MultiprocessResult:
    """Outcome of one multiprocess job: pairs, metrics, and how it ran."""

    pairs: list
    metrics: JobMetrics
    processes_used: int = 0
    map_tasks: int = 0
    #: Why the engine executed in-process instead of across workers
    #: (``None`` when the pool actually ran).
    fallback_reason: Optional[str] = None
    #: Stable diagnostic code for the fallback (``REP301``–``REP305``);
    #: set whenever ``fallback_reason`` is.
    fallback_code: Optional[str] = None
    #: Pickle probes where static analysis said OK but the runtime dump
    #: failed — the analyzer's measured imprecision (see ``PlanReport``).
    probe_disagreements: int = 0
    #: Whether the out-of-core streaming path executed this job.
    spilled: bool = False
    #: High-water mark of estimated resident bytes (streaming runs only).
    peak_resident_bytes: int = 0
    #: Spill accounting (:meth:`repro.engine.spill.SpillStats.as_dict`);
    #: None for in-memory runs.
    spill_stats: Optional[dict] = None
    #: How task payloads traveled to the pool: "queue" (re-pickled
    #: through the executor pipes) or "shm" (staged once in shared
    #: memory, handed off by name).
    transport: str = "queue"
    #: Shared-memory segments created / payload bytes they carried.
    shm_segments: int = 0
    shm_bytes: int = 0
    #: Payloads that fell back to the queue after a failed segment write.
    shm_fallbacks: int = 0
    #: Chunk layout the engine ran with ("rows" or "columns").
    layout: str = "rows"
    #: Chunks whose first map stage executed on the vectorized column
    #: path, and chunks where an exactness guard (int64 overflow risk,
    #: non-finite float result, type-promise break) forced the compiled
    #: row loop instead.
    columnar_chunks: int = 0
    guard_fallbacks: int = 0
    #: Mid-job plan revisions the engine made (streaming runs only):
    #: each entry is a dict with a ``kind`` and a human-readable
    #: ``note`` — e.g. ``stream_partitions`` when a first-chunk probe
    #: of an unknown-length source let the engine shrink the partition
    #: count to match the measured size.  Never silent: callers
    #: surface these through ``PlanReport.adaptations``.
    adaptations: list = field(default_factory=list)

    @property
    def executed_parallel(self) -> bool:
        return self.fallback_reason is None and self.processes_used > 1

    def transport_stats(self) -> Optional[dict]:
        """Compact transport accounting; None when nothing pooled."""
        if self.shm_segments == 0 and self.shm_fallbacks == 0:
            return None
        return {
            "transport": self.transport,
            "segments": self.shm_segments,
            "bytes": self.shm_bytes,
            "fallbacks": self.shm_fallbacks,
        }

    def columnar_stats(self) -> Optional[dict]:
        """Compact columnar accounting; None when nothing vectorized."""
        if self.columnar_chunks == 0 and self.guard_fallbacks == 0:
            return None
        return {
            "layout": self.layout,
            "columnar_chunks": self.columnar_chunks,
            "guard_fallbacks": self.guard_fallbacks,
        }


@dataclass
class _MapOut:
    """What one map task reports back to the driver."""

    chunk_pairs: list[list]
    #: Per fused map stage: [records_in, records_out, bytes_out].
    stage_counts: list[list[int]]
    outgoing_records: int = 0
    shuffled_bytes: int = 0
    #: Chunks the vectorized column path produced / guard-rejected.
    columnar_chunks: int = 0
    guard_fallbacks: int = 0

    def merge(self, other: "_MapOut") -> None:
        self.chunk_pairs.extend(other.chunk_pairs)
        for mine, theirs in zip(self.stage_counts, other.stage_counts):
            for i in range(3):
                mine[i] += theirs[i]
        self.outgoing_records += other.outgoing_records
        self.shuffled_bytes += other.shuffled_bytes
        self.columnar_chunks += other.columnar_chunks
        self.guard_fallbacks += other.guard_fallbacks


def _run_map_chunks(
    map_fns: Sequence[Callable],
    combiner: Optional[Callable[[Any, Any], Any]],
    chunks: list[list],
    shuffle_next: bool,
    account_bytes: bool,
) -> _MapOut:
    """Apply fused map stages (then an optional combine) per chunk.

    Shared by the pool workers and the in-process fallback, so both
    execution modes produce byte-identical results.

    A mapper exposing ``map_chunk`` (the compiled kernels of
    :mod:`repro.codegen.kernels`) is handed the whole chunk at once —
    one call per chunk instead of one per record; per-record mappers
    run the classic inner loop.  Both paths emit identical pairs in
    identical order.

    When the sole map stage also exposes ``map_block`` and the combiner
    is a recognized sum/min/max fold, the chunk stays in column form end
    to end: the vectorized kernel emits a value/key array block and
    :func:`~repro.engine.columnar.grouped_fold` produces the per-chunk
    combine partials with array folds — bit-identical to the dict
    combine (same per-chunk grouping, same first-seen key order, same
    fold sequence), with the pair tuples never materialized.
    """
    out = _MapOut(chunk_pairs=[], stage_counts=[[0, 0, 0] for _ in map_fns])
    fold_fn = (
        map_fns[0]
        if len(map_fns) == 1 and hasattr(map_fns[0], "map_block")
        else None
    )
    fold_op = (
        getattr(combiner, "grouped_op", None) if fold_fn is not None else None
    )
    for chunk in chunks:
        current: list = chunk
        combined = False
        if fold_op is not None:
            counts = out.stage_counts[0]
            block = fold_fn.map_block(current)
            if getattr(fold_fn, "last_chunk_fallback", False):
                out.guard_fallbacks += 1
            if block is not None:
                folded = grouped_fold(block, fold_op)
                out.columnar_chunks += 1
                counts[0] += len(current)
                counts[1] += len(block)
                if account_bytes:
                    counts[2] += block.stage_bytes()
                if folded is not None:
                    current = folded
                    combined = True
                else:
                    current = block.pairs()
            else:
                # Guard trip (or unvectorizable chunk): the compiled row
                # loop reruns this chunk without repeating the rejected
                # vector work.
                counts[0] += len(current)
                emitted = fold_fn.map_rows(current)
                counts[1] += len(emitted)
                if account_bytes:
                    for pair in emitted:
                        counts[2] += sizeof(pair)
                current = emitted
        else:
            for index, fn in enumerate(map_fns):
                counts = out.stage_counts[index]
                chunk_fn = getattr(fn, "map_chunk", None)
                if chunk_fn is not None:
                    counts[0] += len(current)
                    emitted = list(chunk_fn(current))
                    if getattr(fn, "last_chunk_columnar", False):
                        out.columnar_chunks += 1
                    if getattr(fn, "last_chunk_fallback", False):
                        out.guard_fallbacks += 1
                    counts[1] += len(emitted)
                    if account_bytes:
                        for pair in emitted:
                            counts[2] += sizeof(pair)
                    current = emitted
                    continue
                emitted = []
                for record in current:
                    counts[0] += 1
                    for pair in fn(record):
                        emitted.append(pair)
                counts[1] += len(emitted)
                if account_bytes:
                    for pair in emitted:
                        counts[2] += sizeof(pair)
                current = emitted
        if combiner is not None and not combined:
            local: dict[Any, Any] = {}
            for key, value in current:
                if key in local:
                    local[key] = combiner(local[key], value)
                else:
                    local[key] = value
            current = list(local.items())
        out.outgoing_records += len(current)
        if shuffle_next and account_bytes:
            for key, value in current:
                out.shuffled_bytes += sizeof_pair(key, value)
        out.chunk_pairs.append(current)
    return out


def _fold_groups(
    fn: Callable[[Any, Any], Any], groups: list[tuple[Any, list]]
) -> list[tuple]:
    """Ordered fold of each key's values — the reduce-side work."""
    out = []
    for key, values in groups:
        acc = values[0]
        for value in values[1:]:
            acc = fn(acc, value)
        out.append((key, acc))
    return out


def _map_task(payload: Union[bytes, ShmRef]) -> _MapOut:
    """Pool entry point: unpickle one map task and run it."""
    map_fns, combiner, chunks, shuffle_next, account_bytes = load_payload(payload)
    return _run_map_chunks(map_fns, combiner, chunks, shuffle_next, account_bytes)


def _reduce_task(payload: Union[bytes, ShmRef]) -> list[tuple]:
    """Pool entry point: unpickle one bucket of key groups and fold it."""
    fn, groups = load_payload(payload)
    return _fold_groups(fn, groups)


def _run_spill_map(
    map_fns: Sequence[Callable],
    combiner: Optional[Callable[[Any, Any], Any]],
    chunks: Iterable[list],
    writer: SpillWriter,
    account_bytes: bool,
) -> SpillMapOut:
    """Apply fused map stages chunkwise, spilling output through ``writer``.

    The per-chunk work (map stages, then the optional combine) is the
    same :func:`_run_map_chunks` the in-memory engine uses — per-chunk
    combining groups records identically, so spilled results stay
    byte-identical.  Emitted pairs go straight into the spill writer's
    hash-partitioned, budget-bounded buffers instead of accumulating.
    """
    out = SpillMapOut(stage_counts=[[0, 0, 0] for _ in map_fns])
    # With no combiner and a single vectorized map stage, emitted pairs
    # can stay in column form all the way to disk: the block is routed
    # into the writer's partition buffers as value/key sub-arrays
    # (:meth:`SpillWriter.add_block`) and only expanded to pair tuples
    # at merge time.  With a combiner, _run_map_chunks' grouped-fold
    # path already collapses each chunk to a handful of partials.
    block_fn = (
        getattr(map_fns[0], "map_block", None)
        if combiner is None and len(map_fns) == 1
        else None
    )
    for chunk in chunks:
        out.chunks += 1
        out.input_records += len(chunk)
        chunk_bytes = 0
        if account_bytes:
            chunk_bytes = sum(sizeof(r) for r in chunk)
            out.input_bytes += chunk_bytes
        block = block_fn(chunk) if block_fn is not None else None
        if block_fn is not None and getattr(
            map_fns[0], "last_chunk_fallback", False
        ):
            out.guard_fallbacks += 1
        if block is not None:
            out.columnar_chunks += 1
            counts = out.stage_counts[0]
            counts[0] += len(chunk)
            counts[1] += len(block)
            if account_bytes:
                counts[2] += block.stage_bytes()
            writer.add_block(block)
        elif block_fn is not None:
            # Guard trip: rerun this chunk on the compiled row loop
            # without repeating the rejected vector computation.
            counts = out.stage_counts[0]
            counts[0] += len(chunk)
            emitted = map_fns[0].map_rows(chunk)
            counts[1] += len(emitted)
            for key, value in emitted:
                if account_bytes:
                    counts[2] += sizeof((key, value))
                writer.add(key, value)
        else:
            mapped = _run_map_chunks(
                map_fns, combiner, [chunk], False, account_bytes
            )
            out.merge_counts(mapped.stage_counts)
            out.columnar_chunks += mapped.columnar_chunks
            out.guard_fallbacks += mapped.guard_fallbacks
            for key, value in mapped.chunk_pairs[0]:
                writer.add(key, value)
        # The in-flight chunk is resident alongside the shuffle buffers.
        writer.stats.note_resident(writer.resident_bytes + chunk_bytes)
    writer.finish()
    out.run_files = writer.run_files
    out.key_order = writer.key_order
    out.outgoing_records = writer.pairs_in
    out.shuffled_bytes = writer.bytes_in
    out.stats = writer.stats
    return out


def _spill_map_task(payload: Union[bytes, ShmRef]) -> SpillMapOut:
    """Pool entry point: one map task spilling locally to shared disk."""
    (
        map_fns,
        combiner,
        chunks,
        spill_dir,
        partitions,
        budget,
        task_id,
        account_bytes,
    ) = load_payload(payload)
    writer = SpillWriter(spill_dir, partitions, budget, task_id=task_id)
    return _run_spill_map(map_fns, combiner, chunks, writer, account_bytes)


def _spill_reduce_task(payload: Union[bytes, ShmRef]) -> tuple[list[tuple], int]:
    """Pool entry point: merge-reduce one partition's spill runs."""
    fn, run_files = load_payload(payload)
    stats = SpillStats()
    pairs = merge_partition(run_files, fn, stats)
    return pairs, stats.peak_resident_bytes


def default_process_count() -> int:
    """Worker processes available to the multiprocess backend
    (cgroup/affinity aware — see :func:`repro.cpu.available_cpu_count`)."""
    return available_cpu_count()


@dataclass
class MultiprocessEngine:
    """Executes a map/shuffle/reduce pipeline across worker processes.

    ``processes <= 1`` runs the identical algorithm in-process — that is
    the planner's *sequential* backend, and also the automatic fallback
    for unpicklable payloads or tiny inputs.
    """

    config: EngineConfig = field(default_factory=EngineConfig)
    #: Worker processes; None → one per available core.
    processes: Optional[int] = None
    #: Logical partitions (block partitioning, mirrors the simulated
    #: engines); None → ``config.default_partitions``.
    partitions: Optional[int] = None
    #: Inputs smaller than this run in-process — pool startup dominates.
    min_parallel_records: int = 2048
    #: Compute byte volumes (sizeof per record) for simulated accounting.
    account_bytes: bool = True
    #: Estimated bytes the shuffle may hold resident before spilling to
    #: disk; None disables the out-of-core streaming path entirely.
    memory_budget: Optional[int] = None
    #: Where spill runs are written; None → a private temp directory,
    #: removed when the job finishes.
    spill_dir: Optional[str] = None
    #: How task payloads reach the pool: "queue" re-pickles through the
    #: executor pipes; "shm" stages each payload once in a
    #: multiprocessing.shared_memory segment and sends only the name;
    #: "auto" uses shm for payloads of at least ``shm_min_bytes`` when
    #: the platform supports it, with transparent per-payload fallback.
    transport: str = "auto"
    #: Below this payload size "auto" stays on the queue — the segment
    #: create/attach syscalls cost more than piping a few kilobytes.
    shm_min_bytes: int = 65536
    #: Chunk layout: "rows" keeps record-list chunks (live columns are
    #: still cached on the chunk after first extraction); "columns"
    #: builds ColumnChunks eagerly at the source boundary when the first
    #: map stage is vectorized.  The planner resolves "auto" before the
    #: engine is constructed.
    layout: str = "rows"

    def run_pipeline(
        self, records: Union[list, Dataset], steps: Sequence[PipelineStep]
    ) -> MultiprocessResult:
        """Run the stage list over the records; returns final pairs.

        ``records`` may be a plain list or a
        :class:`~repro.engine.source.Dataset`.  With a ``memory_budget``
        the out-of-core streaming path executes: input is consumed in
        bounded chunks and the shuffle spills to disk once the budget is
        exceeded, so peak resident memory is O(budget) instead of O(n).
        Without a budget, Dataset inputs are materialized and the
        in-memory path runs unchanged.
        """
        if not steps:
            raise EngineError("multiprocess pipeline needs at least one step")
        if self.transport not in ("auto", "shm", "queue"):
            raise EngineError(
                f"unknown transport {self.transport!r}; "
                "expected 'auto', 'shm' or 'queue'"
            )
        if self.layout not in ("rows", "columns"):
            raise EngineError(
                f"unknown layout {self.layout!r}; expected 'rows' or "
                "'columns' (the planner resolves 'auto' before the engine)"
            )
        if self.memory_budget is not None:
            return self._run_streaming(as_dataset(records), list(steps))
        if isinstance(records, Dataset):
            records = records.materialize()
        metrics = JobMetrics()
        processes = (
            self.processes if self.processes is not None else default_process_count()
        )
        partitions = self.partitions or self.config.default_partitions
        result = MultiprocessResult(pairs=[], metrics=metrics)

        pool: Optional[ProcessPoolExecutor] = None
        if processes <= 1:
            result.fallback_reason = "single process requested"
            result.fallback_code = "REP302"
        elif len(records) < self.min_parallel_records:
            result.fallback_reason = (
                f"tiny input ({len(records)} records < "
                f"{self.min_parallel_records}): pool startup would dominate"
            )
            result.fallback_code = "REP303"
        else:
            pool = self._open_pool(processes)
            if pool is None:
                self._record_fallback(
                    result,
                    "worker pool could not start (process/semaphore limits)",
                    "REP304",
                )
        result.processes_used = processes if pool is not None else 1

        result.layout = self.layout
        started = time.perf_counter()
        try:
            chunks = partition_data(list(records), partitions)
            prepare = self._chunk_preparer(list(steps))
            if prepare is not None:
                chunks = [prepare(chunk) for chunk in chunks]
            self._charge_scan(metrics, records)
            pairs = self._execute_steps(chunks, list(steps), pool, result)
        finally:
            if pool is not None:
                pool.shutdown()
        metrics.add_wall_seconds(time.perf_counter() - started)
        if self.account_bytes:
            self._charge_collect(metrics, pairs)
        result.pairs = pairs
        return result

    # ------------------------------------------------------------------
    # Stage execution

    def _execute_steps(
        self,
        chunks: list[list],
        steps: list[PipelineStep],
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
    ) -> list:
        index = 0
        stage_counter = 0
        while index < len(steps):
            if isinstance(steps[index], BridgeStep):
                step = steps[index]
                index += 1
                chunks = self._bridge_phase(chunks, step, result, stage_counter)
                stage_counter += 1
                continue
            map_fns: list[Callable] = []
            complexities: list[int] = []
            while index < len(steps) and isinstance(steps[index], MapStep):
                map_fns.append(steps[index].fn)
                complexities.append(steps[index].complexity)
                index += 1
            reduce_step: Optional[ReduceStep] = None
            if index < len(steps):
                nxt = steps[index]
                if isinstance(nxt, ReduceStep):
                    reduce_step = nxt
                    index += 1
                elif not isinstance(nxt, BridgeStep):
                    # Fail loudly: an unrecognized step would otherwise
                    # leave `index` unadvanced and spin forever.
                    raise EngineError(
                        f"unknown pipeline step type {type(nxt).__name__!r}"
                    )
            if not map_fns and reduce_step is None:
                continue  # a BridgeStep is next; handled at the loop top
            combiner = (
                reduce_step.fn
                if reduce_step is not None and reduce_step.combine
                else None
            )
            out = self._map_phase(
                chunks,
                map_fns,
                combiner,
                shuffle_next=reduce_step is not None,
                pool=pool,
                result=result,
                stage_offset=stage_counter,
                complexities=complexities,
            )
            stage_counter += len(map_fns)
            chunks = out.chunk_pairs
            if reduce_step is not None:
                pairs = self._reduce_phase(
                    out, reduce_step, pool, result, stage_counter
                )
                stage_counter += 1
                chunks = partition_data(
                    pairs, self.partitions or self.config.default_partitions
                )
        return [pair for chunk in chunks for pair in chunk]

    def _map_phase(
        self,
        chunks: list[list],
        map_fns: list[Callable],
        combiner: Optional[Callable],
        shuffle_next: bool,
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stage_offset: int,
        complexities: list[int],
    ) -> _MapOut:
        started = time.perf_counter()
        out: Optional[_MapOut] = None
        if pool is not None:
            task_count = min(len(chunks), max(1, result.processes_used * 2))
            bounds = self._task_bounds(len(chunks), task_count)
            tasks = [
                (map_fns, combiner, chunks[lo:hi], shuffle_next, self.account_bytes)
                for lo, hi in bounds
            ]
            sent, refs, error = self._send_tasks(tasks, result)
            if error is not None:
                self._record_fallback(result, error, "REP301")
            else:
                try:
                    parts = list(pool.map(_map_task, sent))
                except BrokenProcessPool:
                    self._record_fallback(result, "worker pool broke mid-job")
                    parts = None
                finally:
                    release_segments(refs)
                if parts:
                    out = parts[0]
                    for part in parts[1:]:
                        out.merge(part)
                    result.map_tasks += len(tasks)
        if out is None:
            out = _run_map_chunks(
                map_fns, combiner, chunks, shuffle_next, self.account_bytes
            )
        result.columnar_chunks += out.columnar_chunks
        result.guard_fallbacks += out.guard_fallbacks
        elapsed = time.perf_counter() - started
        self._charge_map_stages(
            result.metrics,
            out,
            len(chunks),
            stage_offset,
            complexities,
            elapsed,
        )
        return out

    def _send_tasks(
        self, tasks: list, result: MultiprocessResult
    ) -> tuple[list[Union[bytes, ShmRef]], list[ShmRef], Optional[str]]:
        """Pickle per-task objects and stage them for the pool.

        Payloads are pickled with protocol 5 and a ``buffer_callback``,
        so ndarray columns inside a task (ColumnChunks, cached column
        arrays, spillable blocks) become out-of-band buffers whose raw
        bytes go straight into the shared segment — the column data is
        copied exactly once, into shared memory, and never flattened
        into an intermediate payload byte string.  Queue transport (or a
        failed segment write) re-pickles the task in-band instead.

        Returns ``(sent, refs, error)``; a non-None ``error`` means the
        payload is unpicklable (sent/refs are empty and any staged
        segments were released) and the caller falls back in-process.
        Only pickling failures report as errors — anything else raised
        while serializing (a buggy ``__reduce__`` in user code) is a
        real bug and propagates.
        """
        use_shm = self.transport != "queue" and SHM_AVAILABLE
        threshold = 0 if self.transport == "shm" else self.shm_min_bytes
        sent: list[Union[bytes, ShmRef]] = []
        refs: list[ShmRef] = []
        try:
            for task in tasks:
                if not use_shm:
                    sent.append(pickle.dumps(task))
                    continue
                buffers: list = []
                head = pickle.dumps(
                    task, protocol=5, buffer_callback=buffers.append
                )
                try:
                    total = len(head) + sum(
                        buffer.raw().nbytes for buffer in buffers
                    )
                except BufferError:
                    total = None  # non-contiguous buffer: in-band it goes
                ref = None
                if total is not None and total >= threshold:
                    ref = write_payload(head, buffers)
                    if ref is None:
                        result.shm_fallbacks += 1
                if ref is not None:
                    refs.append(ref)
                    sent.append(ref)
                    result.transport = "shm"
                    result.shm_segments += 1
                    result.shm_bytes += total
                elif buffers:
                    sent.append(pickle.dumps(task))
                else:
                    sent.append(head)
        except _PICKLE_ERRORS as exc:
            release_segments(refs)
            # Disagreement accounting: the static walker green-lit a
            # payload the runtime dump rejected — measured imprecision.
            if static_unpicklable_reason(tasks) is None:
                result.probe_disagreements += 1
            return [], [], f"payload not picklable: {exc!r}"
        return sent, refs, None

    @staticmethod
    def _record_fallback(
        result: MultiprocessResult, reason: str, code: str = "REP305"
    ) -> None:
        """Report a fallback; when no pool work has run yet, the job was
        effectively single-process, so keep ``processes_used`` honest."""
        result.fallback_reason = reason
        result.fallback_code = code
        if result.map_tasks == 0:
            result.processes_used = 1

    def _chunk_preparer(
        self, steps: Sequence[Any]
    ) -> Optional[Callable[[list], list]]:
        """How to wrap source chunks for the first map stage, if at all.

        Only meaningful when the pipeline opens with a vectorized
        compiled mapper (``columns_spec`` proves live columns): with
        ``layout="columns"`` every source chunk becomes a ColumnChunk
        with its live columns extracted eagerly, once; with
        ``layout="rows"`` chunks get the cache-capable ``Chunk`` wrapper
        so each column is still extracted at most once per chunk even
        when several kernels (or a guard-trip retry) touch it.
        """
        fn = None
        if steps and isinstance(steps[0], MapStep):
            fn = steps[0].fn
        elif steps and callable(steps[0]) and not isinstance(
            steps[0], (ReduceStep, BridgeStep)
        ):
            fn = steps[0]
        if fn is None:
            return None
        specs = getattr(fn, "columns_spec", None)
        if specs is None:
            return None
        if self.layout == "columns":
            return lambda chunk: build_chunk(chunk, specs)
        return Chunk

    @staticmethod
    def _task_bounds(n_chunks: int, n_tasks: int) -> list[tuple[int, int]]:
        """Contiguous chunk slices — order across tasks is preserved."""
        base, extra = divmod(n_chunks, n_tasks)
        bounds = []
        lo = 0
        for task in range(n_tasks):
            hi = lo + base + (1 if task < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _bridge_phase(
        self,
        chunks: list[list],
        step: BridgeStep,
        result: MultiprocessResult,
        stage_index: int,
    ) -> list[list]:
        """Collect pairs to the driver, re-bind, re-partition in memory."""
        started = time.perf_counter()
        pairs = [pair for chunk in chunks for pair in chunk]
        records = step.fn(pairs)
        elapsed = time.perf_counter() - started
        metrics = result.metrics
        stage = metrics.stage(f"{step.name}.{stage_index}")
        stage.records_in = len(pairs)
        stage.records_out = len(records)
        stage.wall_seconds = elapsed
        if self.account_bytes:
            total = sum(sizeof(p) for p in pairs)
            stage.bytes_in = total
            # The handoff pays one driver-side collect over the network;
            # the re-scan + job startup the unfused execution would pay
            # for the downstream job is exactly what fusion saves.
            seconds = (total * self.config.scale) / self.config.cluster.network_bw
            stage.seconds += seconds
            metrics.add_seconds(seconds)
        return partition_data(
            records, self.partitions or self.config.default_partitions
        )

    def _reduce_phase(
        self,
        out: _MapOut,
        reduce_step: ReduceStep,
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stage_index: int,
    ) -> list[tuple]:
        started = time.perf_counter()
        # Driver-side merge in chunk order: first-seen key ordering and
        # per-key value order match the simulated engines exactly.
        grouped: dict[Any, list] = {}
        for chunk in out.chunk_pairs:
            for key, value in chunk:
                grouped.setdefault(key, []).append(value)
        groups = list(grouped.items())
        total_values = sum(len(values) for _key, values in groups)
        pairs: Optional[list[tuple]] = None
        if (
            pool is not None
            and len(groups) > 1
            and total_values >= self.min_parallel_records
        ):
            task_count = min(len(groups), max(1, result.processes_used * 2))
            bounds = self._task_bounds(len(groups), task_count)
            # An unpicklable reducer folds in-process without recording a
            # fallback — the map phase may still have pooled fine.
            sent, refs, error = self._send_tasks(
                [(reduce_step.fn, groups[lo:hi]) for lo, hi in bounds], result
            )
            if error is None:
                try:
                    folded = list(pool.map(_reduce_task, sent))
                    pairs = [pair for bucket in folded for pair in bucket]
                except BrokenProcessPool:
                    self._record_fallback(result, "worker pool broke during reduce")
                    pairs = None
                finally:
                    release_segments(refs)
        if pairs is None:
            pairs = _fold_groups(reduce_step.fn, groups)
        elapsed = time.perf_counter() - started
        self._charge_reduce_stage(
            result.metrics, out, groups, total_values, stage_index, elapsed
        )
        return pairs

    # ------------------------------------------------------------------
    # Metrics: wall-clock measured, simulated time modeled

    def _open_pool(self, processes: int) -> Optional[ProcessPoolExecutor]:
        import multiprocessing

        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        try:
            return ProcessPoolExecutor(max_workers=processes, mp_context=context)
        except (OSError, ValueError):
            return None

    def _charge_scan(self, metrics: JobMetrics, records: list) -> None:
        stage = metrics.stage("scan")
        total = sum(sizeof(r) for r in records) if self.account_bytes else 0
        self._charge_scan_totals(metrics, stage, len(records), total)

    def _charge_map_stages(
        self,
        metrics: JobMetrics,
        out: _MapOut,
        num_chunks: int,
        stage_offset: int,
        complexities: list[int],
        wall_elapsed: float,
    ) -> None:
        profile = self.config.framework
        cluster = self.config.cluster
        for index, counts in enumerate(out.stage_counts):
            records_in, records_out, bytes_out = counts
            stage = metrics.stage(f"map.{stage_offset + index}")
            stage.records_in = records_in
            stage.records_out = records_out
            stage.bytes_out = bytes_out
            complexity = complexities[index] if index < len(complexities) else 3
            total_cpu = (
                records_in
                * self.config.scale
                * lambda_cpu_ns(complexity)
                * profile.record_cpu_factor
                * 1e-9
            )
            slots = max(1, min(num_chunks, cluster.total_slots))
            seconds = total_cpu / slots + profile.per_stage_overhead_s
            if self.account_bytes:
                seconds += (bytes_out * self.config.scale) / cluster.emit_bw
            stage.seconds += seconds
            stage.wall_seconds = wall_elapsed / max(1, len(out.stage_counts))
            metrics.add_seconds(seconds)

    def _charge_reduce_stage(
        self,
        metrics: JobMetrics,
        out: _MapOut,
        groups: list[tuple[Any, list]],
        total_values: int,
        stage_index: int,
        wall_elapsed: float,
    ) -> None:
        cluster = self.config.cluster
        stage = metrics.stage(f"shuffle.reduce.{stage_index}")
        stage.records_in = total_values
        stage.records_out = len(groups)
        stage.bytes_shuffled = out.shuffled_bytes
        stage.wall_seconds = wall_elapsed
        scaled = out.shuffled_bytes * self.config.scale
        seconds = scaled / cluster.network_bw + cluster.shuffle_latency_s
        seconds += 2 * scaled / (cluster.worker_disk_bw * cluster.workers)
        stage.seconds += seconds
        metrics.add_seconds(seconds)

    def _charge_collect(self, metrics: JobMetrics, pairs: list) -> None:
        total = sum(sizeof(p) for p in pairs)
        metrics.add_seconds(
            (total * self.config.scale) / self.config.cluster.network_bw
        )

    # ------------------------------------------------------------------
    # Out-of-core streaming execution (spill-to-disk shuffle)

    def _run_streaming(
        self, dataset: Dataset, steps: list[PipelineStep]
    ) -> MultiprocessResult:
        """Execute the pipeline over bounded chunks with an external shuffle.

        Input is consumed chunk by chunk (never fully materialized), map
        output is hash-partitioned into budgeted spill buffers that
        flush to disk runs, and each reduce merges one partition at a
        time — peak resident memory is O(memory_budget + one partition)
        instead of O(input).  Results are byte-identical to the
        in-memory path: chunk layout reproduces ``partition_data``, runs
        preserve arrival order, and the final pairs are restored to
        global first-seen key order.
        """
        if self.memory_budget is None or self.memory_budget <= 0:
            raise SpillError(
                f"memory budget must be a positive byte count, "
                f"got {self.memory_budget!r}"
            )
        metrics = JobMetrics()
        processes = (
            self.processes if self.processes is not None else default_process_count()
        )
        partitions = self.partitions or self.config.default_partitions
        result = MultiprocessResult(
            pairs=[], metrics=metrics, spilled=True, layout=self.layout
        )
        known = dataset.known_length
        if known is None:
            known, partitions = self._probe_unknown_stream(
                dataset, steps, partitions, result
            )
        pool: Optional[ProcessPoolExecutor] = None
        if processes <= 1:
            result.fallback_reason = "single process requested"
            result.fallback_code = "REP302"
        elif known is not None and known < self.min_parallel_records:
            result.fallback_reason = (
                f"tiny input ({known} records < "
                f"{self.min_parallel_records}): pool startup would dominate"
            )
            result.fallback_code = "REP303"
        else:
            pool = self._open_pool(processes)
            if pool is None:
                self._record_fallback(
                    result,
                    "worker pool could not start (process/semaphore limits)",
                    "REP304",
                )
        result.processes_used = processes if pool is not None else 1

        spill_root = self._ensure_spill_dir()
        stats = SpillStats(partitions=partitions)
        started = time.perf_counter()
        scan_stage = metrics.stage("scan")
        try:
            pairs = self._execute_stream(
                dataset,
                steps,
                pool,
                result,
                stats,
                spill_root,
                partitions,
                scan_stage,
            )
        finally:
            if pool is not None:
                pool.shutdown()
            # The per-job run directory is always swept — on success,
            # on a mid-job failure, and for broken-pool orphans alike.
            shutil.rmtree(spill_root, ignore_errors=True)
        metrics.add_wall_seconds(time.perf_counter() - started)
        if self.account_bytes:
            self._charge_collect(metrics, pairs)
        result.pairs = pairs
        result.peak_resident_bytes = stats.peak_resident_bytes
        result.spill_stats = stats.as_dict()
        return result

    def _probe_unknown_stream(
        self,
        dataset: Dataset,
        steps: list[PipelineStep],
        partitions: int,
        result: MultiprocessResult,
    ) -> tuple[Optional[int], int]:
        """Measure an unknown-length source's first chunk mid-job.

        A bounded probe (one chunk's worth of records) either exhausts
        the stream — the exact length is now known, and when no
        map-side combine depends on the chunk layout the partition
        count is shrunk to match the measured size — or establishes
        that the stream really is large and the pessimistic defaults
        stand.  Either way the measurement is recorded in
        ``result.adaptations`` so the planner's report surfaces what
        the engine learned; the plan is never revised silently.

        Partitions are only adapted when the pipeline has no combining
        reduce: per-chunk combining folds each chunk's records in
        chunk-layout order, so revising the layout mid-job could drift
        float folds away from the plan-time result.  Without combining,
        ``_spill_reduce_phase`` restores global first-seen key order and
        the result is partition-count invariant.
        """
        probe = dataset.probe()
        if not probe.exhausted:
            result.adaptations.append(
                {
                    "kind": "stream_probe",
                    "records": probe.records,
                    "bytes": probe.bytes,
                    "exhausted": False,
                    "note": (
                        f"stream probe: source exceeds {probe.records} "
                        "records — keeping the plan's pessimistic "
                        "large-stream settings"
                    ),
                }
            )
            return None, partitions
        combining = any(
            isinstance(step, ReduceStep) and step.combine for step in steps
        )
        ideal = max(1, math.ceil(probe.records / DEFAULT_CHUNK_RECORDS))
        adaptation = {
            "kind": "stream_partitions",
            "records": probe.records,
            "bytes": probe.bytes,
            "exhausted": True,
            "partitions_before": partitions,
            "partitions_after": partitions,
        }
        if not combining and ideal < partitions:
            adaptation["partitions_after"] = ideal
            adaptation["note"] = (
                f"stream probe: source ended at {probe.records} records "
                f"(~{probe.bytes} B) — shrank the shuffle from "
                f"{partitions} to {ideal} partition(s) mid-job"
            )
            partitions = ideal
        else:
            adaptation["note"] = (
                f"stream probe: source ended at {probe.records} records "
                f"(~{probe.bytes} B); partition count kept at "
                f"{partitions}"
                + (
                    " (map-side combine pins the chunk layout)"
                    if combining and ideal < partitions
                    else ""
                )
            )
        result.adaptations.append(adaptation)
        return probe.records, partitions

    def _ensure_spill_dir(self) -> str:
        """A private per-job run directory, removed when the job ends.

        Even with a caller-provided ``spill_dir``, runs go into a fresh
        subdirectory: concurrent jobs sharing the directory cannot
        collide on run-file names, and sweeping the subdirectory cleans
        up orphans from failed or broken-pool jobs without touching
        anything else the caller keeps there.
        """
        if self.spill_dir is None:
            try:
                return tempfile.mkdtemp(prefix="repro-spill-")
            except OSError as exc:
                raise SpillError(
                    f"cannot create a temporary spill directory: {exc}"
                ) from exc
        try:
            os.makedirs(self.spill_dir, exist_ok=True)
            return tempfile.mkdtemp(prefix="job-", dir=self.spill_dir)
        except OSError as exc:
            raise SpillError(
                f"spill directory {self.spill_dir!r} is not writable: {exc}"
            ) from exc

    def _execute_stream(
        self,
        dataset: Dataset,
        steps: list[PipelineStep],
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stats: SpillStats,
        spill_root: str,
        partitions: int,
        scan_stage,
    ) -> list:
        index = 0
        stage_counter = 0
        current: Dataset = dataset
        pairs: list = []
        scan_done = False
        scan_records = 0
        scan_bytes = 0
        while index < len(steps):
            step = steps[index]
            if isinstance(step, BridgeStep):
                index += 1
                if not scan_done:
                    # A chain starting with a bridge consumes the raw
                    # input on the driver, like the in-memory path.
                    pairs = current.materialize()
                    scan_records = len(pairs)
                    if self.account_bytes:
                        scan_bytes = sum(sizeof(p) for p in pairs)
                    scan_done = True
                pairs = self._stream_bridge(pairs, step, result, stage_counter, stats)
                current = ListSource(pairs)
                stage_counter += 1
                continue
            map_fns: list[Callable] = []
            complexities: list[int] = []
            while index < len(steps) and isinstance(steps[index], MapStep):
                map_fns.append(steps[index].fn)
                complexities.append(steps[index].complexity)
                index += 1
            reduce_step: Optional[ReduceStep] = None
            if index < len(steps):
                nxt = steps[index]
                if isinstance(nxt, ReduceStep):
                    reduce_step = nxt
                    index += 1
                elif not isinstance(nxt, BridgeStep):
                    raise EngineError(
                        f"unknown pipeline step type {type(nxt).__name__!r}"
                    )
            if not map_fns and reduce_step is None:
                continue  # a BridgeStep is next; handled at the loop top
            pairs, segment = self._stream_segment(
                current,
                map_fns,
                reduce_step,
                pool,
                result,
                stats,
                spill_root,
                partitions,
                stage_counter,
                complexities,
            )
            if not scan_done:
                scan_records = segment.input_records
                scan_bytes = segment.input_bytes
                scan_done = True
            result.columnar_chunks += segment.columnar_chunks
            result.guard_fallbacks += segment.guard_fallbacks
            stage_counter += len(map_fns) + (1 if reduce_step is not None else 0)
            current = ListSource(pairs)
        self._charge_scan_totals(result.metrics, scan_stage, scan_records, scan_bytes)
        return pairs

    def _stream_segment(
        self,
        dataset: Dataset,
        map_fns: list[Callable],
        reduce_step: Optional[ReduceStep],
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stats: SpillStats,
        spill_root: str,
        partitions: int,
        stage_offset: int,
        complexities: list[int],
    ) -> tuple[list, SpillMapOut]:
        """One map*…reduce? segment of the pipeline, streamed."""
        chunk_size = chunk_records_for(
            dataset, partitions, budget_bytes=self.memory_budget
        )
        if reduce_step is None:
            return self._stream_map_collect(
                dataset,
                map_fns,
                chunk_size,
                result.metrics,
                stage_offset,
                complexities,
                stats,
            )
        combiner = reduce_step.fn if reduce_step.combine else None
        started = time.perf_counter()
        agg = self._stream_map_spill(
            dataset,
            map_fns,
            combiner,
            chunk_size,
            pool,
            result,
            stats,
            spill_root,
            partitions,
        )
        map_elapsed = time.perf_counter() - started
        self._charge_map_stages(
            result.metrics,
            agg,
            max(1, agg.chunks),
            stage_offset,
            complexities,
            map_elapsed,
        )
        started = time.perf_counter()
        pairs = self._spill_reduce_phase(agg, reduce_step, pool, result, stats)
        reduce_elapsed = time.perf_counter() - started
        self._charge_spill_reduce(
            result.metrics,
            agg,
            len(pairs),
            stage_offset + len(map_fns),
            reduce_elapsed,
        )
        return pairs, agg

    def _stream_map_spill(
        self,
        dataset: Dataset,
        map_fns: list[Callable],
        combiner: Optional[Callable],
        chunk_size: int,
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stats: SpillStats,
        spill_root: str,
        partitions: int,
    ) -> SpillMapOut:
        """Map + combine + hash-partitioned spill over the chunk stream.

        With a pool, chunks are read in bounded rounds and each round's
        task batches spill *locally in the workers* — only run-file
        metadata returns to the driver.  Without one (or after a
        fallback), one driver-side writer consumes the rest of the
        stream.  Either way the per-partition run order equals chunk
        order, which is what keeps reductions byte-identical.
        """
        budget = self.memory_budget or 0
        agg = SpillMapOut(
            stage_counts=[[0, 0, 0] for _ in map_fns],
            run_files=[[] for _ in range(partitions)],
        )
        seen: set = set()

        def absorb(out: SpillMapOut) -> None:
            agg.merge_counts(out.stage_counts)
            for partition, files in enumerate(out.run_files):
                agg.run_files[partition].extend(files)
            for key in out.key_order:
                if key not in seen:
                    seen.add(key)
                    agg.key_order.append(key)
            agg.outgoing_records += out.outgoing_records
            agg.shuffled_bytes += out.shuffled_bytes
            agg.chunks += out.chunks
            agg.input_records += out.input_records
            agg.input_bytes += out.input_bytes
            agg.columnar_chunks += out.columnar_chunks
            agg.guard_fallbacks += out.guard_fallbacks
            agg.stats.merge(out.stats)
            stats.merge(out.stats)

        chunks = dataset.prepared(self._chunk_preparer(map_fns)).iter_chunks(
            chunk_size
        )
        task_id = 0
        if pool is not None:
            verdict = probe_payload((map_fns, combiner))
            if verdict.disagreement:
                result.probe_disagreements += 1
            if verdict.unpicklable:
                self._record_fallback(result, verdict.reason or "", "REP301")
                pool = None
        if pool is not None:
            tasks_per_round = max(1, result.processes_used) * 2
            chunks_per_task = 2
            pooled_ok = True
            for round_chunks in _batched(chunks, chunks_per_task * tasks_per_round):
                batches = [
                    round_chunks[i : i + chunks_per_task]
                    for i in range(0, len(round_chunks), chunks_per_task)
                ]
                tasks = [
                    (
                        map_fns,
                        combiner,
                        batch,
                        spill_root,
                        partitions,
                        budget,
                        task_id + offset,
                        self.account_bytes,
                    )
                    for offset, batch in enumerate(batches)
                ]
                sent, refs, error = self._send_tasks(tasks, result)
                outs: Optional[list[SpillMapOut]] = None
                if error is not None:
                    self._record_fallback(result, error, "REP301")
                else:
                    try:
                        outs = list(pool.map(_spill_map_task, sent))
                    except BrokenProcessPool:
                        self._record_fallback(result, "worker pool broke mid-job")
                    finally:
                        release_segments(refs)
                task_id += len(batches)  # ids consumed even when lost
                if outs is None:
                    # Re-run this round inline (fresh task id keeps its
                    # run files distinct from any the lost tasks wrote —
                    # unregistered orphans are ignored and swept with
                    # the spill dir), then finish the stream inline.
                    writer = SpillWriter(
                        spill_root, partitions, budget, task_id=task_id
                    )
                    task_id += 1
                    absorb(
                        _run_spill_map(
                            map_fns,
                            combiner,
                            round_chunks,
                            writer,
                            self.account_bytes,
                        )
                    )
                    pooled_ok = False
                    break
                for out in outs:
                    absorb(out)
                # The whole round's chunks sat on the driver while its
                # tasks ran — the pooled path's resident contribution.
                stats.note_resident(sum(out.input_bytes for out in outs))
                result.map_tasks += len(batches)
            if pooled_ok:
                return agg
        writer = SpillWriter(spill_root, partitions, budget, task_id=task_id)
        absorb(_run_spill_map(map_fns, combiner, chunks, writer, self.account_bytes))
        return agg

    def _spill_reduce_phase(
        self,
        agg: SpillMapOut,
        reduce_step: ReduceStep,
        pool: Optional[ProcessPoolExecutor],
        result: MultiprocessResult,
        stats: SpillStats,
    ) -> list[tuple]:
        """Merge-reduce partition by partition; restore global key order."""
        parts = [(p, files) for p, files in enumerate(agg.run_files) if files]
        folded: Optional[list[list[tuple]]] = None
        if pool is not None and len(parts) > 1:
            # An unpicklable reducer merges inline, no fallback recorded.
            sent, refs, error = self._send_tasks(
                [(reduce_step.fn, files) for _p, files in parts], result
            )
            if error is None:
                try:
                    outs = list(pool.map(_spill_reduce_task, sent))
                except BrokenProcessPool:
                    self._record_fallback(result, "worker pool broke during reduce")
                else:
                    folded = []
                    for bucket, peak in outs:
                        stats.note_resident(peak)
                        folded.append(bucket)
                finally:
                    release_segments(refs)
        if folded is None:
            folded = [
                merge_partition(files, reduce_step.fn, stats)
                for _p, files in parts
            ]
        cleanup_runs(agg.run_files)
        rank = {key: order for order, key in enumerate(agg.key_order)}
        pairs = [pair for bucket in folded for pair in bucket]
        pairs.sort(key=lambda pair: rank[pair[0]])
        if self.account_bytes:
            stats.note_resident(sum(sizeof_pair(k, v) for k, v in pairs))
        return pairs

    def _stream_map_collect(
        self,
        dataset: Dataset,
        map_fns: list[Callable],
        chunk_size: int,
        metrics: JobMetrics,
        stage_offset: int,
        complexities: list[int],
        stats: SpillStats,
    ) -> tuple[list, SpillMapOut]:
        """A map-only tail segment: stream chunks, collect emitted pairs.

        The output is the job's result, so it is materialized by
        contract; peak memory is the output plus one chunk.
        """
        started = time.perf_counter()
        agg = SpillMapOut(stage_counts=[[0, 0, 0] for _ in map_fns])
        pairs: list = []
        resident = 0
        chunks = dataset.prepared(self._chunk_preparer(map_fns)).iter_chunks(
            chunk_size
        )
        for chunk in chunks:
            agg.chunks += 1
            agg.input_records += len(chunk)
            chunk_bytes = 0
            if self.account_bytes:
                chunk_bytes = sum(sizeof(r) for r in chunk)
                agg.input_bytes += chunk_bytes
            mapped = _run_map_chunks(map_fns, None, [chunk], False, self.account_bytes)
            agg.merge_counts(mapped.stage_counts)
            agg.columnar_chunks += mapped.columnar_chunks
            agg.guard_fallbacks += mapped.guard_fallbacks
            out_chunk = mapped.chunk_pairs[0]
            pairs.extend(out_chunk)
            if self.account_bytes:
                resident += sum(sizeof(p) for p in out_chunk)
                stats.note_resident(resident + chunk_bytes)
        agg.outgoing_records = len(pairs)
        elapsed = time.perf_counter() - started
        self._charge_map_stages(
            metrics, agg, max(1, agg.chunks), stage_offset, complexities, elapsed
        )
        return pairs, agg

    def _stream_bridge(
        self,
        pairs: list,
        step: BridgeStep,
        result: MultiprocessResult,
        stage_index: int,
        stats: SpillStats,
    ) -> list:
        """Driver-side fused handoff between streamed jobs."""
        started = time.perf_counter()
        records = step.fn(pairs)
        elapsed = time.perf_counter() - started
        metrics = result.metrics
        stage = metrics.stage(f"{step.name}.{stage_index}")
        stage.records_in = len(pairs)
        stage.records_out = len(records)
        stage.wall_seconds = elapsed
        if self.account_bytes:
            total = sum(sizeof(p) for p in pairs)
            stage.bytes_in = total
            seconds = (total * self.config.scale) / self.config.cluster.network_bw
            stage.seconds += seconds
            metrics.add_seconds(seconds)
            stats.note_resident(total + sum(sizeof(r) for r in records))
        return records

    @staticmethod
    def _probe_picklable(payload: Any) -> Optional[str]:
        """None when ``payload`` can ship to workers; else the reason.

        Routed through the unified static-first probe: when the static
        walker already proves the payload unpicklable the ``pickle.dumps``
        is skipped entirely; otherwise the dump remains the backstop.
        """
        return probe_payload(payload).reason

    def _charge_scan_totals(
        self, metrics: JobMetrics, stage, records: int, total_bytes: int
    ) -> None:
        stage.records_in = records
        stage.records_out = records
        if self.account_bytes:
            stage.bytes_in = total_bytes
            stage.bytes_out = total_bytes
            cluster = self.config.cluster
            seconds = (total_bytes * self.config.scale) / (
                cluster.worker_disk_bw * cluster.workers
            )
            stage.seconds += seconds
            metrics.add_seconds(seconds + self.config.framework.startup_s)

    def _charge_spill_reduce(
        self,
        metrics: JobMetrics,
        agg: SpillMapOut,
        records_out: int,
        stage_index: int,
        wall_elapsed: float,
    ) -> None:
        cluster = self.config.cluster
        stage = metrics.stage(f"shuffle.reduce.{stage_index}")
        stage.records_in = agg.outgoing_records
        stage.records_out = records_out
        stage.bytes_shuffled = agg.shuffled_bytes
        stage.wall_seconds = wall_elapsed
        scaled = agg.shuffled_bytes * self.config.scale
        seconds = scaled / cluster.network_bw + cluster.shuffle_latency_s
        seconds += 2 * scaled / (cluster.worker_disk_bw * cluster.workers)
        # Spilled runs pay one extra write + read-back on local disk.
        spilled_scaled = agg.stats.spilled_bytes * self.config.scale
        seconds += 2 * spilled_scaled / (cluster.worker_disk_bw * cluster.workers)
        stage.seconds += seconds
        metrics.add_seconds(seconds)


def _batched(iterator: Iterator[list], count: int) -> Iterator[list[list]]:
    """Group an iterator's items into lists of at most ``count``."""
    batch: list[list] = []
    for item in iterator:
        batch.append(item)
        if len(batch) >= count:
            yield batch
            batch = []
    if batch:
        yield batch

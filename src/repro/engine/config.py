"""Cluster and framework configuration for the simulated MapReduce engine.

The defaults model the paper's testbed: an AWS cluster of 10 m3.2xlarge
instances (1 master + 9 core nodes), each with 8 vCPUs, 30 GB RAM and SSD
storage (section 7).  Time constants are calibrated so that scan-heavy,
embarrassingly-parallel jobs land in the paper's observed 10-50× speedup
band over single-core sequential execution, with shuffle-heavy jobs lower.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware model of the simulated cluster."""

    workers: int = 9
    slots_per_worker: int = 8
    # Sequential baseline: single core reading from local disk.
    seq_disk_bw: float = 100e6  # bytes/s
    seq_op_ns: float = 6.0  # per interpreter operation
    # Distributed: per-worker scan bandwidth (HDFS on SSD) and aggregate
    # cluster shuffle bandwidth.
    worker_disk_bw: float = 300e6  # bytes/s per worker
    network_bw: float = 1.1e9  # bytes/s aggregate
    shuffle_latency_s: float = 0.4
    # Aggregate rate at which map tasks can materialize (allocate +
    # serialize) emitted records; charges jobs whose map stage produces
    # large intermediate volumes (the Table 4 / Appendix E.3 effect).
    emit_bw: float = 12e9  # bytes/s aggregate

    @property
    def total_slots(self) -> int:
        return self.workers * self.slots_per_worker


@dataclass(frozen=True)
class FrameworkProfile:
    """Per-framework execution characteristics."""

    name: str
    startup_s: float
    per_stage_overhead_s: float
    record_cpu_factor: float  # distributed per-record overhead vs sequential
    materialize_between_stages: bool = False  # Hadoop writes HDFS per job
    combiners: bool = True

    def stage_cost(self) -> float:
        return self.per_stage_overhead_s


SPARK = FrameworkProfile(
    name="spark",
    startup_s=2.0,
    per_stage_overhead_s=0.35,
    record_cpu_factor=1.2,
)

HADOOP = FrameworkProfile(
    name="hadoop",
    startup_s=12.0,
    per_stage_overhead_s=3.0,
    record_cpu_factor=2.2,
    materialize_between_stages=True,
)

FLINK = FrameworkProfile(
    name="flink",
    startup_s=2.0,
    per_stage_overhead_s=1.0,
    record_cpu_factor=1.5,
)

# The local multiprocess backend: no cluster startup, negligible per-stage
# overhead — simulated-time accounting stays available so its real
# wall-clock measurements can be compared against the same model the
# cluster profiles use.
MULTIPROCESS = FrameworkProfile(
    name="multiprocess",
    startup_s=0.2,
    per_stage_overhead_s=0.02,
    record_cpu_factor=1.0,
)

PROFILES = {
    "spark": SPARK,
    "hadoop": HADOOP,
    "flink": FLINK,
    "multiprocess": MULTIPROCESS,
}


@dataclass
class EngineConfig:
    """Full engine configuration: cluster + framework + data scale.

    ``scale`` multiplies record counts and byte volumes when computing
    simulated time — benchmarks run on ~10⁵-record samples standing in for
    the paper's 25-75 GB datasets (DESIGN.md, scaling notes).
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    framework: FrameworkProfile = SPARK
    scale: float = 1.0
    default_partitions: int = 72

    def with_framework(self, name: str) -> "EngineConfig":
        return EngineConfig(
            cluster=self.cluster,
            framework=PROFILES[name],
            scale=self.scale,
            default_partitions=self.default_partitions,
        )

"""Core executor of the simulated MapReduce substrate.

The executor really runs user lambdas over partitioned Python data (so
results are exact), while *time* is simulated from record counts, byte
volumes, and the cluster/framework model — the quantities that determine
distributed performance (data movement, parallel waves, startup).

All three API flavors (Spark-like RDDs, Hadoop jobs, Flink DataSets) are
thin layers over this executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..errors import EngineError
from .config import EngineConfig
from .metrics import JobMetrics, StageMetrics
from .sizes import sizeof, sizeof_pair


def partition_data(data: list, partitions: int) -> list[list]:
    """Split records into roughly equal partitions (block partitioning).

    Accepts a :class:`~repro.engine.source.Dataset` too (materialized
    here): the simulated engines model a cluster whose aggregate memory
    holds the data, so in-driver materialization is the faithful
    semantics for them — only the real local engine streams
    (``MultiprocessEngine`` with a ``memory_budget``).
    """
    from .source import Dataset

    if partitions <= 0:
        raise EngineError("partition count must be positive")
    if isinstance(data, Dataset):
        data = data.materialize()
    n = len(data)
    size = max(1, math.ceil(n / partitions)) if n else 1
    chunks = [data[i : i + size] for i in range(0, n, size)]
    return chunks or [[]]


@dataclass
class Executor:
    """Accounts simulated time and metrics for one job."""

    config: EngineConfig
    metrics: JobMetrics = field(default_factory=JobMetrics)
    _started: bool = False

    # ------------------------------------------------------------------
    # Time primitives

    def _ensure_startup(self) -> None:
        if not self._started:
            self._started = True
            self.metrics.add_seconds(self.config.framework.startup_s)

    def _parallel_seconds(self, total_cpu_s: float, num_tasks: int) -> float:
        slots = self.config.cluster.total_slots
        effective = max(1, min(num_tasks, slots))
        waves = math.ceil(max(1, num_tasks) / slots)
        return total_cpu_s / effective + waves * 0.02

    def charge_scan(self, stage: StageMetrics, total_bytes: int) -> None:
        """Reading input from distributed storage."""
        cluster = self.config.cluster
        scaled = total_bytes * self.config.scale
        seconds = scaled / (cluster.worker_disk_bw * cluster.workers)
        stage.seconds += seconds
        self.metrics.add_seconds(seconds)

    def charge_narrow(
        self, stage: StageMetrics, records: int, num_tasks: int, cpu_ns_per_record: float
    ) -> None:
        """A narrow (no-shuffle) transformation."""
        self._ensure_startup()
        profile = self.config.framework
        scaled_records = records * self.config.scale
        total_cpu = (
            scaled_records * cpu_ns_per_record * profile.record_cpu_factor * 1e-9
        )
        seconds = self._parallel_seconds(total_cpu, num_tasks) + profile.per_stage_overhead_s
        stage.seconds += seconds
        self.metrics.add_seconds(seconds)

    def charge_shuffle(self, stage: StageMetrics, shuffled_bytes: int) -> None:
        """Moving bytes across the network (the reduce-side shuffle).

        All frameworks write shuffle files to local disk and re-read them
        on the reduce side; Hadoop additionally materializes the whole
        inter-job dataset to HDFS (its profile adds that on top).
        """
        cluster = self.config.cluster
        scaled = shuffled_bytes * self.config.scale
        seconds = scaled / cluster.network_bw + cluster.shuffle_latency_s
        seconds += 2 * scaled / (cluster.worker_disk_bw * cluster.workers)
        if self.config.framework.materialize_between_stages:
            # Hadoop persists map output to disk and re-reads it.
            seconds += 2 * scaled / (cluster.worker_disk_bw * cluster.workers)
        stage.bytes_shuffled += shuffled_bytes
        stage.seconds += seconds
        self.metrics.add_seconds(seconds)

    def charge_driver_collect(self, total_bytes: int) -> None:
        seconds = (total_bytes * self.config.scale) / self.config.cluster.network_bw
        self.metrics.add_seconds(seconds)

    # ------------------------------------------------------------------
    # Dataflow operations over partitioned data

    def run_scan(self, data: list, partitions: int) -> list[list]:
        stage = self.metrics.stage("scan")
        self._ensure_startup()
        parts = partition_data(data, partitions)
        total_bytes = sum(sizeof(r) for r in data)
        stage.records_in = len(data)
        stage.records_out = len(data)
        stage.bytes_in = total_bytes
        stage.bytes_out = total_bytes
        self.charge_scan(stage, total_bytes)
        return parts

    def run_narrow(
        self,
        parts: list[list],
        fn: Callable[[Any], Iterable[Any]],
        stage_name: str,
        cpu_ns: float = 150.0,
    ) -> list[list]:
        """Apply a record→iterable function partitionwise (flatMap-shape)."""
        stage = self.metrics.stage(stage_name)
        out_parts: list[list] = []
        records_in = 0
        bytes_out = 0
        records_out = 0
        for part in parts:
            out: list = []
            for record in part:
                records_in += 1
                for emitted in fn(record):
                    out.append(emitted)
                    records_out += 1
                    bytes_out += sizeof(emitted)
            out_parts.append(out)
        stage.records_in = records_in
        stage.records_out = records_out
        stage.bytes_out = bytes_out
        self.charge_narrow(stage, records_in, len(parts), cpu_ns)
        # Materializing emitted records costs allocation + serialization
        # proportional to the emitted volume (Appendix E.3's second
        # hypothesis: emitted bytes correlate with runtime).
        emit_seconds = (bytes_out * self.config.scale) / self.config.cluster.emit_bw
        stage.seconds += emit_seconds
        self.metrics.add_seconds(emit_seconds)
        return out_parts

    def run_shuffle(
        self,
        parts: list[list],
        combiner: Optional[Callable[[Any, Any], Any]],
        stage_name: str = "shuffle",
    ) -> dict[Any, list]:
        """Group key-value pairs by key, optionally combining map-side.

        Returns key → list of values (combined per partition when a
        combiner is given).  Accounts shuffled bytes after combining —
        exactly the quantity Table 4 contrasts (WC 1 vs WC 2).
        """
        use_combiner = combiner is not None and self.config.framework.combiners
        stage = self.metrics.stage(stage_name)
        shuffled: dict[Any, list] = {}
        shuffled_bytes = 0
        records = 0
        for part in parts:
            if use_combiner:
                local: dict[Any, Any] = {}
                for key, value in part:
                    records += 1
                    if key in local:
                        local[key] = combiner(local[key], value)
                    else:
                        local[key] = value
                outgoing: Iterable = local.items()
            else:
                records += len(part)
                outgoing = part
            for key, value in outgoing:
                shuffled_bytes += sizeof_pair(key, value)
                shuffled.setdefault(key, []).append(value)
        stage.records_in = records
        stage.records_out = sum(len(v) for v in shuffled.values())
        self.charge_narrow(stage, records, len(parts), 60.0)
        self.charge_shuffle(stage, shuffled_bytes)
        return shuffled

    def run_reduce_groups(
        self,
        groups: dict[Any, list],
        fn: Callable[[Any, Any], Any],
        stage_name: str = "reduce",
    ) -> list[tuple[Any, Any]]:
        stage = self.metrics.stage(stage_name)
        out: list[tuple[Any, Any]] = []
        records = 0
        bytes_out = 0
        for key, values in groups.items():
            records += len(values)
            acc = values[0]
            for value in values[1:]:
                acc = fn(acc, value)
            out.append((key, acc))
            bytes_out += sizeof_pair(key, acc)
        stage.records_in = records
        stage.records_out = len(out)
        stage.bytes_out = bytes_out
        num_tasks = min(len(groups), self.config.default_partitions) or 1
        self.charge_narrow(stage, records, num_tasks, 80.0)
        return out


def lambda_cpu_ns(complexity: int) -> float:
    """Per-record CPU estimate from a transformer's expression size."""
    return 60.0 + 15.0 * max(1, complexity)

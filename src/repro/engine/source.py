"""Bounded-memory dataset sources for out-of-core execution.

The engines historically took ``list`` inputs — every record resident at
once, bounding the largest runnable dataset by driver RAM.  A
:class:`Dataset` instead feeds records as *chunk iterators*: the engine
asks for chunks of at most ``chunk_records`` records and never holds
more than a chunk (plus its bounded shuffle buffers) in memory.

Three concrete sources cover the common cases:

* :class:`ListSource` — an in-memory list, chunked by slicing.  This is
  how plain-list inputs enter the streaming engine; its chunk layout
  reproduces :func:`repro.engine.core.partition_data` exactly (see
  :func:`chunk_records_for`), which is what keeps spilled results
  byte-identical to the in-memory engines.
* :class:`GeneratorSource` — a *factory* of iterators, so the stream can
  be replayed (the planner samples a prefix, then the engine runs the
  full pass).  Records are produced lazily; nothing is materialized.
* :class:`JsonlSource` / :class:`TextSource` — newline-delimited files:
  one JSON document (or one raw line) per record, read incrementally.

Every source is re-iterable: each :meth:`Dataset.iter_chunks` call
starts a fresh pass over the data.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from ..errors import EngineError
from .sizes import sizeof

#: Chunk size used when a source's length is unknown and no plan says
#: otherwise — small enough that a chunk of ordinary records stays far
#: below any realistic memory budget.
DEFAULT_CHUNK_RECORDS = 4096


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a bounded first-chunk probe of a dataset.

    ``exhausted`` means the probe reached the end of the stream within
    its record bound — the source's *exact* length is ``records``, and
    the probing dataset caches it (``known_length`` reports it from then
    on).  Otherwise the stream is longer than the bound and only the
    sampled per-record size is meaningful.
    """

    records: int
    bytes: int
    exhausted: bool

    @property
    def per_record_bytes(self) -> Optional[float]:
        return self.bytes / self.records if self.records else None


class Dataset:
    """A replayable source of records, consumed in bounded chunks."""

    #: Exact length learned by an exhausting :meth:`probe`; sources with
    #: a declared length never consult it.
    _probed_length: Optional[int] = None

    def iter_chunks(self, chunk_records: int) -> Iterator[list]:
        """Yield lists of at most ``chunk_records`` records, in order."""
        raise NotImplementedError

    @property
    def known_length(self) -> Optional[int]:
        """Record count when knowable without a full pass, else None."""
        return self._probed_length

    def probe(self, max_records: int = DEFAULT_CHUNK_RECORDS) -> ProbeResult:
        """Measure a bounded prefix: record count, sampled bytes, EOF.

        Reads at most ``max_records`` records (one bounded pass — the
        source is re-iterable, so nothing is consumed).  When the stream
        ends within the bound the exact length is now known and cached:
        the planner prices the source from the measured sample instead
        of pessimistically assuming a large stream, and the engine gets
        the partition-matched chunk layout.
        """
        sampled: list = []
        exhausted = True
        bound = max(1, max_records)
        for chunk in self.iter_chunks(min(bound, DEFAULT_CHUNK_RECORDS)):
            sampled.extend(chunk)
            if len(sampled) > bound:
                exhausted = False
                sampled = sampled[:bound]
                break
        result = ProbeResult(
            records=len(sampled),
            bytes=sum(sizeof(r) for r in sampled),
            exhausted=exhausted,
        )
        if exhausted and self.known_length is None:
            self._probed_length = result.records
        return result

    def __iter__(self) -> Iterator[Any]:
        for chunk in self.iter_chunks(DEFAULT_CHUNK_RECORDS):
            yield from chunk

    def head(self, n: int) -> list:
        """The first ``n`` records (fewer when the source is shorter)."""
        if n <= 0:
            return []
        out: list = []
        for chunk in self.iter_chunks(min(n, DEFAULT_CHUNK_RECORDS)):
            out.extend(chunk)
            if len(out) >= n:
                return out[:n]
        return out

    def materialize(self) -> list:
        """Every record as one list — the in-memory escape hatch."""
        return [
            record
            for chunk in self.iter_chunks(DEFAULT_CHUNK_RECORDS)
            for record in chunk
        ]

    def prepared(self, prepare: Optional[Callable[[list], list]]) -> "Dataset":
        """This source with a per-chunk prepare hook applied at read time.

        The columnar layout enters here: the engine derives a preparer
        from the first map stage's column specs (build a ``ColumnChunk``
        of typed arrays, or attach an extract-once cache) and wraps the
        source **once**, so every chunk is converted exactly where it is
        read instead of deep inside each execution path.  ``None`` is
        the identity — the source is returned unchanged.
        """
        if prepare is None:
            return self
        return PreparedSource(self, prepare)

    def estimated_bytes(self, sample_records: int = 64) -> Optional[int]:
        """Serialized-size estimate from a head sample × known length.

        None when the length is unknown — the caller must then assume
        the stream is large (that is the point of a streaming source).
        """
        length = self.known_length
        if length is None:
            return None
        if length == 0:
            return 0
        sample = self.head(min(sample_records, length))
        if not sample:
            return 0
        per_record = sum(sizeof(r) for r in sample) / len(sample)
        return int(per_record * length)


class ListSource(Dataset):
    """An in-memory record list exposed through the Dataset protocol."""

    def __init__(self, records: list):
        self._records = records

    def iter_chunks(self, chunk_records: int) -> Iterator[list]:
        size = max(1, chunk_records)
        for start in range(0, len(self._records), size):
            yield self._records[start : start + size]

    @property
    def known_length(self) -> int:
        return len(self._records)

    def materialize(self) -> list:
        return self._records


class PreparedSource(Dataset):
    """A dataset whose chunks pass through a per-chunk prepare hook.

    Length and chunk layout are the base source's; only the chunk
    *representation* changes (e.g. plain lists become column-backed
    chunks).  Preparers must preserve record order and count so the
    partition-matched layout — and with it byte-identity — survives.
    """

    def __init__(self, base: Dataset, prepare: Callable[[list], list]):
        self._base = base
        self._prepare = prepare

    def iter_chunks(self, chunk_records: int) -> Iterator[list]:
        for chunk in self._base.iter_chunks(chunk_records):
            yield self._prepare(chunk)

    @property
    def known_length(self) -> Optional[int]:
        return self._base.known_length

    def probe(self, max_records: int = DEFAULT_CHUNK_RECORDS) -> ProbeResult:
        # Probe the *base* records (the prepare hook may change chunk
        # representation); an exhausting probe caches the length there,
        # where both this wrapper and the base report it.
        return self._base.probe(max_records)


class GeneratorSource(Dataset):
    """Records produced lazily by a replayable iterator factory.

    ``factory`` is called once per pass and must yield the same record
    sequence every time (seeded generators do; see
    ``workloads.datagen.large_scale``).  ``length`` may be given when
    the factory's record count is known a priori — it enables the
    partition-matched chunk layout and size estimates without a pass.
    """

    def __init__(
        self, factory: Callable[[], Iterable[Any]], length: Optional[int] = None
    ):
        self._factory = factory
        self._length = length

    def iter_chunks(self, chunk_records: int) -> Iterator[list]:
        size = max(1, chunk_records)
        chunk: list = []
        for record in self._factory():
            chunk.append(record)
            if len(chunk) >= size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    @property
    def known_length(self) -> Optional[int]:
        return self._length if self._length is not None else self._probed_length


class _FileSource(Dataset):
    """Shared machinery of the newline-delimited file sources."""

    def __init__(self, path: str):
        self.path = path

    def _lines(self) -> Iterator[str]:
        if not os.path.exists(self.path):
            raise EngineError(f"dataset file does not exist: {self.path!r}")
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if line:
                    yield line

    def _parse(self, line: str) -> Any:
        raise NotImplementedError

    def iter_chunks(self, chunk_records: int) -> Iterator[list]:
        size = max(1, chunk_records)
        chunk: list = []
        for line in self._lines():
            chunk.append(self._parse(line))
            if len(chunk) >= size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


class JsonlSource(_FileSource):
    """One JSON document per line; each document is one record."""

    def _parse(self, line: str) -> Any:
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise EngineError(
                f"invalid JSONL record in {self.path!r}: {exc}"
            ) from exc


class TextSource(_FileSource):
    """One raw text line per record."""

    def _parse(self, line: str) -> str:
        return line


def as_dataset(records: Any) -> Dataset:
    """Coerce an engine input into a Dataset (lists wrap, Datasets pass)."""
    if isinstance(records, Dataset):
        return records
    if isinstance(records, (list, tuple)):
        return ListSource(list(records))
    raise EngineError(
        f"cannot stream records of type {type(records).__name__!r}; "
        "pass a list or a repro.engine.source.Dataset"
    )


def chunk_records_for(
    dataset: Dataset, partitions: int, budget_bytes: Optional[int] = None
) -> int:
    """Chunk size reproducing ``partition_data``'s block layout.

    When the length is known, chunks are ``ceil(n / partitions)`` records
    — exactly the contiguous blocks the in-memory engines map (and
    combine) over, so per-chunk combining groups records identically and
    spilled results stay byte-for-byte equal to in-memory execution.
    Unknown-length streams use the bounded default.

    With a ``budget_bytes``, a chunk whose estimated size would exceed
    *twice the budget* is capped so one chunk fits within the budget
    (estimated from a head sample) — without the cap, a huge
    known-length input would materialize O(n / partitions) records per
    chunk and defeat the out-of-core guarantee.  Below the 2× line the
    partition-matched layout is preserved even when a chunk somewhat
    exceeds the budget: residency stays within the engine's documented
    ~2×-budget envelope, and the layout is what keeps float folds
    byte-identical to the in-memory engines.  Beyond it (inputs that
    dwarf the budget by ≫ the partition count — a scale the in-memory
    engines cannot run) boundedness wins and float reductions may drift
    in the last ulp relative to a hypothetical in-memory run.
    """
    n = dataset.known_length
    if n is None:
        base = DEFAULT_CHUNK_RECORDS
    elif n == 0:
        return 1
    else:
        base = max(1, math.ceil(n / max(1, partitions)))
    if budget_bytes is None or budget_bytes <= 0:
        return base
    sample = dataset.head(min(base, 32))
    if not sample:
        return base
    per_record = max(1, sum(sizeof(r) for r in sample) // len(sample))
    if base * per_record <= 2 * budget_bytes:
        return base
    return max(1, budget_bytes // per_record)

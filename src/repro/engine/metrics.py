"""Execution metrics for simulated MapReduce jobs.

These are the quantities the paper's evaluation reports: bytes emitted in
the map stage, bytes shuffled across the network (Table 4 / Appendix E.3),
and simulated wall-clock seconds (Figures 7-9).

The multiprocess backend additionally records *real* wall-clock seconds
(``wall_seconds``) alongside the simulated-time accounting, so the
execution planner's predictions can be validated against measured
reality.  The simulated engines leave ``wall_seconds`` at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageMetrics:
    """One pipeline stage's accounting."""

    name: str
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    bytes_shuffled: int = 0
    seconds: float = 0.0
    wall_seconds: float = 0.0


@dataclass
class JobMetrics:
    """Whole-job accounting, accumulated across stages."""

    stages: list[StageMetrics] = field(default_factory=list)
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0

    def stage(self, name: str) -> StageMetrics:
        metrics = StageMetrics(name=name)
        self.stages.append(metrics)
        return metrics

    def last_stage(self, name: str) -> StageMetrics:
        """The most recent stage recorded under ``name``; KeyError if none."""
        for metrics in reversed(self.stages):
            if metrics.name == name:
                return metrics
        raise KeyError(name)

    @property
    def bytes_emitted(self) -> int:
        """Total bytes produced by map-side stages (paper Table 4)."""
        return sum(s.bytes_out for s in self.stages if s.name.startswith("map"))

    @property
    def bytes_shuffled(self) -> int:
        return sum(s.bytes_shuffled for s in self.stages)

    @property
    def records_processed(self) -> int:
        return sum(s.records_in for s in self.stages)

    def add_seconds(self, seconds: float) -> None:
        self.simulated_seconds += seconds

    def add_wall_seconds(self, seconds: float) -> None:
        self.wall_seconds += seconds

    def merge(self, other: "JobMetrics") -> None:
        self.stages.extend(other.stages)
        self.simulated_seconds += other.simulated_seconds
        self.wall_seconds += other.wall_seconds

    def summary(self) -> dict:
        return {
            "simulated_seconds": round(self.simulated_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 6),
            "bytes_emitted": self.bytes_emitted,
            "bytes_shuffled": self.bytes_shuffled,
            "stages": len(self.stages),
        }

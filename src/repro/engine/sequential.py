"""Sequential-baseline runner: simulated single-core execution time.

The paper compares translated benchmarks against their original
sequential Java implementations.  We run the mini-Java interpreter on the
(scaled-down) dataset, measure the dynamic operation count per record,
and extrapolate single-core wall time from the operation rate and the
single-disk scan bandwidth of the cluster model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..lang import ast_nodes as ast
from ..lang.interpreter import Interpreter
from .config import ClusterConfig
from .sizes import sizeof


@dataclass
class SequentialResult:
    """Outcome of a simulated sequential run."""

    result: Any
    simulated_seconds: float
    operations: int
    records: int
    bytes_read: int


def run_sequential(
    program: ast.Program,
    function: str,
    args: list[Any],
    data_arg_indexes: Optional[list[int]] = None,
    cluster: Optional[ClusterConfig] = None,
    scale: float = 1.0,
) -> SequentialResult:
    """Run a sequential benchmark and simulate its single-core runtime.

    ``data_arg_indexes`` marks which arguments are the input datasets (for
    byte/record accounting); defaults to every list argument.
    """
    cluster = cluster or ClusterConfig()
    interp = Interpreter(program)
    result = interp.call_function(function, args)

    if data_arg_indexes is None:
        data_arg_indexes = [
            i for i, arg in enumerate(args) if isinstance(arg, list)
        ]
    records = 0
    bytes_read = 0
    for index in data_arg_indexes:
        dataset = args[index]
        if isinstance(dataset, list):
            records += len(dataset)
            bytes_read += sum(sizeof(r) for r in dataset)

    operations = interp.counters.total
    cpu_seconds = operations * scale * cluster.seq_op_ns * 1e-9
    scan_seconds = (bytes_read * scale) / cluster.seq_disk_bw
    return SequentialResult(
        result=result,
        simulated_seconds=cpu_seconds + scan_seconds,
        operations=operations,
        records=records,
        bytes_read=bytes_read,
    )

"""Serialized-size model for the cost model and shuffle accounting.

Uses the data-type sizes the paper states for its cost computations
(section 7.4): 40 bytes for a String, 10 bytes for a boxed Boolean, and a
tuple of two Booleans at 28 bytes — i.e. an 8-byte tuple header plus the
sizes of its components.  Numeric primitives use their natural widths.
"""

from __future__ import annotations

from typing import Any

from ..lang.values import Instance

try:  # pragma: no cover - numpy is present in the toolchain image
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

STRING_SIZE = 40
BOOLEAN_SIZE = 10
INT_SIZE = 4
LONG_SIZE = 8
DOUBLE_SIZE = 8
TUPLE_HEADER = 8
OBJECT_HEADER = 16
NULL_SIZE = 4


def sizeof(value: Any) -> int:
    """Serialized size in bytes of a runtime value.

    Containers are walked with a visited-id set, so self-referential
    structures (``x = []; x.append(x)``) terminate instead of raising
    ``RecursionError``, and a shared substructure (diamond sharing —
    the same list reachable twice) is charged once, the way a
    reference-aware serializer would store it.  Scalars are never
    identity-tracked: Python interns small ints/strings, and equal
    scalars are genuinely re-serialized per occurrence.
    """
    return _sizeof(value, None)


def _sizeof(value: Any, seen: Any) -> int:
    if value is None:
        return NULL_SIZE
    if isinstance(value, bool):
        return BOOLEAN_SIZE
    if isinstance(value, int):
        return INT_SIZE if -(2**31) <= value < 2**31 else LONG_SIZE
    if isinstance(value, float):
        return DOUBLE_SIZE
    if isinstance(value, str):
        return STRING_SIZE
    if isinstance(value, (tuple, list, set, dict, Instance)):
        if seen is None:
            seen = set()
        marker = id(value)
        if marker in seen:
            return 0  # cyclic or shared: charged at first visit
        seen.add(marker)
        if isinstance(value, tuple):
            return TUPLE_HEADER + sum(_sizeof(item, seen) for item in value)
        if isinstance(value, Instance):
            return OBJECT_HEADER + sum(
                _sizeof(v, seen) for v in value.fields.values()
            )
        if isinstance(value, (list, set)):
            # Collections are full objects (like Instance), not bare
            # tuples: charging them the 8-byte tuple header understated
            # shuffle-byte accounting and the spill-trigger estimate
            # relative to sizeof_kind, which already uses OBJECT_HEADER.
            return OBJECT_HEADER + sum(_sizeof(item, seen) for item in value)
        return OBJECT_HEADER + sum(
            _sizeof(k, seen) + _sizeof(v, seen) for k, v in value.items()
        )
    if _np is not None and isinstance(value, _np.ndarray):
        # Numeric arrays are flat buffers: itemsize × length + header.
        # Walking them per element (or worse, falling through to the
        # bare OBJECT_HEADER) would wildly misprice columnar chunks in
        # budget planning and serve-layer admission.
        if value.dtype.kind in ("b", "i", "u", "f"):
            return OBJECT_HEADER + int(value.nbytes)
        return OBJECT_HEADER + sum(
            _sizeof(item, seen) for item in value.tolist()
        )
    model = getattr(value, "sizeof_model", None)
    if model is not None:
        # ColumnChunk (and anything else carrying its own size model)
        # prices itself; sizes.py cannot import engine.columnar without
        # a cycle, so this stays duck-typed.
        return model(seen)
    return OBJECT_HEADER


def sizeof_kind(kind: str) -> int:
    """Static size of an IR value kind (for the static cost model)."""
    if kind == "String":
        return STRING_SIZE
    if kind == "boolean":
        return BOOLEAN_SIZE
    if kind == "double":
        return DOUBLE_SIZE
    if kind in ("int", "char"):
        return INT_SIZE
    if kind == "long":
        return LONG_SIZE
    return OBJECT_HEADER


def sizeof_pair(key: Any, value: Any) -> int:
    """Size of one emitted key-value pair."""
    return sizeof(key) + sizeof(value)


def dataset_bytes(records) -> int:
    """Total serialized size of a record collection."""
    return sum(sizeof(record) for record in records)


def physical_memory_bytes() -> int:
    """Best-effort physical memory of this box, in bytes.

    The serve layer's admission controller needs a box capacity to
    weigh job footprints against; ``sysconf`` covers Linux/macOS, and
    hosts where it is unavailable fall back to a conservative 1 GiB so
    admission control degrades to "serialize anything big" rather than
    disabling itself.
    """
    try:
        import os

        pages = os.sysconf("SC_PHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
        if pages > 0 and page_size > 0:
            return pages * page_size
    except (ValueError, OSError, AttributeError):
        pass
    return 1 << 30

"""Hadoop-flavored MapReduce job API over the simulated executor.

Models the classic ``Mapper`` / ``Combiner`` / ``Reducer`` job structure:
each job reads its input from distributed storage, runs map tasks, spills
and shuffles, runs reduce tasks, and *materializes its output back to
storage* — the chief reason the paper's Hadoop translations average 6.4×
versus Spark's 15.6× (section 7.2).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from .config import EngineConfig
from .core import Executor, lambda_cpu_ns
from .metrics import JobMetrics
from .sizes import sizeof

Mapper = Callable[[Any], Iterable[tuple]]
Reducer = Callable[[Any, list], Iterable[tuple]]
Combiner = Callable[[Any, Any], Any]


class SimHadoopJob:
    """One MapReduce job: mapper, optional combiner, reducer."""

    def __init__(
        self,
        mapper: Mapper,
        reducer: Optional[Reducer] = None,
        combiner: Optional[Combiner] = None,
        mapper_complexity: int = 3,
        config: Optional[EngineConfig] = None,
    ):
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.mapper_complexity = mapper_complexity
        base = config or EngineConfig()
        if base.framework.name != "hadoop":
            base = base.with_framework("hadoop")
        self.config = base
        self.executor = Executor(self.config)

    @property
    def metrics(self) -> JobMetrics:
        return self.executor.metrics

    def run(self, data: list) -> list[tuple]:
        """Execute the job over input records; returns (key, value) pairs."""
        parts = self.executor.run_scan(
            list(data), self.config.default_partitions
        )
        mapped = self.executor.run_narrow(
            parts, self.mapper, "map", lambda_cpu_ns(self.mapper_complexity)
        )
        if self.reducer is None:
            out = [pair for part in mapped for pair in part]
            self._charge_output(out)
            return out
        groups = self.executor.run_shuffle(mapped, combiner=self.combiner)
        stage = self.executor.metrics.stage("reduce")
        out = []
        records = 0
        for key, values in groups.items():
            records += len(values)
            for pair in self.reducer(key, values):
                out.append(pair)
        stage.records_in = records
        stage.records_out = len(out)
        self.executor.charge_narrow(
            stage, records, self.config.default_partitions, 90.0
        )
        self._charge_output(out)
        return out

    def _charge_output(self, pairs: list[tuple]) -> None:
        """Hadoop writes job output back to HDFS."""
        stage = self.executor.metrics.stage("output")
        total_bytes = sum(sizeof(p) for p in pairs)
        stage.bytes_out = total_bytes
        self.executor.charge_scan(stage, total_bytes)


class SimHadoopPipeline:
    """A chain of Hadoop jobs (each stage re-reads the previous output)."""

    def __init__(self, jobs: list[SimHadoopJob]):
        self.jobs = jobs
        self.metrics = JobMetrics()

    def run(self, data: list) -> list[tuple]:
        current: list = list(data)
        for job in self.jobs:
            current = job.run(current)
            self.metrics.merge(job.metrics)
        return current

"""External (spill-to-disk) shuffle: bounded-memory grouping.

Classic MapReduce runtimes scale past RAM by writing hash-partitioned
map output to local disk and merge-reducing it partition by partition;
this module gives the real local engine the same capability.

A :class:`SpillWriter` (one per map task — "workers spill locally")
buffers emitted ``(key, value)`` pairs per hash partition, estimating
resident bytes with :func:`repro.engine.sizes.sizeof_pair`; the moment
the buffer exceeds the configured memory budget, every non-empty
partition buffer is flushed as one pickled *run* file.  Runs preserve
arrival order, so a later per-partition merge (:func:`merge_partition`)
that reads runs chronologically sees each key's values in exactly the
order the in-memory engines would have grouped them — the ordered fold
then produces identical results while peak memory stays O(budget) on
the map side and O(partition) on the reduce side.

Keys are routed with a *stable* hash (:func:`partition_of`): Python's
builtin ``hash`` is salted per process for strings, which would scatter
the same key to different partitions across pool workers.

All failure modes raise the typed :class:`repro.errors.SpillError` —
an unwritable spill directory, a corrupt run file discovered mid-merge,
or a budget too small to buffer even one pair.  Partial results are
never returned.
"""

from __future__ import annotations

import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import SpillError
from ..lang.values import Instance
from .columnar import ColumnBlock
from .sizes import sizeof_pair


def _stable_bytes(key: Any) -> bytes:
    """A deterministic byte encoding of a shuffle key.

    Covers every key type the emit grammar can produce (ints, floats,
    bools, strings, tuples, model Instances).  The encoding must be
    stable across processes **and canonical over Python equality
    classes**: the in-memory shuffle groups with ``dict``, under which
    ``True == 1 == 1.0`` and ``0.0 == -0.0 == 0 == False`` share one
    group — so equal keys of different numeric types must encode (and
    therefore hash-partition) identically, or spilled results diverge
    from in-memory on mixed-numeric keys.  Numerics are normalized to
    ``n:<int>`` when integral (bools are ints are integral floats) and
    ``n:<repr(float)>`` otherwise; NaNs collapse to one encoding (dict
    grouping treats NaN keys by identity — routing them to one partition
    is the conservative, order-preserving choice).
    """
    if isinstance(key, tuple):
        return b"(" + b",".join(_stable_bytes(item) for item in key) + b")"
    if isinstance(key, Instance):
        inner = ",".join(
            f"{name}:{_stable_bytes(value).decode('utf-8', 'replace')}"
            for name, value in sorted(key.fields.items())
        )
        return f"I{key.class_name}{{{inner}}}".encode("utf-8")
    if isinstance(key, (bool, int, float)):
        if isinstance(key, (bool, int)):
            return b"n:%d" % int(key)
        if key != key:  # NaN
            return b"n:nan"
        if key in (float("inf"), float("-inf")):
            return b"n:inf" if key > 0 else b"n:-inf"
        if key == int(key):
            return b"n:%d" % int(key)
        return f"n:{key!r}".encode("utf-8")
    if isinstance(key, str) or key is None:
        return f"{type(key).__name__}:{key!r}".encode("utf-8")
    return repr(key).encode("utf-8")


def partition_of(key: Any, partitions: int) -> int:
    """Stable hash partition of a key (same in every worker process)."""
    return zlib.crc32(_stable_bytes(key)) % max(1, partitions)


@dataclass
class SpillStats:
    """Spill accounting, merged across tasks into the run's report."""

    partitions: int = 0
    spill_runs: int = 0
    spilled_pairs: int = 0
    #: Estimated (sizeof-model) bytes written to spill files.
    spilled_bytes: int = 0
    #: High-water mark of estimated resident bytes in shuffle buffers.
    peak_resident_bytes: int = 0

    def merge(self, other: "SpillStats") -> None:
        self.partitions = max(self.partitions, other.partitions)
        self.spill_runs += other.spill_runs
        self.spilled_pairs += other.spilled_pairs
        self.spilled_bytes += other.spilled_bytes
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, other.peak_resident_bytes
        )

    def note_resident(self, resident_bytes: int) -> None:
        if resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = resident_bytes

    def as_dict(self) -> dict:
        return {
            "partitions": self.partitions,
            "spill_runs": self.spill_runs,
            "spilled_pairs": self.spilled_pairs,
            "spilled_bytes": self.spilled_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
        }


class SpillWriter:
    """Hash-partitions one map task's output into budgeted spill runs."""

    def __init__(
        self,
        spill_dir: str,
        partitions: int,
        budget_bytes: int,
        task_id: int = 0,
    ):
        if budget_bytes <= 0:
            raise SpillError(
                f"memory budget must be positive, got {budget_bytes}"
            )
        self.spill_dir = spill_dir
        self.partitions = max(1, partitions)
        self.budget_bytes = budget_bytes
        self.task_id = task_id
        self._buffers: list[list] = [[] for _ in range(self.partitions)]
        #: Estimated bytes currently buffered per partition (accumulated
        #: in :meth:`add`, where each pair's size is already in hand).
        self._buffer_bytes: list[int] = [0] * self.partitions
        self._resident = 0
        self._run_index = 0
        #: Per partition, run-file paths in chronological (spill) order.
        self.run_files: list[list[str]] = [[] for _ in range(self.partitions)]
        #: Keys in first-seen order within this task's input slice.
        self.key_order: list = []
        self._seen: set = set()
        self.pairs_in = 0
        self.bytes_in = 0
        self.stats = SpillStats(partitions=self.partitions)

    @property
    def resident_bytes(self) -> int:
        """Estimated bytes currently buffered (pre-spill high water)."""
        return self._resident

    def add(self, key: Any, value: Any) -> None:
        size = sizeof_pair(key, value)
        if size > self.budget_bytes:
            raise SpillError(
                f"memory budget {self.budget_bytes} B is smaller than a "
                f"single record ({size} B estimated) — cannot buffer even "
                "one pair; raise the budget"
            )
        if key not in self._seen:
            self._seen.add(key)
            self.key_order.append(key)
        partition = partition_of(key, self.partitions)
        self._buffers[partition].append((key, value))
        self._buffer_bytes[partition] += size
        self._resident += size
        self.pairs_in += 1
        self.bytes_in += size
        self.stats.note_resident(self._resident)
        if self._resident > self.budget_bytes:
            self.spill()

    def add_block(self, block: ColumnBlock) -> None:
        """Route a vectorized map stage's output block into the buffers.

        The block's pairs stay in column form: each partition's slice is
        buffered (and later pickled) as a :class:`ColumnBlock` holding
        the value/key sub-arrays — one flat buffer instead of thousands
        of pair tuples — and :func:`read_run` expands it back to the
        exact pair list at merge time.  Oversized blocks are cut into
        pieces bounded by a quarter of the budget so residency stays
        budget-shaped even when one chunk emits more than the budget.
        """
        n = len(block)
        if n == 0:
            return
        sizes = block.pair_sizes()
        biggest = max(sizes)
        if biggest > self.budget_bytes:
            raise SpillError(
                f"memory budget {self.budget_bytes} B is smaller than a "
                f"single record ({biggest} B estimated) — cannot buffer even "
                "one pair; raise the budget"
            )
        if block.keys is None:
            key = block.key_const
            if key not in self._seen:
                self._seen.add(key)
                self.key_order.append(key)
            partition = partition_of(key, self.partitions)
            routes = [(partition, None)]
        else:
            by_partition: dict[int, list[int]] = {}
            for index, key in enumerate(block.key_list()):
                if key not in self._seen:
                    self._seen.add(key)
                    self.key_order.append(key)
                by_partition.setdefault(
                    partition_of(key, self.partitions), []
                ).append(index)
            routes = [
                (partition, indices)
                for partition, indices in by_partition.items()
            ]
        step = max(1, (self.budget_bytes // 4) // max(1, biggest))
        for partition, indices in routes:
            if indices is None:
                values = block.values
                keys = None
                picked_sizes = sizes
            else:
                values = block.values[indices]
                keys = block.keys[indices]
                picked_sizes = [sizes[i] for i in indices]
            count = int(values.shape[0])
            for start in range(0, count, step):
                stop = min(start + step, count)
                piece = ColumnBlock(
                    values=values[start:stop],
                    keys=None if keys is None else keys[start:stop],
                    key_const=block.key_const,
                )
                piece_bytes = sum(picked_sizes[start:stop])
                self._buffers[partition].append(piece)
                self._buffer_bytes[partition] += piece_bytes
                self._resident += piece_bytes
                self.pairs_in += stop - start
                self.bytes_in += piece_bytes
                self.stats.note_resident(self._resident)
                if self._resident > self.budget_bytes:
                    self.spill()

    def spill(self) -> None:
        """Flush every non-empty partition buffer as one run file each."""
        wrote = False
        for partition, buffer in enumerate(self._buffers):
            if not buffer:
                continue
            path = os.path.join(
                self.spill_dir,
                f"p{partition:04d}-t{self.task_id:04d}-r{self._run_index:04d}.spill",
            )
            try:
                with open(path, "wb") as handle:
                    pickle.dump(buffer, handle, protocol=pickle.HIGHEST_PROTOCOL)
            except OSError as exc:
                raise SpillError(
                    f"cannot write spill run {path!r}: {exc}"
                ) from exc
            self.run_files[partition].append(path)
            self.stats.spill_runs += 1
            self.stats.spilled_pairs += sum(
                len(entry) if type(entry) is ColumnBlock else 1
                for entry in buffer
            )
            self.stats.spilled_bytes += self._buffer_bytes[partition]
            self._buffers[partition] = []
            self._buffer_bytes[partition] = 0
            wrote = True
        if wrote:
            self._run_index += 1
        self._resident = 0

    def finish(self) -> None:
        """Flush the residue so the merge phase reads files only."""
        self.spill()


def read_run(path: str) -> list[tuple]:
    """Load one spill run; corruption raises the typed error.

    Column-block entries (from :meth:`SpillWriter.add_block`) are
    expanded back to their exact pair lists here, in arrival order, so
    every consumer keeps seeing a flat pair stream.
    """
    try:
        with open(path, "rb") as handle:
            pairs = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, ValueError) as exc:
        raise SpillError(f"corrupt spill run {path!r}: {exc}") from exc
    if not isinstance(pairs, list):
        raise SpillError(
            f"corrupt spill run {path!r}: expected a pair list, "
            f"got {type(pairs).__name__}"
        )
    if not any(type(entry) is ColumnBlock for entry in pairs):
        return pairs
    out: list[tuple] = []
    for entry in pairs:
        if type(entry) is ColumnBlock:
            out.extend(entry.pairs())
        else:
            out.append(entry)
    return out


def merge_partition(
    run_files: list[str],
    reduce_fn: Callable[[Any, Any], Any],
    stats: Optional[SpillStats] = None,
) -> list[tuple]:
    """Merge-reduce one partition: group runs in order, fold per key.

    Reads this partition's runs chronologically, so each key's value
    sequence matches the in-memory engines' grouping; the ordered fold
    then yields identical reductions.  Output pairs come back in the
    partition-local first-seen key order (the caller restores the global
    order).  Peak memory is this one partition's grouped values.
    """
    grouped: dict[Any, list] = {}
    resident = 0
    for path in run_files:
        for key, value in read_run(path):
            grouped.setdefault(key, []).append(value)
            resident += sizeof_pair(key, value)
    if stats is not None:
        stats.note_resident(resident)
    out: list[tuple] = []
    for key, values in grouped.items():
        acc = values[0]
        for value in values[1:]:
            acc = reduce_fn(acc, value)
        out.append((key, acc))
    return out


def cleanup_runs(run_files_per_partition: list[list[str]]) -> None:
    """Best-effort removal of consumed run files."""
    for paths in run_files_per_partition:
        for path in paths:
            try:
                os.remove(path)
            except OSError:
                pass


@dataclass
class SpillMapOut:
    """What one spill-mode map task reports back to the driver.

    The pairs themselves stay on disk; only metadata (run-file paths in
    order, the task-local key order, and counters) crosses the process
    boundary.
    """

    #: Per fused map stage: [records_in, records_out, bytes_out].
    stage_counts: list[list[int]]
    run_files: list[list[str]] = field(default_factory=list)
    key_order: list = field(default_factory=list)
    outgoing_records: int = 0
    shuffled_bytes: int = 0
    chunks: int = 0
    input_records: int = 0
    input_bytes: int = 0
    #: Chunks the vectorized column path produced / guard-rejected.
    columnar_chunks: int = 0
    guard_fallbacks: int = 0
    stats: SpillStats = field(default_factory=SpillStats)

    def merge_counts(self, stage_counts: list[list[int]]) -> None:
        """Accumulate another task's per-stage [in, out, bytes] counters."""
        for mine, theirs in zip(self.stage_counts, stage_counts):
            for i in range(3):
                mine[i] += theirs[i]

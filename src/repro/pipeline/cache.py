"""Content-addressed summary cache: fingerprints → verified summaries.

Recompiling an identical — or merely alpha-equivalent — code fragment is
pure waste: the CEGIS search and theorem-prover calls dominate compile
time (paper Table 2) yet deterministically reproduce the same verified
summaries.  This cache keys serialized :class:`VerifiedSummary` lists by
the fragment fingerprint of :func:`repro.lang.analysis.fragments
.fingerprint_fragment` plus the search-configuration knobs that affect
the result, so a warm hit skips synthesis and verification entirely.

Entries are stored in *canonical* variable space (the fingerprint's alpha
renaming applied), and renamed back to the requesting fragment's own
variable names on a hit — two workloads that differ only in identifier
choice share cache entries.

The in-memory tier is a thread-safe LRU; an optional on-disk tier stores
one JSON file per entry under ``cache_dir`` so caches survive processes.
Serialization failures (a summary carrying a non-JSON value) silently
decline to cache — correctness never depends on the cache.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ReproError
from ..ir.nodes import rename_summary, summary_from_data, summary_to_data
from ..lang.analysis.fragments import FragmentFingerprint
from ..lang.values import Instance
from ..synthesis.search import SearchConfig, VerifiedSummary
from ..verification.bounded import ProgramState
from ..verification.prover import proof_from_data, proof_to_data
from .diskio import (
    atomic_write_json,
    load_json_entry,
    pid_alive,
    safe_filename,
    sweep_stale_tmp,
)

#: Disk-format version; mismatching files are ignored.
_DISK_FORMAT = 1

#: Kept for importers of the old private name.
_pid_alive = pid_alive

#: Most counterexample states persisted per fragment fingerprint.
_MAX_COUNTEREXAMPLES = 16


def _state_value_to_data(value: Any) -> Any:
    """JSON-encode one program-state value (tagged where JSON is lossy)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return {"__t__": "float", "v": repr(value)}
    if isinstance(value, Instance):
        return {
            "__t__": "instance",
            "class": value.class_name,
            "fields": {
                name: _state_value_to_data(field_value)
                for name, field_value in value.fields.items()
            },
        }
    if isinstance(value, list):
        return [_state_value_to_data(item) for item in value]
    if isinstance(value, tuple):
        return {"__t__": "tuple", "v": [_state_value_to_data(i) for i in value]}
    if isinstance(value, (set, frozenset)):
        return {"__t__": "set", "v": [_state_value_to_data(i) for i in value]}
    if isinstance(value, dict):
        return {
            "__t__": "dict",
            "v": [
                [_state_value_to_data(k), _state_value_to_data(v)]
                for k, v in value.items()
            ],
        }
    raise ReproError(f"unserializable program-state value: {type(value).__name__}")


def _state_value_from_data(data: Any) -> Any:
    if isinstance(data, list):
        return [_state_value_from_data(item) for item in data]
    if isinstance(data, dict):
        tag = data.get("__t__")
        if tag == "float":
            return float(data["v"])
        if tag == "instance":
            return Instance(
                data["class"],
                {
                    name: _state_value_from_data(field_value)
                    for name, field_value in data["fields"].items()
                },
            )
        if tag == "tuple":
            return tuple(_state_value_from_data(i) for i in data["v"])
        if tag == "set":
            return set(_state_value_from_data(i) for i in data["v"])
        if tag == "dict":
            return {
                _state_value_from_data(k): _state_value_from_data(v)
                for k, v in data["v"]
            }
        raise ReproError(f"unknown state-value tag {tag!r}")
    return data


def search_config_key(config: SearchConfig) -> str:
    """The part of the cache key contributed by search configuration.

    Every knob that changes *which* summaries come out is included —
    that's the grammar/acceptance switches plus the verification
    strength: with ``accept_bounded_only`` a candidate whose proof is
    ``unknown`` is admitted on bounded/extended-domain evidence alone, so
    weaker domains genuinely admit different summaries.  Only the search
    timeout is excluded (timed-out results are never cached).
    """
    bc = config.bounded_config
    strength = "|".join(
        str(part)
        for part in (
            config.extended_states,
            bc.max_dataset_size,
            bc.int_range,
            bc.float_values,
            bc.string_pool,
            bc.date_range,
            bc.seed,
        )
    )
    strength_tag = hashlib.sha256(strength.encode("utf-8")).hexdigest()[:12]
    return (
        f"ig={int(config.incremental_grammar)}"
        f",max={config.max_summaries_per_class}"
        f",abo={int(config.accept_bounded_only)}"
        f",ex={int(config.exhaustive)}"
        f",vs={strength_tag}"
    )


@dataclass
class CacheHit:
    """A successful lookup: summaries rebound to the caller's names."""

    summaries: list[VerifiedSummary]
    final_class: Optional[str] = None
    classes_searched: int = 0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
        }


@dataclass
class SummaryCache:
    """Thread-safe LRU of serialized verified summaries, optionally disk-backed."""

    capacity: int = 512
    cache_dir: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, dict[str, Any]]" = field(
        default_factory=OrderedDict, repr=False
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        # A crash between writing `{path}.tmp.{pid}` and the os.replace
        # leaks the tmp file; left alone they accumulate forever in a
        # long-lived cache dir, so each cache open sweeps the orphans.
        if self.cache_dir is not None:
            self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        sweep_stale_tmp(self.cache_dir)

    # ------------------------------------------------------------------

    def lookup(
        self, fingerprint: FragmentFingerprint, config: SearchConfig
    ) -> Optional[CacheHit]:
        """Return cached summaries renamed to the fragment's variables."""
        if not fingerprint.cacheable:
            return None
        key = self._key(fingerprint, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            entry = self._load_disk(key)
            if entry is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._insert(key, entry)
        if entry is None:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            hit = self._decode(entry, fingerprint)
        except (ReproError, KeyError, TypeError, ValueError):
            # Corrupt or stale entry: drop it (disk copy too, or every
            # future lookup would reload and re-fail it) — treat as miss.
            with self._lock:
                self._entries.pop(key, None)
                self.stats.misses += 1
            self._remove_disk(key)
            return None
        with self._lock:
            self.stats.hits += 1
        return hit

    def store(
        self,
        fingerprint: FragmentFingerprint,
        config: SearchConfig,
        summaries: list[VerifiedSummary],
        final_class: Optional[str] = None,
        classes_searched: int = 0,
    ) -> bool:
        """Serialize and cache a completed search result; False if declined."""
        if not fingerprint.cacheable or not summaries:
            return False
        try:
            entry = self._encode(
                fingerprint, summaries, final_class, classes_searched
            )
        except ReproError:
            return False  # unserializable summary — skip, never fail
        key = self._key(fingerprint, config)
        with self._lock:
            self._insert(key, entry)
            self.stats.stores += 1
        self._write_disk(key, entry)
        return True

    # -- bounded-refutation counterexamples -----------------------------
    #
    # Keyed by fragment *fingerprint only* (no config): a counterexample
    # is just a concrete input binding, valid evidence under any search
    # configuration.  Repeat CEGIS runs on near-miss fragments seed their
    # Φ example set from these, so candidates already refuted once are
    # filtered before the bounded checker ever runs.

    @staticmethod
    def _cex_key(fingerprint: FragmentFingerprint) -> str:
        return f"cex:{fingerprint.digest}"

    def lookup_counterexamples(
        self, fingerprint: FragmentFingerprint
    ) -> list[ProgramState]:
        """Cached refutation states, renamed to the fragment's variables."""
        if not fingerprint.cacheable:
            return []
        key = self._cex_key(fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            entry = self._load_disk(key)
            if entry is not None:
                with self._lock:
                    self._insert(key, entry)
        if entry is None:
            return []
        from_canonical = fingerprint.inverse_renaming
        states: list[ProgramState] = []
        try:
            for inputs in entry["states"]:
                states.append(
                    ProgramState(
                        {
                            from_canonical.get(name, name): _state_value_from_data(
                                value
                            )
                            for name, value in inputs.items()
                        }
                    )
                )
        except (ReproError, KeyError, TypeError, ValueError):
            with self._lock:
                self._entries.pop(key, None)
            self._remove_disk(key)
            return []
        return states

    def store_counterexamples(
        self, fingerprint: FragmentFingerprint, states: list[ProgramState]
    ) -> bool:
        """Persist refutation states (canonical names), merging and capping."""
        if not fingerprint.cacheable or not states:
            return False
        to_canonical = fingerprint.renaming
        encoded: list[dict[str, Any]] = []
        for state in states:
            try:
                encoded.append(
                    {
                        to_canonical.get(name, name): _state_value_to_data(value)
                        for name, value in state.inputs.items()
                    }
                )
            except ReproError:
                continue  # best-effort: skip unserializable states
        if not encoded:
            return False
        key = self._cex_key(fingerprint)
        with self._lock:
            existing = self._entries.get(key)
        if existing is None:
            existing = self._load_disk(key)
        merged: list[dict[str, Any]] = list(
            existing.get("states", []) if existing else []
        )
        for item in encoded:
            if item not in merged:
                merged.append(item)
        merged = merged[-_MAX_COUNTEREXAMPLES:]
        entry = {"format": _DISK_FORMAT, "states": merged}
        with self._lock:
            self._insert(key, entry)
        self._write_disk(key, entry)
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------

    @staticmethod
    def _key(fingerprint: FragmentFingerprint, config: SearchConfig) -> str:
        return f"{fingerprint.digest}:{search_config_key(config)}"

    def _insert(self, key: str, entry: dict[str, Any]) -> None:
        """Caller holds the lock."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    @staticmethod
    def _encode(
        fingerprint: FragmentFingerprint,
        summaries: list[VerifiedSummary],
        final_class: Optional[str],
        classes_searched: int,
    ) -> dict[str, Any]:
        to_canonical = fingerprint.renaming
        return {
            "format": _DISK_FORMAT,
            "final_class": final_class,
            "classes_searched": classes_searched,
            "summaries": [
                {
                    "summary": summary_to_data(
                        rename_summary(vs.summary, to_canonical)
                    ),
                    "proof": proof_to_data(vs.proof),
                }
                for vs in summaries
            ],
        }

    @staticmethod
    def _decode(
        entry: dict[str, Any], fingerprint: FragmentFingerprint
    ) -> CacheHit:
        from_canonical = fingerprint.inverse_renaming
        summaries = [
            VerifiedSummary(
                summary=rename_summary(
                    summary_from_data(item["summary"]), from_canonical
                ),
                proof=proof_from_data(item["proof"]),
            )
            for item in entry["summaries"]
        ]
        return CacheHit(
            summaries=summaries,
            final_class=entry.get("final_class"),
            classes_searched=entry.get("classes_searched", 0),
        )

    # -- disk tier ------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{safe_filename(key)}.json")

    def _load_disk(self, key: str) -> Optional[dict[str, Any]]:
        path = self._disk_path(key)
        if path is None:
            return None
        entry, _error = load_json_entry(path, _DISK_FORMAT)
        return entry

    def _write_disk(self, key: str, entry: dict[str, Any]) -> None:
        path = self._disk_path(key)
        if path is not None:
            atomic_write_json(path, entry)

    def _remove_disk(self, key: str) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.remove(path)
        except OSError:
            pass

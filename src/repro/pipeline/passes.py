"""The staged compiler passes:
analyze → synthesize → verify-attach → codegen → plan → graph.

Each of the first five passes is a small, stateless object transforming
one fragment's :class:`~repro.pipeline.context.FragmentState`.  Keeping
the stages as explicit passes (instead of one monolithic ``translate``
body) gives the pipeline its seams: the scheduler can run fragments
concurrently, the synthesize pass can consult the summary cache, and
instrumentation gets per-stage timings for free.

The sixth, ``graph``, is a *context* pass: it runs once per function
after every fragment's chain has finished (it needs all of them) and
stitches the per-fragment liveness sets into the whole-program job
graph that ``run_program`` executes.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..diagnostics import analyze_soundness, escalate_strict, explain, has_rejections, make
from ..errors import AnalysisError, CodegenError
from ..lang.analysis.fragments import analyze_fragment, fingerprint_fragment
from .context import CompilationContext, FragmentState


class CompilerPass:
    """Base class: a named transformation of one fragment's state."""

    name = "pass"

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        raise NotImplementedError


class AnalyzePass(CompilerPass):
    """Program analysis: inputs/outputs/operators/view + fingerprint."""

    name = "analyze"

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        try:
            state.analysis = analyze_fragment(state.fragment, ctx.program)
        except AnalysisError as exc:
            state.diagnostics.append(
                make("REP101", str(exc), fragment=state.fragment.id)
            )
            state.failure_reason = f"analysis failed: {exc} [REP101]"
            return
        # The fingerprint only exists to key the summary cache; skip the
        # canonical serialization + hash when no cache is attached.
        if ctx.cache is not None:
            state.fingerprint = fingerprint_fragment(state.analysis)


class SoundnessPass(CompilerPass):
    """Static soundness gate: reject provably-uncheckable fragments early.

    Fragments whose loop calls unmodelled or nondeterministic library
    methods cannot be interpreted by the bounded checker, so CEGIS could
    only ever validate candidates vacuously (and has mistranslated such
    fragments before).  They are rejected *here*, before any search time
    is spent, with an error-level diagnostic.  Warning/info findings
    (scratch mutation, order dependence, float folds, unpicklable
    captures) ride along on the fragment state; under ``ctx.strict``
    they escalate to a typed :class:`~repro.errors.DiagnosticError`.
    """

    name = "soundness"

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        if not ctx.soundness:
            return
        assert state.analysis is not None
        diags = analyze_soundness(
            state.analysis,
            accept_bounded_only=ctx.search_config.accept_bounded_only,
        )
        state.diagnostics.extend(diags)
        if has_rejections(diags):
            codes = sorted({d.code for d in diags if d.severity == "error"})
            state.failure_reason = (
                f"soundness: fragment rejected before synthesis "
                f"[{', '.join(codes)}]\n{explain(diags)}"
            )
            return
        if ctx.strict:
            escalate_strict(diags, f"fragment {state.fragment.id}")


class SynthesizePass(CompilerPass):
    """Summary search: cache lookup, else grammar → CEGIS → verification."""

    name = "synthesize"

    #: Free-text search failure reasons → stable diagnostic codes.
    _FAILURE_CODES = (
        ("synthesis timed out", "REP206"),
        ("bounded checker construction failed", "REP208"),
        ("could not build bounded program states", "REP208"),
        ("no valid summary found", "REP205"),
    )

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        from ..synthesis.search import find_summaries_cached

        assert state.analysis is not None
        state.search = find_summaries_cached(
            state.analysis,
            ctx.search_config,
            cache=ctx.cache,
            fingerprint=state.fingerprint,
        )
        state.diagnostics.extend(state.search.diagnostics)
        if state.search.counterexample_states:
            state.diagnostics.append(
                make(
                    "REP204",
                    f"bounded checker refuted candidates with "
                    f"{len(state.search.counterexample_states)} "
                    "counterexample state(s); cached for future searches",
                    fragment=state.fragment.id,
                )
            )
        if not state.search.translated:
            reason = state.search.failure_reason or "synthesis failed"
            code = "REP205"
            for text, mapped in self._FAILURE_CODES:
                if text in reason:
                    code = mapped
                    break
            state.diagnostics.append(
                make(code, reason, fragment=state.fragment.id)
            )
            state.failure_reason = f"{reason} [{code}]"


class VerifyAttachPass(CompilerPass):
    """Attach proofs: re-check every summary carries an accepted proof.

    Verification itself is interleaved with CEGIS inside the synthesize
    pass (candidates must be verified to be blocked or kept), so this
    pass is the pipeline's acceptance gate: it drops any summary whose
    proof the current configuration would not accept — which matters for
    cache hits, where the entry may have been produced under a laxer
    ``accept_bounded_only`` or by an older library version.
    """

    name = "verify-attach"

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        assert state.search is not None
        accepted = []
        bounded_only = 0
        for vs in state.search.summaries:
            if vs.proof.status == "proved":
                accepted.append(vs)
            elif vs.proof.status == "unknown" and ctx.search_config.accept_bounded_only:
                accepted.append(vs)
                bounded_only += 1
        if len(accepted) != len(state.search.summaries):
            state.search.summaries = accepted
        if bounded_only:
            reasons = sorted(
                {
                    vs.proof.reason
                    for vs in accepted
                    if vs.proof.status == "unknown" and vs.proof.reason
                }
            )
            state.diagnostics.append(
                make(
                    "REP203",
                    f"{bounded_only} of {len(accepted)} summaries accepted on "
                    "bounded (Tier-2) evidence only"
                    + (f": {'; '.join(reasons)}" if reasons else ""),
                    fragment=state.fragment.id,
                )
            )
            if ctx.strict:
                escalate_strict(
                    [d for d in state.diagnostics if d.code == "REP203"],
                    f"fragment {state.fragment.id}",
                )
        if not accepted:
            reason = (
                state.search.failure_reason
                or "no summary carries an acceptable proof"
            )
            state.diagnostics.append(
                make("REP207", reason, fragment=state.fragment.id)
            )
            state.failure_reason = f"{reason} [REP207]"


class CodegenPass(CompilerPass):
    """Build the adaptive program (cost pruning + runtime monitor)."""

    name = "codegen"

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        from ..codegen.glue import build_adaptive_program

        assert state.analysis is not None and state.search is not None
        try:
            state.program = build_adaptive_program(
                state.analysis,
                state.search.summaries,
                backend=ctx.backend,
                engine_config=ctx.engine_config,
            )
        except CodegenError as exc:
            state.failure_reason = f"codegen failed: {exc}"


class PlanPass(CompilerPass):
    """Attach the execution planner and its compile-time statics.

    The data-dependent half of planning (input size, sampled estimates,
    calibration timings) has to wait until run time; this pass does the
    static half once per fragment — per-implementation cost bounds and a
    picklability probe of the summary payload — and hangs an
    :class:`~repro.planner.planner.ExecutionPlanner` off the adaptive
    program so ``run(plan="auto")`` can finish the job.
    """

    name = "plan"

    def run(self, ctx: CompilationContext, state: FragmentState) -> None:
        from ..planner.planner import ExecutionPlanner, PlannerConfig

        if state.program is None:
            return
        planner = ExecutionPlanner(
            config=ctx.planner_config or PlannerConfig(),
            cost_model=state.program.cost_model,
        )
        planner.precompute(state.program.programs)
        state.program.planner = planner


class ContextPass:
    """A pass over a whole compilation context (all fragments at once)."""

    name = "context-pass"

    def run(self, ctx: CompilationContext) -> None:
        raise NotImplementedError


class GraphPass(ContextPass):
    """Build the whole-program job graph from the compiled fragments.

    Runs the inter-fragment dataflow analysis (liveness in/out sets →
    producer→consumer edges) and attaches the resulting
    :class:`~repro.graph.jobgraph.JobGraph` to the context, so
    ``run_program`` can schedule fused chains and concurrent branches
    without re-deriving the dataflow per run.
    """

    name = "graph"

    def run(self, ctx: CompilationContext) -> None:
        from ..graph.jobgraph import build_job_graph
        from ..lang.analysis.dataflow import analyze_dataflow

        func = ctx.program.function(ctx.function)
        dataflow = analyze_dataflow(
            [state.analysis for state in ctx.fragments], func
        )
        ctx.job_graph = build_job_graph(ctx.function, ctx.fragments, dataflow)


def default_passes() -> Sequence[CompilerPass]:
    """The standard per-fragment pipeline, in execution order."""
    return (
        AnalyzePass(),
        SoundnessPass(),
        SynthesizePass(),
        VerifyAttachPass(),
        CodegenPass(),
        PlanPass(),
    )


def default_context_passes() -> Sequence[ContextPass]:
    """Whole-context passes run after every fragment chain completes."""
    return (GraphPass(),)


def run_passes(
    passes: Sequence[CompilerPass], ctx: CompilationContext, state: FragmentState
) -> FragmentState:
    """Run a fragment through the pass chain, stopping at first failure."""
    for compiler_pass in passes:
        if state.failed:
            break
        started = time.monotonic()
        compiler_pass.run(ctx, state)
        ctx.record_pass_time(compiler_pass.name, time.monotonic() - started)
    return state

"""Fragment scheduler: runs pass chains, concurrently when asked.

The unit of parallelism is one code fragment's full pass chain
(analyze → synthesize → verify-attach → codegen → plan): fragments are
independent translation units, so whole workload suites can compile
concurrently through :meth:`PassPipeline.run_many` while each fragment
still sees its passes strictly in order.  The shared summary cache is
thread-safe, so concurrent fragments cooperate — the first to finish a
fingerprint populates the entry the rest hit.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from ..cpu import available_cpu_count
from ..lang.analysis.fragments import identify_fragments
from .context import CompilationContext, FragmentState
from .passes import (
    CompilerPass,
    ContextPass,
    default_context_passes,
    default_passes,
    run_passes,
)


def default_worker_count() -> int:
    """Worker pool size: one per *available* core (cgroup/affinity
    aware — ``os.cpu_count()`` over-subscribes containers), capped —
    synthesis is CPU-bound."""
    return min(8, available_cpu_count())


class PassPipeline:
    """Drives compilation contexts through an ordered pass sequence."""

    def __init__(
        self,
        passes: Optional[Sequence[CompilerPass]] = None,
        max_workers: Optional[int] = None,
        context_passes: Optional[Sequence[ContextPass]] = None,
    ):
        self.passes: Sequence[CompilerPass] = (
            tuple(passes) if passes is not None else tuple(default_passes())
        )
        self.context_passes: Sequence[ContextPass] = (
            tuple(context_passes)
            if context_passes is not None
            else tuple(default_context_passes())
        )
        self.max_workers = (
            max_workers if max_workers is not None else default_worker_count()
        )

    # ------------------------------------------------------------------

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Compile one context: identify fragments, run every pass chain."""
        self._populate(ctx)
        self._execute([(ctx, state) for state in ctx.fragments])
        self._finish_context(ctx)
        return ctx

    def run_many(
        self, contexts: Sequence[CompilationContext]
    ) -> Sequence[CompilationContext]:
        """Compile many contexts with one shared worker pool.

        All fragments of all contexts are scheduled together, so a batch
        of small programs saturates the pool instead of serializing on
        per-program barriers.  Context passes (the job-graph builder)
        need a whole function's fragments, so they run per context after
        the shared pool drains.
        """
        work: list[tuple[CompilationContext, FragmentState]] = []
        for ctx in contexts:
            self._populate(ctx)
            work.extend((ctx, state) for state in ctx.fragments)
        self._execute(work)
        for ctx in contexts:
            self._finish_context(ctx)
        return contexts

    # ------------------------------------------------------------------

    def _finish_context(self, ctx: CompilationContext) -> None:
        for context_pass in self.context_passes:
            started = time.monotonic()
            context_pass.run(ctx)
            ctx.record_pass_time(context_pass.name, time.monotonic() - started)

    def _populate(self, ctx: CompilationContext) -> None:
        if ctx.fragments:
            return  # already identified (caller pre-seeded the context)
        func = ctx.program.function(ctx.function)
        ctx.fragments = [
            FragmentState(fragment=f) for f in identify_fragments(func)
        ]

    def _execute(
        self, work: list[tuple[CompilationContext, FragmentState]]
    ) -> None:
        if len(work) <= 1 or self.max_workers <= 1:
            for ctx, state in work:
                run_passes(self.passes, ctx, state)
            return
        workers = min(self.max_workers, len(work))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(run_passes, self.passes, ctx, state)
                for ctx, state in work
            ]
            for future in futures:
                future.result()  # propagate unexpected pass errors

"""The staged compilation pipeline.

Organizes the Casper compiler as explicit passes over an explicit
:class:`CompilationContext` (the seam :class:`repro.compiler
.CasperCompiler` drives), with two subsystems built on that seam:

* :mod:`repro.pipeline.cache` — a content-addressed summary cache keyed
  by alpha-renamed fragment fingerprints, so recompiling an identical or
  alpha-equivalent fragment skips CEGIS and verification entirely;
* :mod:`repro.pipeline.scheduler` — a thread-pool scheduler that runs
  independent fragments' pass chains concurrently and batches whole
  workload suites through one pool.
"""

from .cache import CacheHit, CacheStats, SummaryCache, search_config_key
from .context import CompilationContext, FragmentState
from .passes import (
    AnalyzePass,
    CodegenPass,
    CompilerPass,
    ContextPass,
    GraphPass,
    PlanPass,
    SynthesizePass,
    VerifyAttachPass,
    default_context_passes,
    default_passes,
    run_passes,
)
from .scheduler import PassPipeline, default_worker_count

__all__ = [
    "AnalyzePass",
    "CacheHit",
    "CacheStats",
    "CodegenPass",
    "CompilationContext",
    "CompilerPass",
    "ContextPass",
    "FragmentState",
    "GraphPass",
    "PassPipeline",
    "PlanPass",
    "SummaryCache",
    "SynthesizePass",
    "VerifyAttachPass",
    "default_context_passes",
    "default_passes",
    "default_worker_count",
    "run_passes",
    "search_config_key",
]

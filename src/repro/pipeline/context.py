"""Compilation context threaded through the staged pass pipeline.

One :class:`CompilationContext` describes one function being translated;
it carries the parsed program, the configuration, the shared summary
cache, and one :class:`FragmentState` per candidate code fragment.  The
passes in :mod:`repro.pipeline.passes` mutate fragment states in order
(analyze → synthesize → verify-attach → codegen → plan); the scheduler
may run
different fragments' pass chains concurrently, so anything shared across
fragments (the cache, the timing table) is lock-protected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..diagnostics.diagnostic import Diagnostic
from ..engine.config import EngineConfig
from ..lang import ast_nodes as ast
from ..lang.analysis.fragments import (
    CodeFragment,
    FragmentAnalysis,
    FragmentFingerprint,
)
from ..synthesis.search import SearchConfig, SearchResult

if TYPE_CHECKING:
    from ..codegen.glue import AdaptiveProgram
    from ..graph.jobgraph import JobGraph
    from ..planner.planner import PlannerConfig
    from .cache import SummaryCache


@dataclass
class FragmentState:
    """Everything the passes accumulate for one code fragment.

    A pass that cannot proceed sets ``failure_reason`` and the scheduler
    skips the remaining passes for this fragment; earlier results stay
    available so callers can inspect how far the fragment got.
    """

    fragment: CodeFragment
    analysis: Optional[FragmentAnalysis] = None
    fingerprint: Optional[FragmentFingerprint] = None
    search: Optional[SearchResult] = None
    program: Optional["AdaptiveProgram"] = None
    failure_reason: Optional[str] = None
    #: Structured diagnostics accumulated across passes (stable REPxxx
    #: codes); a rejection always has an error-level entry here too.
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.failure_reason is not None

    @property
    def cache_hit(self) -> bool:
        return self.search is not None and self.search.cache_hit


@dataclass
class CompilationContext:
    """Shared state of one function's trip through the pass pipeline."""

    program: ast.Program
    function: str
    search_config: SearchConfig = field(default_factory=SearchConfig)
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    backend: str = "spark"
    cache: Optional["SummaryCache"] = None
    #: Execution-planner knobs used by the ``plan`` pass; None → defaults.
    planner_config: Optional["PlannerConfig"] = None
    #: Run the static soundness gate before synthesis (default on; the
    #: bench harness turns it off to measure CEGIS seconds saved).
    soundness: bool = True
    #: Escalate warning-level diagnostics to :class:`DiagnosticError`.
    strict: bool = False
    fragments: list[FragmentState] = field(default_factory=list)
    #: Whole-program job graph, attached by the ``graph`` pass after
    #: every fragment's chain completes (it needs all of them).
    job_graph: Optional["JobGraph"] = None
    #: Wall-clock seconds spent in each pass, summed over fragments.
    pass_seconds: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_pass_time(self, pass_name: str, seconds: float) -> None:
        with self._lock:
            self.pass_seconds[pass_name] = (
                self.pass_seconds.get(pass_name, 0.0) + seconds
            )

    @property
    def cache_hits(self) -> int:
        return sum(1 for state in self.fragments if state.cache_hit)

"""Shared disk tier for the on-disk caches: atomic JSON entry files.

Both the summary cache (:mod:`repro.pipeline.cache`) and the planner's
observation store (:mod:`repro.cost.observe`) persist one JSON file per
entry under a cache directory.  The write protocol is the same for
both — write to ``{path}.tmp.{pid}`` then :func:`os.replace`, so readers
only ever see complete files and concurrent writers race benignly
(last replace wins) — as is the recovery story: a crash between the tmp
write and the replace leaks the tmp file, and each cache open sweeps
orphans whose writer pid is gone.

Loading distinguishes three outcomes the callers treat differently:

* the file does not exist → a plain miss, nothing to report;
* the file exists but cannot be parsed (truncated write, corruption) or
  carries a different schema version → a miss **with a reason string**,
  so the caller can surface the fallback instead of hiding it;
* a well-formed entry of the expected format → the payload.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

__all__ = [
    "atomic_write_json",
    "load_json_entry",
    "pid_alive",
    "safe_filename",
    "sweep_stale_tmp",
]


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a running process we must not race with."""
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except (OverflowError, OSError):
        return False
    return True


def sweep_stale_tmp(cache_dir: str) -> None:
    """Remove ``*.tmp.{pid}`` orphans whose writer process is gone."""
    try:
        names = os.listdir(cache_dir)
    except OSError:
        return  # directory not created yet — nothing to sweep
    for name in names:
        if ".tmp." not in name:
            continue
        pid_text = name.rsplit(".", 1)[-1]
        if pid_text.isdigit() and pid_alive(int(pid_text)):
            continue  # a live writer may still be mid-write
        try:
            os.remove(os.path.join(cache_dir, name))
        except OSError:
            pass  # the disk tier stays best-effort


def safe_filename(key: str) -> str:
    """A cache key flattened into a portable file name."""
    return key.replace(":", "_").replace("=", "-").replace(",", "+")


def atomic_write_json(path: str, payload: Any) -> bool:
    """Write ``payload`` as JSON via tmp-file + rename; False on failure."""
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except (OSError, TypeError, ValueError):
        return False  # disk tier is best-effort
    return True


def load_json_entry(
    path: str, expected_format: int
) -> tuple[Optional[dict], Optional[str]]:
    """Load one entry file: ``(entry, error)``.

    ``(None, None)`` — the file does not exist (a plain miss).
    ``(None, reason)`` — the file exists but is unreadable, not valid
    JSON, not a dict, or carries a ``format`` other than
    ``expected_format``; ``reason`` says which.
    ``(entry, None)`` — a well-formed entry of the expected format.
    """
    if not os.path.exists(path):
        return None, None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except OSError as exc:
        return None, f"unreadable ({exc.__class__.__name__})"
    except json.JSONDecodeError as exc:
        return None, f"corrupt JSON ({exc.msg} at char {exc.pos})"
    if not isinstance(entry, dict):
        return None, f"malformed entry (expected object, got {type(entry).__name__})"
    found = entry.get("format")
    if found != expected_format:
        return None, (
            f"schema version mismatch (found {found!r}, expected {expected_format})"
        )
    return entry, None

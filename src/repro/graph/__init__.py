"""Whole-program job graphs: dataflow-stitched fragment DAGs.

Casper translates each candidate fragment independently and glues its
output back into the source program (§6.3); multi-fragment programs
therefore execute as serialized, fully re-materialized jobs.  This
package lifts a compiled function into an explicit dataflow DAG of
translated fragments and executes it as one program:

* :mod:`repro.graph.jobgraph` — the :class:`JobGraph` IR (nodes, typed
  producer→consumer edges, final variables, cycle/producer validation);
* :mod:`repro.graph.fuse` — the fusion optimizer: map→map fusion,
  combiner hoisting across fused boundaries, dead-stage elimination;
* :mod:`repro.graph.executor` — wave scheduling with concurrent branch
  execution, shared dataset-view caching, and stitched fused chains on
  the real local engines.

The user-facing entry point is :func:`repro.run_program`.
"""

from .executor import GraphRunResult, interpret_reference, run_graph
from .fuse import FusedChain, GraphSchedule, optimize_graph
from .jobgraph import JobEdge, JobGraph, JobNode, build_job_graph

__all__ = [
    "FusedChain",
    "GraphRunResult",
    "GraphSchedule",
    "JobEdge",
    "JobGraph",
    "JobNode",
    "build_job_graph",
    "interpret_reference",
    "optimize_graph",
    "run_graph",
]

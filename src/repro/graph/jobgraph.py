"""The whole-program job-graph IR.

A :class:`JobGraph` lifts one function's translated fragments out of
their source order into an explicit dataflow DAG: one :class:`JobNode`
per candidate fragment, one :class:`JobEdge` per producer→consumer
variable handoff (from :mod:`repro.lang.analysis.dataflow`).  The graph
is what the fusion optimizer (:mod:`repro.graph.fuse`) rewrites and the
DAG executor (:mod:`repro.graph.executor`) schedules: independent
branches run concurrently, chains become fusion candidates, and outputs
nobody observes become dead stages.

Casper's original per-fragment model (§6.3) re-materializes every
fragment's outputs into source-program variables and re-scans them for
the next fragment; the job graph is the representation that lets the
system skip that round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import GraphError
from ..lang.analysis.dataflow import ProgramDataflow

if TYPE_CHECKING:
    from ..codegen.glue import AdaptiveProgram
    from ..lang.analysis.fragments import FragmentAnalysis


@dataclass
class JobNode:
    """One candidate fragment as a job-graph vertex."""

    id: str  # fragment id, e.g. "query1#0"
    index: int  # fragment position within the compiled function
    analysis: Optional["FragmentAnalysis"] = None
    program: Optional["AdaptiveProgram"] = None
    failure_reason: Optional[str] = None

    @property
    def translated(self) -> bool:
        return self.program is not None and bool(self.program.programs)

    @property
    def input_vars(self) -> tuple[str, ...]:
        if self.analysis is None:
            return ()
        return tuple(self.analysis.input_vars)

    @property
    def output_vars(self) -> tuple[str, ...]:
        if self.analysis is None:
            return ()
        return tuple(self.analysis.output_vars)


@dataclass(frozen=True)
class JobEdge:
    """Producer→consumer handoff of one variable between two nodes."""

    producer: str  # node id
    consumer: str
    var: str
    kind: str  # "dataset" | "broadcast"


@dataclass
class JobGraph:
    """The dataflow DAG of one function's candidate fragments."""

    function: str
    nodes: dict[str, JobNode] = field(default_factory=dict)
    edges: list[JobEdge] = field(default_factory=list)
    #: Fragment outputs the function's tail observes (its "results").
    final_vars: frozenset[str] = frozenset()
    #: Variables read from outside any fragment (the program's inputs).
    source_vars: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # Structure queries

    def node_list(self) -> list[JobNode]:
        return list(self.nodes.values())

    def consumers_of(self, node_id: str) -> list[JobEdge]:
        return [e for e in self.edges if e.producer == node_id]

    def producers_of(self, node_id: str) -> list[JobEdge]:
        return [e for e in self.edges if e.consumer == node_id]

    def dependencies(self, node_id: str) -> set[str]:
        return {e.producer for e in self.edges if e.consumer == node_id}

    def translated_nodes(self) -> list[JobNode]:
        return [n for n in self.nodes.values() if n.translated]

    # ------------------------------------------------------------------
    # Validation

    def topological_order(self, subset: Optional[Iterable[str]] = None) -> list[str]:
        """Node ids in dependency order; raises GraphError on a cycle.

        ``subset`` restricts the sort (and cycle check) to the given
        node ids, ignoring edges that leave the subset.
        """
        ids = list(subset) if subset is not None else list(self.nodes)
        id_set = set(ids)
        indegree = {node_id: 0 for node_id in ids}
        for edge in self.edges:
            if edge.producer in id_set and edge.consumer in id_set:
                indegree[edge.consumer] += 1
        ready = [node_id for node_id in ids if indegree[node_id] == 0]
        order: list[str] = []
        while ready:
            node_id = ready.pop(0)
            order.append(node_id)
            for edge in self.consumers_of(node_id):
                if edge.consumer in id_set:
                    indegree[edge.consumer] -= 1
                    if indegree[edge.consumer] == 0:
                        ready.append(edge.consumer)
        if len(order) != len(ids):
            cyclic = sorted(node_id for node_id in ids if node_id not in set(order))
            raise GraphError(
                f"job graph for {self.function!r} contains a dependency "
                f"cycle through: {', '.join(cyclic)}"
            )
        return order

    def check_producers(self, node_ids: Optional[Iterable[str]] = None) -> None:
        """Raise GraphError when a needed producer failed to translate.

        A consumer can only execute if every producer it depends on has a
        runnable translation (or, in non-strict execution, at least a
        successful analysis to interpret from).  The error enumerates the
        broken handoffs so the caller knows exactly which fragment to fix.
        """
        wanted = set(node_ids) if node_ids is not None else set(self.nodes)
        broken: list[str] = []
        for edge in self.edges:
            if edge.consumer not in wanted or edge.producer not in wanted:
                continue
            producer = self.nodes[edge.producer]
            if not producer.translated:
                broken.append(
                    f"{edge.consumer} needs {edge.var!r} from {edge.producer}, "
                    f"which was not translated "
                    f"({producer.failure_reason or 'unknown reason'})"
                )
        if broken:
            raise GraphError(
                f"job graph for {self.function!r} has consumers of failed "
                "producers: " + "; ".join(broken)
            )

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable graph dump (nodes, edges, final variables)."""
        lines = [f"job graph {self.function!r}:"]
        for node in self.nodes.values():
            status = (
                "translated"
                if node.translated
                else f"untranslated: {node.failure_reason or 'unknown reason'}"
            )
            lines.append(
                f"  [{node.index}] {node.id} ({status}) "
                f"in={list(node.input_vars)} out={list(node.output_vars)}"
            )
        for edge in self.edges:
            lines.append(
                f"  {edge.producer} --{edge.var}/{edge.kind}--> {edge.consumer}"
            )
        lines.append(f"  final: {sorted(self.final_vars)}")
        return "\n".join(lines)


def build_job_graph(
    function: str,
    fragments: list,
    dataflow: ProgramDataflow,
) -> JobGraph:
    """Assemble the job graph from fragment states and their dataflow.

    ``fragments`` is any sequence of objects with ``fragment``,
    ``analysis``, ``program`` and ``failure_reason`` attributes — both
    the pipeline's ``FragmentState`` and the compiler's
    ``FragmentTranslation`` qualify, so the graph can be built inside
    the pass pipeline or re-derived from a finished compilation.
    """
    graph = JobGraph(
        function=function,
        final_vars=dataflow.final_vars,
        source_vars=dataflow.source_vars,
    )
    for index, state in enumerate(fragments):
        node = JobNode(
            id=state.fragment.id,
            index=index,
            analysis=state.analysis,
            program=state.program,
            failure_reason=state.failure_reason,
        )
        graph.nodes[node.id] = node
    ids = [node.id for node in graph.nodes.values()]
    for edge in dataflow.edges:
        graph.edges.append(
            JobEdge(
                producer=ids[edge.producer],
                consumer=ids[edge.consumer],
                var=edge.var,
                kind=edge.kind,
            )
        )
    return graph

"""Job-graph fusion optimizer: stage fusion and dead-stage elimination.

Rewrites a :class:`~repro.graph.jobgraph.JobGraph` into an executable
:class:`GraphSchedule` of *units*.  A unit is either a single node (run
through its adaptive program exactly as ``run_translated`` would) or a
:class:`FusedChain` — a producer→consumer pipeline whose intermediate
dataset is handed over inside one engine invocation instead of being
rebuilt into source-program variables and re-scanned (the §6.3 glue
round trip).  Three optimizations apply:

* **map→map fusion** — when the producer's translation is map-only and
  emits a bag that the consumer iterates (``filter → aggregate``
  chains), the handoff is a per-record bridge: producer map, bridge, and
  consumer map run as *one* fused map stage on worker processes, and the
  intermediate dataset is never materialized at all;
* **combiner hoisting** — when a fused chain ends in a combining
  reduce, the engine applies the consumer's combiner at the end of the
  fused map stage, i.e. map-side combining now reaches *across* the
  fragment boundary and shrinks the shuffle of the whole chain;
* **dead-stage elimination** — nodes from which no path reaches a
  required output are dropped (with the reason recorded) instead of
  executed.

Fusion is deliberately conservative: a chain link requires the producer
to have exactly one output variable, consumed by exactly one node, as
that consumer's sole dataset-view source.  Everything else stays a
plain node and relies on concurrent branch scheduling instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.nodes import JoinStage, MapStage, ReduceStage
from ..lang.analysis.liveness import stmt_uses
from .jobgraph import JobGraph, JobNode


@dataclass(frozen=True)
class FusedChain:
    """One executable unit: a maximal fusable producer→consumer chain.

    ``bridges[i]`` describes the handoff between ``node_ids[i]`` and
    ``node_ids[i+1]``: ``"map"`` for a per-record bridge (true map→map
    fusion, the intermediate never materializes) or ``"barrier"`` for a
    driver-side re-binding that still keeps the chain inside one engine
    invocation (no re-scan, no second job startup).  ``impl_indexes``
    pins each node's implementation choice — fused stages are assembled
    statically, so the runtime monitor cannot pick per-run.
    """

    node_ids: tuple[str, ...]
    bridges: tuple[str, ...] = ()
    impl_indexes: tuple[int, ...] = ()

    @property
    def head(self) -> str:
        return self.node_ids[0]

    @property
    def tail(self) -> str:
        return self.node_ids[-1]

    @property
    def fused(self) -> bool:
        return len(self.node_ids) > 1

    def describe(self) -> str:
        if not self.fused:
            return self.node_ids[0]
        parts = [self.node_ids[0]]
        for bridge, node_id in zip(self.bridges, self.node_ids[1:]):
            arrow = "=>" if bridge == "map" else "->"
            parts.append(f"{arrow} {node_id}")
        return " ".join(parts)


@dataclass
class GraphSchedule:
    """The optimizer's answer: units to run, and why.

    ``fused_away`` lists intermediate variables that map→map fusion
    keeps entirely inside a fused stage — they are never materialized,
    so they do not appear in the program's outputs.
    """

    units: list[FusedChain] = field(default_factory=list)
    decisions: list[str] = field(default_factory=list)
    eliminated: dict[str, str] = field(default_factory=dict)
    fused_away: frozenset[str] = frozenset()

    def unit_of(self, node_id: str) -> Optional[FusedChain]:
        for unit in self.units:
            if node_id in unit.node_ids:
                return unit
        return None

    @property
    def fused_units(self) -> list[FusedChain]:
        return [u for u in self.units if u.fused]


def optimize_graph(
    graph: JobGraph,
    required_vars: Optional[set[str]] = None,
    fuse: bool = True,
) -> GraphSchedule:
    """Build the execution schedule for a job graph.

    ``required_vars`` enables dead-stage elimination: only nodes that
    (transitively) contribute to one of the named variables survive.
    ``None`` keeps every node — the default for ``run_program``, whose
    callers expect all program outputs.  ``fuse=False`` disables chain
    building (every unit is a single node), which is the baseline the
    fusion benchmarks compare against.
    """
    schedule = GraphSchedule()
    order = graph.topological_order()
    kept = _eliminate_dead(graph, order, required_vars, schedule)

    in_unit: set[str] = set()
    fused_away: set[str] = set()
    for node_id in order:
        if node_id not in kept or node_id in in_unit:
            continue
        node = graph.nodes[node_id]
        if not fuse or not node.translated:
            schedule.units.append(_singleton(node))
            in_unit.add(node_id)
            continue
        chain = [node_id]
        bridges: list[str] = []
        while True:
            bridge = _fusable_link(
                graph, chain[-1], kept, in_unit | set(chain), required_vars
            )
            if bridge is None:
                break
            kind, next_id, var = bridge
            bridges.append(kind)
            chain.append(next_id)
            if kind == "map":
                fused_away.add(var)
            schedule.decisions.append(
                f"{chain[-2]} -> {next_id}: "
                + (
                    f"map→map fused on {var!r} (intermediate never materialized)"
                    if kind == "map"
                    else f"stage-fused on {var!r} (partitioned handoff, no re-scan)"
                )
            )
        # Implementation pinning only applies to fused chains; a
        # single-node unit keeps its runtime monitor, which samples the
        # input per run and picks freely.
        impls = (
            tuple(_choose_impl(graph.nodes[n], schedule) for n in chain)
            if len(chain) > 1
            else (0,)
        )
        unit = FusedChain(
            node_ids=tuple(chain), bridges=tuple(bridges), impl_indexes=impls
        )
        if unit.fused:
            _note_combiner_hoist(graph, unit, schedule)
        schedule.units.append(unit)
        in_unit.update(chain)
    schedule.fused_away = frozenset(fused_away)
    return schedule


# ----------------------------------------------------------------------


def _singleton(node: JobNode) -> FusedChain:
    return FusedChain(node_ids=(node.id,), impl_indexes=(0,))


def _eliminate_dead(
    graph: JobGraph,
    order: list[str],
    required_vars: Optional[set[str]],
    schedule: GraphSchedule,
) -> set[str]:
    """Backward-prune nodes that cannot reach a required output."""
    if required_vars is None:
        return set(order)
    needed_vars = set(required_vars)
    kept: set[str] = set()
    for node_id in reversed(order):
        node = graph.nodes[node_id]
        feeds_kept = any(e.consumer in kept for e in graph.consumers_of(node_id))
        produces_required = bool(set(node.output_vars) & needed_vars)
        if feeds_kept or produces_required:
            kept.add(node_id)
        else:
            schedule.eliminated[node_id] = (
                "dead stage: outputs "
                f"{sorted(node.output_vars)} are not consumed and not required"
            )
            schedule.decisions.append(
                f"{node_id}: eliminated ({schedule.eliminated[node_id]})"
            )
    return kept


def _fusable_link(
    graph: JobGraph,
    producer_id: str,
    kept: set[str],
    placed: set[str],
    required_vars: Optional[set[str]] = None,
) -> Optional[tuple[str, str, str]]:
    """``(bridge_kind, consumer_id, var)`` when the chain may extend."""
    producer = graph.nodes[producer_id]
    if producer.analysis is None or not producer.translated:
        return None
    if len(producer.output_vars) != 1:
        return None
    var = producer.output_vars[0]
    out_edges = graph.consumers_of(producer_id)
    if len(out_edges) != 1:
        return None
    edge = out_edges[0]
    if edge.var != var or edge.kind != "dataset":
        return None
    if edge.consumer not in kept or edge.consumer in placed:
        return None
    consumer = graph.nodes[edge.consumer]
    if not consumer.translated or consumer.analysis is None:
        return None
    if list(consumer.analysis.view.sources) != [var]:
        return None
    # The consumer's prelude runs at chain-assembly time, before the
    # intermediate exists; a prelude that reads it (e.g. ``double n =
    # kept.size();``) forces the unfused handoff.
    if any(
        var in stmt_uses(stmt)
        for stmt in consumer.analysis.fragment.prelude
    ):
        return None
    summary = producer.program.programs[_static_impl_index(producer)].summary
    if any(isinstance(s, JoinStage) for s in summary.pipeline.stages):
        # Join pipelines need their relation inputs at execution time
        # (broadcast indexes / tagged unions), which a spliced chain's
        # step list cannot provide — they always run as their own unit.
        return None
    bindings = summary.outputs
    map_only = all(isinstance(s, MapStage) for s in summary.pipeline.stages)
    bag_handoff = (
        len(bindings) == 1
        and bindings[0].kind == "whole"
        and bindings[0].container == "bag"
    )
    observable = var in graph.final_vars or (
        required_vars is not None and var in required_vars
    )
    if (
        map_only
        and bag_handoff
        and consumer.analysis.view.kind == "foreach"
        and not observable
    ):
        return ("map", edge.consumer, var)
    return ("barrier", edge.consumer, var)


def _static_impl_index(node: JobNode) -> int:
    """Statically pick the implementation for a chained node.

    The runtime monitor samples the input to choose between
    statically-incomparable implementations; a fused chain is assembled
    before its intermediate data exists, so we fall back to the §5.2
    static ranking: lowest worst-case per-record cost wins.
    """
    program = node.program
    if program is None or len(program.programs) <= 1:
        return 0
    best_index = 0
    best_upper = None
    for index, generated in enumerate(program.programs):
        cost = program.cost_model.summary_cost(
            generated.summary,
            commutative_associative=(
                generated.proof.is_commutative and generated.proof.is_associative
            ),
        )
        upper = cost.bounds()[1]
        if best_upper is None or upper < best_upper:
            best_upper = upper
            best_index = index
    return best_index


def _choose_impl(node: JobNode, schedule: GraphSchedule) -> int:
    index = _static_impl_index(node)
    if index != 0:
        schedule.decisions.append(
            f"{node.id}: fused chain pinned impl_{index} "
            "(lowest static worst-case cost)"
        )
    return index


def _note_combiner_hoist(
    graph: JobGraph, unit: FusedChain, schedule: GraphSchedule
) -> None:
    """Record combiner hoisting across map-fused boundaries."""
    for link, bridge in enumerate(unit.bridges):
        if bridge != "map":
            continue
        consumer = graph.nodes[unit.node_ids[link + 1]]
        program = consumer.program.programs[unit.impl_indexes[link + 1]]
        combiner_safe = program.proof.is_commutative and program.proof.is_associative
        has_reduce = any(
            isinstance(s, ReduceStage) for s in program.summary.pipeline.stages
        )
        if has_reduce and combiner_safe:
            schedule.decisions.append(
                f"{consumer.id}: combiner hoisted across fused boundary "
                f"(map-side combine now covers {unit.node_ids[link]}'s records)"
            )

"""Whole-program DAG execution: waves, fused chains, shared intermediates.

This is the runtime half of the job-graph layer.  Given a
:class:`~repro.graph.jobgraph.JobGraph` and the program's inputs, the
executor

1. asks the fusion optimizer for the unit schedule (chains + singletons,
   dead stages dropped),
2. asks the DAG planner for dependency waves and a concurrency width,
3. runs each wave — independent branches concurrently on worker
   threads — caching dataset-view materializations shared between
   branches (TPC-H Q1's two aggregates scan ``lineitem`` once, not
   twice),
4. executes fused chains as *one* engine invocation: the producer's
   partitioned intermediate is handed to the consumer through a bridge
   step instead of being rebuilt into source variables and re-scanned.

Results are exactly the reference semantics: :func:`interpret_reference`
runs the same graph through the sequential mini-Java interpreter, and
the property tests assert fused-DAG == per-fragment == interpreter on
every workload suite.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from threading import Lock
from typing import Any, Optional

from ..codegen.base import (
    BagValueBridge,
    StitchBridge,
    bind_outputs,
    prepare_globals,
    resolve_kernel,
    resolve_layout,
    view_records,
)
from ..engine.multiprocess import BridgeStep, MapStep, MultiprocessEngine
from ..errors import GraphError
from ..planner.dag import DagPlanner, GraphPlanReport
from ..planner.plan import BACKENDS, PlanReport
from ..planner.planner import ExecutionPlanner, PlannerConfig
from .fuse import FusedChain, GraphSchedule, optimize_graph
from .jobgraph import JobGraph, JobNode


@dataclass
class GraphRunResult:
    """Everything one ``run_program`` execution produced."""

    outputs: dict[str, Any]
    report: GraphPlanReport
    schedule: GraphSchedule
    graph: JobGraph

    @property
    def simulated_seconds(self) -> float:
        return self.report.simulated_seconds

    @property
    def wall_seconds(self) -> float:
        return self.report.wall_seconds


@dataclass
class _UnitOutcome:
    """What one executed unit reports back to the wave driver."""

    unit: FusedChain
    outputs: dict[str, Any] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    report: Optional[PlanReport] = None
    interpreted_nodes: list[str] = field(default_factory=list)


class _RecordsCache:
    """Shared dataset-view materializations, one per (kind, sources).

    Two fragments iterating the same input dataset (independent
    branches of the DAG) materialize the record list once.  Entries are
    invalidated when a producer redefines one of their source
    variables.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, list] = {}
        self._key_locks: dict[tuple, Lock] = {}
        self._lock = Lock()
        self.hits = 0

    def get(self, view, env: dict[str, Any]) -> list:
        # Records depend only on the view kind and source values — the
        # index/element variable *names* only matter when binding a
        # record into a λm environment, so two loops spelling their
        # counters differently still share one materialization.  Each
        # key materializes under its own lock: branches racing on the
        # *same* dataset serialize (the second gets a cache hit), while
        # branches scanning different datasets proceed in parallel.
        key = (view.kind, tuple(view.sources))
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
            key_lock = self._key_locks.setdefault(key, Lock())
        with key_lock:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    return self._entries[key]
            records = view_records(view, env)
            with self._lock:
                self._entries[key] = records
            return records

    def invalidate(self, names: set[str]) -> None:
        with self._lock:
            for key in [k for k in self._entries if set(k[1]) & names]:
                del self._entries[key]
                self._key_locks.pop(key, None)


def run_graph(
    graph: JobGraph,
    inputs: dict[str, Any],
    plan: Optional[str] = None,
    outputs: Optional[list[str]] = None,
    fuse: bool = True,
    max_workers: Optional[int] = None,
    strict: bool = True,
    planner_config: Optional[PlannerConfig] = None,
    memory_budget: Optional[int] = None,
    kernel: Optional[str] = None,
    layout: Optional[str] = None,
    feedback: Optional[bool] = None,
) -> GraphRunResult:
    """Execute a whole-program job graph over concrete inputs.

    ``plan`` follows ``run_translated``: ``None`` keeps each fragment's
    compiled backend (fused chains run on the real local engine, where
    stitching exists), ``"auto"`` lets the execution planner decide per
    unit, and a backend name forces it.  ``outputs`` names the variables
    the caller needs — enabling dead-stage elimination of everything
    that cannot reach them.  ``strict=False`` lets analyzed-but-
    untranslated fragments fall back to the reference interpreter
    (recorded in the report) instead of failing the run.

    ``memory_budget`` (bytes) engages memory-aware planning per unit:
    inputs whose size estimate exceeds the budget (and streaming
    ``Dataset`` inputs of unknown length) run out of core — chunked
    scans, spill-to-disk shuffle, per-partition merge-reduce — with
    stage handoffs inside fused chains streamed the same way.  Since the
    budget only binds on the real local engines, a budget with
    ``plan=None`` implies ``plan="auto"``.

    ``kernel`` (``"eval"`` | ``"compiled"`` | ``"auto"``) picks the
    codegen target for every unit that executes on a real local
    engine — including every stage of a fused chain; ``None`` defers
    to each unit's plan (the planner prices the choice under
    ``plan="auto"``).

    ``layout`` (``"rows"`` | ``"columns"`` | ``"auto"``) picks the chunk
    layout under those kernels the same way — chain-wide for fused
    chains, since one engine invocation runs the spliced pipeline.

    ``feedback`` engages observation-resolved planning per single-
    fragment unit (see :meth:`AdaptiveProgram.run`); fused chains plan
    from their own spliced estimates and ignore it.  ``True`` with no
    plan implies ``plan="auto"``.
    """
    started = time.perf_counter()
    if plan is None and (memory_budget is not None or feedback):
        plan = "auto"
    if plan is not None and plan != "auto" and plan not in BACKENDS:
        # Same contract as forced_plan: a typo must fail loudly, not
        # silently degrade a fused chain to sequential.
        raise ValueError(
            f"unknown backend {plan!r}; expected one of {BACKENDS} or 'auto'"
        )
    required = set(outputs) if outputs is not None else None
    schedule = optimize_graph(graph, required_vars=required, fuse=fuse)
    kept_ids = {n for unit in schedule.units for n in unit.node_ids}
    _check_runnable(graph, schedule, kept_ids, strict)

    dag_planner = DagPlanner(config=planner_config or PlannerConfig())
    dag_plan = dag_planner.plan(
        graph,
        schedule,
        max_workers=max_workers,
        pooled_units=plan in ("auto", "multiprocess"),
    )

    report = GraphPlanReport(
        plan=dag_plan,
        decisions=list(schedule.decisions),
        fused_away=sorted(schedule.fused_away),
        eliminated=dict(schedule.eliminated),
    )
    env = dict(inputs)
    produced: dict[str, Any] = {}
    cache = _RecordsCache()

    for wave in dag_plan.waves:
        units = [schedule.units[index] for index in wave]
        if len(units) > 1 and dag_plan.concurrency > 1:
            workers = min(dag_plan.concurrency, len(units))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(
                    pool.map(
                        lambda unit: _run_unit(
                            graph,
                            unit,
                            env,
                            plan,
                            cache,
                            planner_config,
                            memory_budget,
                            kernel,
                            layout,
                            feedback,
                        ),
                        units,
                    )
                )
        else:
            outcomes = [
                _run_unit(
                    graph,
                    unit,
                    env,
                    plan,
                    cache,
                    planner_config,
                    memory_budget,
                    kernel,
                    layout,
                    feedback,
                )
                for unit in units
            ]
        # Merge in unit order (= source order): a redefinition behaves
        # exactly as sequential execution would.
        wave_simulated = 0.0
        for outcome in outcomes:
            env.update(outcome.outputs)
            produced.update(outcome.outputs)
            cache.invalidate(set(outcome.outputs))
            report.interpreted_nodes.extend(outcome.interpreted_nodes)
            if outcome.report is not None:
                report.unit_reports[outcome.unit.head] = outcome.report
            report.simulated_seconds_serial += outcome.simulated_seconds
            wave_simulated = max(wave_simulated, outcome.simulated_seconds)
        report.simulated_seconds += wave_simulated

    report.records_cache_hits = cache.hits
    report.wall_seconds = time.perf_counter() - started

    if outputs is not None:
        missing = [name for name in outputs if name not in produced]
        if missing:
            raise GraphError(
                f"requested output(s) {missing} were not produced by "
                f"{graph.function!r}; available: {sorted(produced)}"
            )
        produced = {name: produced[name] for name in outputs}
    return GraphRunResult(
        outputs=produced, report=report, schedule=schedule, graph=graph
    )


def interpret_fragment(analysis, env: dict[str, Any]) -> dict[str, Any]:
    """One fragment's reference semantics: interpret it over ``env``.

    The single definition of how a fragment's inputs are filtered out of
    an accumulated environment and run through the sequential
    interpreter — shared by the whole-program reference below, the
    executor's ``strict=False`` fallback, and the per-fragment baselines
    in the identity tests, so the three can never silently diverge.
    """
    from ..verification.bounded import ProgramState, run_sequential_fragment

    state = ProgramState(
        {name: env[name] for name in analysis.input_vars if name in env}
    )
    return run_sequential_fragment(analysis, state).outputs


def interpret_reference(graph: JobGraph, inputs: dict[str, Any]) -> dict[str, Any]:
    """Reference semantics: run every fragment with the interpreter.

    Fragments execute in source order with outputs chained forward —
    the behaviour ``run_program`` must reproduce exactly.  Fragments
    whose analysis failed are skipped (they have no computable
    semantics at this layer), matching the executor.
    """
    env = dict(inputs)
    produced: dict[str, Any] = {}
    for node in sorted(graph.nodes.values(), key=lambda n: n.index):
        if node.analysis is None:
            continue
        outputs = interpret_fragment(node.analysis, env)
        env.update(outputs)
        produced.update(outputs)
    return produced


# ----------------------------------------------------------------------
# Unit execution


def _check_runnable(
    graph: JobGraph, schedule: GraphSchedule, kept_ids: set[str], strict: bool
) -> None:
    """Fail fast (and informatively) on untranslated kept nodes."""
    broken: list[str] = []
    for node_id in sorted(kept_ids):
        node = graph.nodes[node_id]
        if node.translated:
            continue
        if node.analysis is None:
            # No semantics to interpret from.  Strict mode fails loudly
            # (the fragment's region may declare state later fragments
            # assume, and skipping it would surface as an opaque prelude
            # error downstream); non-strict drops it like the
            # per-fragment runner does, and says so.
            if strict:
                broken.append(
                    f"{node_id}: {node.failure_reason or 'analysis failed'}"
                )
                continue
            schedule.eliminated[node_id] = (
                f"skipped: analysis failed "
                f"({node.failure_reason or 'unknown reason'})"
            )
            schedule.units = [
                unit for unit in schedule.units if node_id not in unit.node_ids
            ]
            continue
        if strict:
            consumers = [e.consumer for e in graph.consumers_of(node_id)]
            suffix = f" (consumed by {', '.join(consumers)})" if consumers else ""
            broken.append(
                f"{node_id}: {node.failure_reason or 'not translated'}{suffix}"
            )
    if broken:
        raise GraphError(
            f"cannot execute job graph for {graph.function!r} strictly — "
            "untranslated fragment(s): "
            + "; ".join(broken)
            + ". Pass strict=False to run them on the reference interpreter."
        )


def _run_unit(
    graph: JobGraph,
    unit: FusedChain,
    env: dict[str, Any],
    plan: Optional[str],
    cache: _RecordsCache,
    planner_config: Optional[PlannerConfig],
    memory_budget: Optional[int] = None,
    kernel: Optional[str] = None,
    layout: Optional[str] = None,
    feedback: Optional[bool] = None,
) -> _UnitOutcome:
    outcome = _UnitOutcome(unit=unit)
    node = graph.nodes[unit.head]
    started = time.perf_counter()
    if unit.fused:
        _run_chain(
            graph,
            unit,
            env,
            plan,
            cache,
            outcome,
            planner_config,
            memory_budget,
            kernel,
            layout,
        )
    elif node.translated:
        _run_single(
            node,
            unit,
            env,
            plan,
            cache,
            outcome,
            memory_budget,
            kernel,
            layout,
            feedback,
        )
    else:
        _run_interpreted(node, env, outcome)
    outcome.wall_seconds = time.perf_counter() - started
    return outcome


def _run_single(
    node: JobNode,
    unit: FusedChain,
    env: dict[str, Any],
    plan: Optional[str],
    cache: _RecordsCache,
    outcome: _UnitOutcome,
    memory_budget: Optional[int] = None,
    kernel: Optional[str] = None,
    layout: Optional[str] = None,
    feedback: Optional[bool] = None,
) -> None:
    program = node.program
    records = cache.get(node.analysis.view, env)
    outcome.outputs = program.run(
        env,
        plan=plan,
        records=records,
        memory_budget=memory_budget,
        kernel=kernel,
        layout=layout,
        feedback=feedback,
    )
    if plan is not None and program.last_plan_report is not None:
        outcome.report = program.last_plan_report
    metrics = program.last_metrics
    if metrics is not None:
        outcome.simulated_seconds = metrics.simulated_seconds


def _run_interpreted(
    node: JobNode, env: dict[str, Any], outcome: _UnitOutcome
) -> None:
    outcome.outputs = interpret_fragment(node.analysis, env)
    outcome.interpreted_nodes.append(node.id)


def _run_chain(
    graph: JobGraph,
    unit: FusedChain,
    env: dict[str, Any],
    plan: Optional[str],
    cache: _RecordsCache,
    outcome: _UnitOutcome,
    planner_config: Optional[PlannerConfig],
    memory_budget: Optional[int] = None,
    kernel: Optional[str] = None,
    layout: Optional[str] = None,
) -> None:
    """Execute a fused chain as one engine invocation.

    The chain's stages are spliced into a single step list — producer
    stages, a bridge per link, consumer stages — so the intermediate
    dataset flows through partitioned memory instead of the §6.3
    rebuild-and-rescan glue.  Simulated accounting reflects that: one
    scan, one job startup, driver-collect-priced bridges.  Under a
    memory budget the whole spliced pipeline streams: chunked scan,
    spilled shuffles, and bridge handoffs re-chunked into the next
    stage instead of re-materialized record lists.
    """
    head = graph.nodes[unit.head]
    chosen = head.program.programs[unit.impl_indexes[0]]
    globals_env, output_sizes = prepare_globals(head.analysis, env)
    records = cache.get(head.analysis.view, env)
    execution_plan, report = _chain_plan(
        unit,
        head,
        chosen,
        records,
        globals_env,
        plan,
        planner_config,
        memory_budget,
        kernel,
        layout,
    )
    # The plan's per-stage combiner decisions index the head program's
    # stages, so only the head's steps honour them; downstream nodes
    # keep the proof-gated default.  The kernel and layout choices, by
    # contrast, are chain-wide: resolve them once (explicit caller >
    # head plan > default) and apply them to every node's steps.
    chain_kernel = resolve_kernel(kernel, execution_plan)
    chain_layout = resolve_layout(layout, execution_plan, kernel)
    steps = list(
        chosen.local_steps(
            globals_env, plan=execution_plan, kernel=chain_kernel
        )
    )
    bridges: list[StitchBridge] = []

    prev = (head, chosen, globals_env, output_sizes)
    for link, node_id in enumerate(unit.node_ids[1:]):
        node = graph.nodes[node_id]
        node_chosen = node.program.programs[unit.impl_indexes[link + 1]]
        node_globals, node_sizes = prepare_globals(node.analysis, env)
        if unit.bridges[link] == "map":
            steps.append(MapStep(BagValueBridge(), complexity=1))
        else:
            _prev_node, prev_chosen, prev_globals, prev_sizes = prev
            bridge = StitchBridge(
                bindings=prev_chosen.summary.outputs,
                globals_env=prev_globals,
                output_sizes=prev_sizes,
                view=node.analysis.view,
            )
            bridges.append(bridge)
            steps.append(BridgeStep(bridge))
        steps.extend(node_chosen.local_steps(node_globals, kernel=chain_kernel))
        prev = (node, node_chosen, node_globals, node_sizes)

    tail_node, tail_chosen, tail_globals, tail_sizes = prev
    processes = 0
    if execution_plan is not None and execution_plan.backend == "multiprocess":
        processes = execution_plan.processes
    config = chosen.engine_config
    if config.framework.name != "multiprocess":
        config = config.with_framework("multiprocess")
    engine = MultiprocessEngine(
        config=config,
        processes=processes,
        partitions=(
            execution_plan.partitions if execution_plan is not None else None
        ),
        memory_budget=(
            execution_plan.memory_budget if execution_plan is not None else None
        ),
        spill_dir=(
            execution_plan.spill_dir if execution_plan is not None else None
        ),
        layout=chain_layout,
    )
    result = engine.run_pipeline(records, steps)
    outputs = bind_outputs(
        tail_chosen.summary.outputs, result.pairs, tail_globals, tail_sizes
    )
    # Barrier bridges materialize their intermediates anyway; surface
    # them so downstream consumers (and callers) still see the values.
    for bridge in bridges:
        outcome.outputs.update(bridge.captured)
    outcome.outputs.update(outputs)
    outcome.simulated_seconds = result.metrics.simulated_seconds
    if report is not None:
        # Mirror the per-fragment rule (codegen/glue.py): a deliberately
        # sequential plan is not a "fallback" even though the engine
        # runs it in-process; only a planned pool that could not run is.
        if (
            execution_plan.backend == "multiprocess"
            and result.fallback_reason
        ):
            report.fallback_reason = result.fallback_reason
            report.backend_used = "sequential"
        else:
            report.backend_used = execution_plan.backend
        report.wall_seconds = result.metrics.wall_seconds
        report.spill_stats = result.spill_stats
        report.columnar = result.columnar_stats()
        outcome.report = report


def _chain_plan(
    unit: FusedChain,
    head: JobNode,
    chosen,
    records: Any,
    globals_env: dict[str, Any],
    plan: Optional[str],
    planner_config: Optional[PlannerConfig],
    memory_budget: Optional[int] = None,
    kernel: Optional[str] = None,
    layout: Optional[str] = None,
):
    """Resolve the execution plan for a fused chain.

    Fused stitching only exists on the real local engines; a forced
    simulated-cluster backend therefore degrades to sequential local
    execution with the decision recorded, rather than silently
    unfusing or failing.
    """
    if plan is None:
        return None, None
    extra_reasons: tuple[str, ...] = ()
    effective = plan
    if plan not in ("auto", "sequential", "multiprocess"):
        # A simulated cluster backend cannot execute a stitched chain.
        effective = "sequential"
        extra_reasons += (
            f"fused chains run locally; {plan!r} backend degraded to sequential",
        )
    if effective == "auto" and head.program.planner is None:
        head.program.planner = ExecutionPlanner(
            config=planner_config or PlannerConfig(),
            cost_model=head.program.cost_model,
        )
        head.program.planner.precompute(head.program.programs)
    sample = head.program.sample_elements(records)
    execution_plan, report = head.program.plan_execution(
        effective,
        chosen,
        records,
        sample,
        globals_env,
        memory_budget=memory_budget,
        kernel=kernel,
        layout=layout,
    )
    if effective == "auto":
        report.implementation = f"impl_{unit.impl_indexes[0]}"
        # The planner's calibration/estimates cover the head fragment
        # only; downstream stages of the chain are not costed, so a
        # compute-heavy consumer can make this an underestimate.
        # Recorded so the evidence trail stays honest.
        extra_reasons += (
            f"estimates cover head fragment {unit.head} only "
            f"({len(unit.node_ids) - 1} fused downstream stage(s) uncosted)",
        )
    if extra_reasons:
        execution_plan = replace(
            execution_plan, reasons=execution_plan.reasons + extra_reasons
        )
        report.plan = execution_plan
    return execution_plan, report

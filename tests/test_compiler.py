"""End-to-end tests for the CasperCompiler pipeline (Fig. 2)."""

import pytest

from repro import CasperCompiler, SearchConfig, translate
from repro.errors import AnalysisError
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.lang.values import values_equal
from tests.conftest import Q6_SOURCE, RWM_SOURCE, SUM_SOURCE, WORDCOUNT_SOURCE


class TestTranslatePipeline:
    def test_sum_end_to_end(self):
        result = translate(SUM_SOURCE)
        assert result.identified == 1
        assert result.translated == 1
        frag = result.fragments[0]
        outputs = frag.program.run({"data": [10, 20, 30], "n": 3})
        assert outputs == {"total": 60}

    def test_rwm_end_to_end_matches_interpreter(self):
        result = translate(RWM_SOURCE)
        mat = [[i * j for j in range(4)] for i in range(5)]
        outputs = result.fragments[0].program.run({"mat": mat, "rows": 5, "cols": 4})
        expected = Interpreter(parse_program(RWM_SOURCE)).call_function(
            "rwm", [mat, 5, 4]
        )
        assert values_equal(outputs["m"], expected)

    def test_q6_end_to_end(self):
        from repro.workloads import datagen

        result = translate(Q6_SOURCE, "query6")
        assert result.translated == 1
        items = datagen.lineitems(500, seed=3)
        outputs = result.fragments[0].program.run({"lineitem": items})
        expected = Interpreter(parse_program(Q6_SOURCE)).call_function(
            "query6", [items]
        )
        assert values_equal(outputs["revenue"], expected)

    def test_wordcount_end_to_end(self):
        result = translate(WORDCOUNT_SOURCE)
        outputs = result.fragments[0].program.run({"words": ["x", "y", "x"]})
        assert outputs == {"counts": {"x": 2, "y": 1}}

    def test_rendered_code_available(self):
        result = translate(SUM_SOURCE)
        code = result.fragments[0].rendered_code("spark")
        assert "reduceByKey" in code

    def test_untranslated_fragment_reports_reason(self):
        source = """
        double[] blur(double[] img, int n) {
          double[] out = new double[n];
          double prev = 0;
          for (int i = 0; i < n; i++) {
            prev = 0.5 * prev + 0.5 * img[i];
            out[i] = prev;
          }
          return out;
        }
        """
        result = translate(source, search_config=SearchConfig(timeout_seconds=30))
        assert result.translated == 0
        assert result.fragments[0].failure_reason is not None

    def test_multiple_functions_require_name(self):
        source = "int f() { return 1; } int g() { return 2; }"
        with pytest.raises(AnalysisError):
            translate(source)

    def test_compiler_records_time_and_failures(self):
        compiler = CasperCompiler()
        result = compiler.translate_source(SUM_SOURCE)
        assert result.elapsed_seconds > 0
        assert result.tp_failures >= 0

    def test_backend_selection(self):
        result = translate(SUM_SOURCE, backend="flink")
        outputs = result.fragments[0].program.run({"data": [1, 1, 1], "n": 3})
        assert outputs == {"total": 3}


class TestAliasingGuard:
    def test_distinct_array_arguments_fine(self):
        # The paper wraps translated code in a runtime alias check; our
        # zipped-view execution is correct when inputs are distinct arrays.
        source = """
        double dot(double[] x, double[] y, int n) {
          double s = 0;
          for (int i = 0; i < n; i++) s += x[i] * y[i];
          return s;
        }
        """
        result = translate(source)
        outputs = result.fragments[0].program.run(
            {"x": [1.0, 2.0], "y": [3.0, 4.0], "n": 2}
        )
        assert outputs == {"s": 11.0}

"""Property-based tests of the whole pipeline on generated programs.

The strongest invariant this library offers: for any program in the
supported fragment, a verified translation computes exactly what the
sequential interpreter computes.  These tests *generate* small reduction
programs from templates, push them through the full pipeline, and check
that invariant — plus structural properties of the engine substrate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SearchConfig, translate
from repro.engine import partition_data, sizeof
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.lang.values import values_equal

# ----------------------------------------------------------------------
# Generated reduction programs

_TEMPLATE = """
double f(double[] data, int n) {{
  double acc = {init};
  for (int i = 0; i < n; i++) {{
    {body}
  }}
  return acc;
}}
"""

_BODIES = {
    "sum": ("0", "acc += data[i];"),
    "sum_scaled": ("0", "acc += data[i] * 2.0;"),
    "sum_shifted": ("0", "acc += data[i] + 1.0;"),
    "sum_squares": ("0", "acc += data[i] * data[i];"),
    "max": ("-1.0e308", "acc = Math.max(acc, data[i]);"),
    "min": ("1.0e308", "acc = Math.min(acc, data[i]);"),
    "abs_sum": ("0", "acc += Math.abs(data[i]);"),
    "guarded_sum": ("0", "if (data[i] > 0.5) acc += data[i];"),
    "guarded_count": ("0", "if (data[i] < 0.0) acc += 1.0;"),
}

_COMPILED: dict[str, object] = {}


def _compiled(kind: str):
    if kind not in _COMPILED:
        init, body = _BODIES[kind]
        source = _TEMPLATE.format(init=init, body=body)
        result = translate(source, search_config=SearchConfig(timeout_seconds=60))
        assert result.translated == 1, f"{kind} must translate"
        _COMPILED[kind] = (source, result.fragments[0])
    return _COMPILED[kind]


@pytest.mark.parametrize("kind", sorted(_BODIES))
def test_reduction_template_translates_and_proves(kind):
    _source, fragment = _compiled(kind)
    proof = fragment.program.programs[0].proof
    assert proof.status in ("proved", "unknown")
    # Every reduction over doubles here is commutative-associative.
    assert proof.is_commutative and proof.is_associative


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(sorted(_BODIES)),
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        max_size=30,
    ),
)
def test_translation_agrees_with_interpreter(kind, data):
    source, fragment = _compiled(kind)
    outputs = fragment.program.run({"data": list(data), "n": len(data)})
    expected = Interpreter(parse_program(source)).call_function(
        "f", [list(data), len(data)]
    )
    assert values_equal(outputs["acc"], expected), (kind, data)


@settings(max_examples=8, deadline=None)
@given(
    kind=st.sampled_from(["sum", "max", "guarded_sum"]),
    data=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), max_size=20
    ),
    backend=st.sampled_from(["spark", "hadoop", "flink"]),
)
def test_backends_agree_on_generated_programs(kind, data, backend):
    source, fragment = _compiled(kind)
    generated = fragment.program.programs[0]
    original_backend = generated.backend
    try:
        generated.backend = backend
        outcome = generated.run({"data": list(data), "n": len(data)})
    finally:
        generated.backend = original_backend
    expected = Interpreter(parse_program(source)).call_function(
        "f", [list(data), len(data)]
    )
    assert values_equal(outcome.outputs["acc"], expected)


# ----------------------------------------------------------------------
# Engine substrate properties


@given(
    st.lists(st.integers(), max_size=200),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_partitioning_preserves_records(data, partitions):
    parts = partition_data(list(data), partitions)
    flattened = [record for part in parts for record in part]
    assert flattened == data


@given(
    st.recursive(
        st.one_of(
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
            st.floats(allow_nan=False, allow_infinity=False),
            st.booleans(),
            st.text(max_size=10),
        ),
        lambda inner: st.tuples(inner, inner),
        max_leaves=6,
    )
)
@settings(max_examples=100, deadline=None)
def test_sizeof_is_positive_and_deterministic(value):
    assert sizeof(value) > 0
    assert sizeof(value) == sizeof(value)


@given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_engine_wordcount_matches_python_counter(words):
    from collections import Counter

    from repro.engine import EngineConfig, SimSparkContext

    context = SimSparkContext(EngineConfig())
    counts = (
        context.parallelize(list(words))
        .map_to_pair(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect_as_map()
    )
    assert counts == dict(Counter(words))


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=100)
)
@settings(max_examples=40, deadline=None)
def test_combiner_plan_equals_noncombiner_plan(data):
    """Combiners must never change results, only data movement."""
    from repro.engine import EngineConfig, SimSparkContext

    def run(use_combiner):
        context = SimSparkContext(EngineConfig())
        pairs = context.parallelize(list(data)).map_to_pair(lambda x: (x % 7, x))
        if use_combiner:
            reduced = pairs.reduce_by_key(lambda a, b: a + b)
        else:
            reduced = pairs.group_by_key().map_values(lambda vs: sum(vs))
        return reduced.collect_as_map()

    assert run(True) == run(False)


@given(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_interpreter_is_deterministic(n, cols):
    source = """
    int f(int[][] m, int rows, int cols) {
      int s = 0;
      for (int i = 0; i < rows; i++)
        for (int j = 0; j < cols; j++)
          s += m[i][j] * (i + 1) - j;
      return s;
    }
    """
    program = parse_program(source)
    matrix = [[(i * cols + j) % 13 for j in range(cols)] for i in range(n)]
    first = Interpreter(program).call_function("f", [matrix, n, cols])
    second = Interpreter(program).call_function("f", [matrix, n, cols])
    assert first == second

"""Columnar chunk layout: exactness guards, caching, shuffle, and knobs.

Unit tests for :mod:`repro.engine.columnar` and the machinery around it:
column extraction only materializes arrays the type promise licenses,
guard trips (int64 overflow, NaN/inf, mixed types) fall back to the
compiled row loop with byte-identical results, the grouped array fold
matches the ordered dict combine exactly, spilled column blocks expand
to the same pair stream the row writer produces, the zero-copy
shared-memory payload round-trips, and the ``layout`` knob validates and
threads end to end.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.codegen.base import (
    prepare_globals,
    resolve_layout,
    view_records,
)
from repro.codegen.kernels import CompiledRecordMapper
from repro.engine import shm
from repro.engine.columnar import (
    Chunk,
    ColumnBlock,
    ColumnChunk,
    ColumnSpec,
    build_chunk,
    build_column,
    grouped_fold,
    resolve_columns,
)
from repro.engine.multiprocess import MultiprocessEngine
from repro.engine.sizes import OBJECT_HEADER, sizeof, sizeof_pair
from repro.engine.spill import SpillWriter, read_run
from repro.errors import CodegenError, EngineError
from repro.graph.executor import interpret_fragment
from repro.options import ExecOptions
from repro.planner.plan import forced_plan
from repro.workloads import get_benchmark
from repro.workloads.runner import compile_benchmark

RUN_SIZE = 200

_COMPILED: dict[str, object] = {}


def compiled(name: str):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(get_benchmark(name))
    return _COMPILED[name]


def _mapper(name: str):
    compilation = compiled(name)
    fragment = [f for f in compilation.fragments if f.translated][0]
    program = fragment.program.programs[0]
    inputs = get_benchmark(name).make_inputs(RUN_SIZE, 7)
    globals_env, _sizes = prepare_globals(fragment.analysis, inputs)
    stage = program.summary.pipeline.stages[0]
    records = view_records(fragment.analysis.view, inputs)
    mapper = CompiledRecordMapper(
        emits=stage.lam.emits,
        globals_env=globals_env,
        view=program.analysis.view,
    )
    return mapper, records


def _engine(name: str, layout: str) -> MultiprocessEngine:
    compilation = compiled(name)
    fragment = [f for f in compilation.fragments if f.translated][0]
    config = fragment.program.programs[0].engine_config.with_framework(
        "multiprocess"
    )
    return MultiprocessEngine(config=config, processes=0, layout=layout)


def _steps(name: str, inputs):
    compilation = compiled(name)
    fragment = [f for f in compilation.fragments if f.translated][0]
    program = fragment.program.programs[0]
    globals_env, _sizes = prepare_globals(fragment.analysis, inputs)
    return program.local_steps(globals_env, kernel="compiled")


def _pairs_equal(lhs: list, rhs: list) -> bool:
    """Exact pair-list equality, except NaN compares equal to NaN.

    ``==`` is the right assertion everywhere else (bit-identity is the
    contract), but two row-loop runs produce distinct NaN objects and
    ``nan != nan`` would fail a comparison that is in fact identical.
    """
    if len(lhs) != len(rhs):
        return False
    for (lk, lv), (rk, rv) in zip(lhs, rhs):
        for a, b in ((lk, rk), (lv, rv)):
            same_nan = (
                type(a) is float
                and type(b) is float
                and math.isnan(a)
                and math.isnan(b)
            )
            if not same_nan and (type(a) is not type(b) or a != b):
                return False
    return True


# ----------------------------------------------------------------------
# Column extraction: the exact-type promise


INT_SPEC = ColumnSpec(name="v", kind="int", access="self")


def test_build_column_exact_types_only():
    assert build_column([1, 2, 3], INT_SPEC).dtype == np.int64
    # bool is a subclass of int but a different runtime type: eval
    # emits True where int64 would emit 1.
    assert build_column([1, True, 3], INT_SPEC) is None
    assert build_column([1, 2.0, 3], INT_SPEC) is None
    float_spec = ColumnSpec(name="v", kind="float", access="self")
    assert build_column([1.0, 2, 3.0], float_spec) is None
    assert build_column([1.0, 2.5], float_spec).dtype == np.float64


def test_build_column_refuses_out_of_int64_values():
    # Python ints are bignums; the row loop keeps them exact, int64
    # would wrap.  The column must refuse, not truncate.
    assert build_column([1, 2**70], INT_SPEC) is None
    assert build_column([2**63 - 1, -(2**63)], INT_SPEC) is not None


def test_chunk_caches_extracted_columns():
    chunk = Chunk([1, 2, 3])
    first = resolve_columns(chunk, (INT_SPEC,))
    second = resolve_columns(chunk, (INT_SPEC,))
    assert first["v"] is second["v"], "second resolve must reuse the array"
    assert "v" in chunk.columns
    # A failed column is cached too, so repeated kernels skip the probe.
    dirty = Chunk([1, "oops"])
    assert resolve_columns(dirty, (INT_SPEC,)) is None
    assert dirty.columns["v"] is None
    # The cache survives pickling (workers skip re-extraction).
    clone = pickle.loads(pickle.dumps(chunk))
    assert isinstance(clone, Chunk) and "v" in clone.columns


def test_column_chunk_iterates_as_rows():
    rows = [(0, 10), (1, 20)]
    spec = ColumnSpec(name="x", kind="int", access="index", position=1)
    chunk = build_chunk(rows, (spec,))
    assert len(chunk) == 2 and list(chunk) == rows and chunk[1] == (1, 20)
    assert chunk.columns["x"].tolist() == [10, 20]
    clone = pickle.loads(pickle.dumps(chunk))
    assert isinstance(clone, ColumnChunk)
    assert clone.columns["x"].tolist() == [10, 20]


# ----------------------------------------------------------------------
# ColumnBlock: pair reconstruction and byte accounting


def test_column_block_pairs_and_sizes_match_row_accounting():
    block = ColumnBlock(
        values=np.asarray([1.5, 2.5, 3.5]),
        keys=np.asarray([7, 2**40, 7], dtype=np.int64),
    )
    pairs = block.pairs()
    assert pairs == [(7, 1.5), (2**40, 2.5), (7, 3.5)]
    assert all(type(k) is int and type(v) is float for k, v in pairs)
    assert block.pair_sizes() == [sizeof_pair(k, v) for k, v in pairs]
    assert block.stage_bytes() == sum(sizeof(p) for p in pairs)
    const = ColumnBlock(values=np.asarray([1, 2], dtype=np.int64), key_const=0)
    assert const.pairs() == [(0, 1), (0, 2)]
    assert const.key_list() == [0, 0]


# ----------------------------------------------------------------------
# grouped_fold == the ordered dict combine, bit for bit


def _dict_fold(pairs, op):
    fns = {"sum": lambda a, b: a + b, "min": min, "max": max}[op]
    grouped: dict = {}
    for key, value in pairs:
        grouped[key] = fns(grouped[key], value) if key in grouped else value
    return list(grouped.items())


@pytest.mark.parametrize("op", ["sum", "min", "max"])
def test_grouped_fold_matches_dict_combine(op):
    rng = np.random.default_rng(3)
    keys = np.asarray(rng.integers(0, 5, size=200), dtype=np.int64)
    values = np.asarray(rng.integers(-1000, 1000, size=200), dtype=np.int64)
    block = ColumnBlock(values=values, keys=keys)
    folded = grouped_fold(block, op)
    assert folded == _dict_fold(block.pairs(), op)

    fblock = ColumnBlock(values=rng.standard_normal(200), keys=keys)
    ffolded = grouped_fold(fblock, op)
    assert ffolded == _dict_fold(fblock.pairs(), op)


def test_grouped_fold_constant_key_and_empty():
    values = np.asarray([0.1, 0.2, 0.3, 0.4])
    block = ColumnBlock(values=values, key_const=0)
    assert grouped_fold(block, "sum") == _dict_fold(block.pairs(), "sum")
    empty = ColumnBlock(values=np.asarray([], dtype=np.int64), key_const=0)
    assert grouped_fold(empty, "sum") == []


def test_grouped_fold_refuses_hazardous_shapes():
    v = np.asarray([1.0, 2.0])
    # NaN keys group by identity in dicts; -0.0 == 0.0 picks a face.
    assert grouped_fold(ColumnBlock(values=v, keys=np.asarray([np.nan, 1.0])), "sum") is None
    assert grouped_fold(ColumnBlock(values=v, keys=np.asarray([-0.0, 1.0])), "sum") is None
    # NaN values: np.minimum propagates, Python min() is order-dependent.
    assert grouped_fold(
        ColumnBlock(values=np.asarray([np.nan, 1.0]), keys=np.asarray([1, 1], dtype=np.int64)),
        "min",
    ) is None
    # An int sum whose partial could wrap int64 must refuse.
    big = ColumnBlock(
        values=np.asarray([2**62, 2**62, 2**62], dtype=np.int64),
        keys=np.asarray([1, 1, 1], dtype=np.int64),
    )
    assert grouped_fold(big, "sum") is None
    assert grouped_fold(big, "max") == _dict_fold(big.pairs(), "max")


# ----------------------------------------------------------------------
# Guard regressions: dirty data == row engine exactly (satellite 3)


def test_int_overflow_chunk_falls_back_to_row_loop():
    mapper, _records = _mapper("fiji_invert")  # emits 255 - img over ints
    assert mapper.vectorized
    clean = [(i, i % 256) for i in range(64)]
    assert mapper.map_block(clean) is not None
    # 255 - (-2**62) stays in int64 but the conservative bound guard
    # still must not wrap anywhere; push values where 255 - v overflows.
    hot = [(i, -(2**63) + 1) for i in range(4)]
    rows = mapper.map_rows(hot)
    assert mapper.map_block(hot) is None and mapper.last_chunk_fallback
    assert mapper.map_chunk(hot) == rows
    # Out-of-int64 bignums never reach the array: the column refuses.
    bignum = [(0, 2**70)]
    assert mapper.map_block(bignum) is None
    assert mapper.map_chunk(bignum) == mapper.map_rows(bignum)


def test_nonfinite_float_chunk_falls_back_to_row_loop():
    mapper, _records = _mapper("stats_l2_norm_sq")  # emits x*x over floats
    assert mapper.vectorized
    for poison in (float("nan"), float("inf"), 1e200):  # 1e200**2 == inf
        hot = [(i, v) for i, v in enumerate([1.0, poison, 2.0])]
        assert mapper.map_block(hot) is None and mapper.last_chunk_fallback
        assert _pairs_equal(mapper.map_chunk(hot), mapper.map_rows(hot))


def test_mixed_type_column_falls_back_to_row_loop():
    mapper, records = _mapper("ariths_sum")
    dirty = list(records) + [(len(records), 1.5)]  # float in an int column
    assert mapper.map_block(dirty) is None
    assert mapper.map_chunk(dirty) == mapper.map_rows(dirty)


@pytest.mark.parametrize(
    "poison",
    [2**70, -(2**63) + 7, float("nan"), float("inf"), "oops"],
    ids=["bignum", "near-int64-min", "nan", "inf", "string-in-int"],
)
def test_dirty_data_identical_across_layouts_in_engine(poison):
    name = "ariths_sum"
    records = [(i, v) for i, v in enumerate([3, -2, poison, 5, 0])]
    inputs = get_benchmark(name).make_inputs(RUN_SIZE, 7)
    try:
        rows_result = _engine(name, "rows").run_pipeline(
            records, _steps(name, inputs)
        )
    except Exception as exc:
        # Whatever the row engine raises (e.g. TypeError on the string),
        # the columnar engine must raise the same class — not crash
        # differently and not "succeed" with numpy coercion.
        with pytest.raises(type(exc)):
            _engine(name, "columns").run_pipeline(records, _steps(name, inputs))
        return
    cols_result = _engine(name, "columns").run_pipeline(
        records, _steps(name, inputs)
    )
    assert _pairs_equal(rows_result.pairs, cols_result.pairs)
    assert cols_result.layout == "columns"


def test_guard_fallbacks_are_counted():
    name = "stats_l2_norm_sq"
    inputs = get_benchmark(name).make_inputs(RUN_SIZE, 7)
    records = [(i, v) for i, v in enumerate([1.0, float("nan"), 2.0])]
    result = _engine(name, "columns").run_pipeline(records, _steps(name, inputs))
    assert result.guard_fallbacks >= 1
    stats = result.columnar_stats()
    assert stats is not None and stats["layout"] == "columns"
    clean = [(i, float(i)) for i in range(50)]
    result = _engine(name, "columns").run_pipeline(clean, _steps(name, inputs))
    assert result.columnar_chunks >= 1 and result.guard_fallbacks == 0


# ----------------------------------------------------------------------
# sizeof prices arrays and column chunks (satellite 2)


def test_sizeof_prices_ndarrays_flat():
    array = np.arange(10, dtype=np.int64)
    assert sizeof(array) == OBJECT_HEADER + 80
    assert sizeof(np.asarray([1.0, 2.0])) == OBJECT_HEADER + 16
    ragged = np.asarray(["a", "bb"], dtype=object)
    assert sizeof(ragged) == OBJECT_HEADER + 2 * sizeof("a")


def test_sizeof_prices_column_chunks_via_model():
    rows = [(0, 10), (1, 20)]
    spec = ColumnSpec(name="x", kind="int", access="index", position=1)
    chunk = build_chunk(rows, (spec,))
    expected = (
        OBJECT_HEADER
        + sum(sizeof(row) for row in rows)
        + OBJECT_HEADER
        + int(chunk.columns["x"].nbytes)
    )
    assert sizeof(chunk) == expected


# ----------------------------------------------------------------------
# Column-wise spill (tentpole: shuffle moves columns)


def test_spill_add_block_matches_row_adds(tmp_path):
    keys = np.asarray([k % 3 for k in range(40)], dtype=np.int64)
    values = np.asarray([float(k) for k in range(40)])
    block = ColumnBlock(values=values, keys=keys)

    by_rows = SpillWriter(str(tmp_path / "r"), partitions=2, budget_bytes=400)
    (tmp_path / "r").mkdir()
    for key, value in block.pairs():
        by_rows.add(key, value)
    by_rows.finish()

    by_cols = SpillWriter(str(tmp_path / "c"), partitions=2, budget_bytes=400)
    (tmp_path / "c").mkdir()
    by_cols.add_block(block)
    by_cols.finish()

    assert by_cols.key_order == by_rows.key_order
    assert by_cols.pairs_in == by_rows.pairs_in == 40
    assert by_cols.bytes_in == by_rows.bytes_in
    for partition in range(2):
        row_stream = [
            pair
            for path in by_rows.run_files[partition]
            for pair in read_run(path)
        ]
        col_stream = [
            pair
            for path in by_cols.run_files[partition]
            for pair in read_run(path)
        ]
        assert sorted(col_stream) == sorted(row_stream)
        # Within a partition, arrival order per key must be preserved.
        for key in set(keys.tolist()):
            assert [v for k, v in col_stream if k == key] == [
                v for k, v in row_stream if k == key
            ]


def test_spill_block_budget_guard(tmp_path):
    writer = SpillWriter(str(tmp_path), partitions=2, budget_bytes=10)
    block = ColumnBlock(
        values=np.asarray([2**40], dtype=np.int64),
        keys=np.asarray([2**40], dtype=np.int64),
    )
    from repro.errors import SpillError

    with pytest.raises(SpillError, match="smaller than a single record"):
        writer.add_block(block)


# ----------------------------------------------------------------------
# Zero-copy shared-memory payloads


def test_shm_payload_round_trip_zero_copy():
    if not shm.SHM_AVAILABLE:
        pytest.skip("shared memory unavailable on this platform")
    payload = {
        "values": np.arange(4096, dtype=np.int64),
        "keys": np.asarray([1.5] * 4096),
        "tail": ["plain", "objects"],
    }
    buffers: list = []
    head = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    assert buffers, "ndarrays should travel out of band under protocol 5"
    before = shm.owned_segments()
    ref = shm.write_payload(head, buffers)
    assert ref is not None and ref.spans
    loaded = shm.load_payload(ref)
    assert np.array_equal(loaded["values"], payload["values"])
    assert np.array_equal(loaded["keys"], payload["keys"])
    assert loaded["tail"] == payload["tail"]
    shm.release_segments([ref])
    assert shm.owned_segments() == before


def test_shm_payload_plain_bytes_path():
    data = pickle.dumps({"x": 1})
    assert shm.load_payload(data) == {"x": 1}
    # A span-less ShmRef (the pre-columnar transport shape) still loads.
    ref = shm.write_segment(data)
    if ref is None:
        pytest.skip("shared memory unavailable on this platform")
    assert shm.load_payload(ref) == {"x": 1}
    shm.release_segments([ref])


# ----------------------------------------------------------------------
# The layout knob: options, plans, resolution, planner pricing


def test_exec_options_validate_layout():
    assert ExecOptions(layout="columns").layout == "columns"
    assert ExecOptions().layout is None
    with pytest.raises(ValueError, match="unknown layout"):
        ExecOptions(layout="diagonal")
    options = ExecOptions(layout="auto", kernel="compiled")
    assert ExecOptions.from_dict(options.as_dict()) == options


def test_forced_plan_carries_layout():
    plan = forced_plan("sequential", kernel="compiled", layout="columns")
    assert plan.layout == "columns"
    assert "layout=columns" in plan.describe()
    assert any("layout" in reason for reason in plan.reasons)
    # Simulated backends never run the real engine's columnar path.
    assert forced_plan("spark", layout="columns").layout == "rows"
    with pytest.raises(ValueError, match="unknown layout"):
        forced_plan("sequential", layout="diagonal")


def test_resolve_layout_precedence_and_auto():
    plan = forced_plan("sequential", kernel="compiled", layout="columns")
    assert resolve_layout(None, None) == "rows"
    assert resolve_layout(None, plan) == "columns"
    assert resolve_layout("rows", plan) == "rows"
    assert resolve_layout("auto", None, kernel="compiled") == "columns"
    assert resolve_layout("auto", None, kernel=None) == "rows"
    with pytest.raises(CodegenError, match="unknown layout"):
        resolve_layout("diagonal", None)


def test_engine_rejects_unknown_layout():
    inputs = get_benchmark("ariths_sum").make_inputs(RUN_SIZE, 7)
    engine = _engine("ariths_sum", "diagonal")
    with pytest.raises(EngineError, match="unknown layout"):
        engine.run_pipeline([(0, 1)], _steps("ariths_sum", inputs))


def test_planner_resolves_layout_from_kernel():
    benchmark = get_benchmark("ariths_sum")
    compilation = compiled("ariths_sum")
    fragment = [f for f in compilation.fragments if f.translated][0]

    big = benchmark.make_inputs(5000, 11)
    fragment.program.run(dict(big), plan="auto", kernel="compiled")
    report = fragment.program.last_plan_report
    assert report.summary()["layout"] == "columns"
    assert any("layout=columns" in r for r in report.plan.reasons)
    assert report.columnar is not None
    assert report.columnar["columnar_chunks"] >= 1

    fragment.program.run(dict(big), plan="auto", kernel="eval")
    report = fragment.program.last_plan_report
    assert report.summary()["layout"] == "rows"


def test_layout_knob_end_to_end_identical():
    benchmark = get_benchmark("ariths_dot_product")  # multi-column map
    compilation = compiled("ariths_dot_product")
    fragment = [f for f in compilation.fragments if f.translated][0]
    inputs = benchmark.make_inputs(RUN_SIZE, 7)
    reference = interpret_fragment(fragment.analysis, dict(inputs))
    by_rows = fragment.program.run(
        dict(inputs), plan="sequential", kernel="compiled", layout="rows"
    )
    by_cols = fragment.program.run(
        dict(inputs), plan="sequential", kernel="compiled", layout="columns"
    )
    assert by_rows == by_cols
    common = set(by_cols) & set(reference)
    assert common and all(by_cols[k] == reference[k] for k in common)
    report = fragment.program.last_plan_report
    assert report.summary()["layout"] == "columns"
    assert report.columnar is not None

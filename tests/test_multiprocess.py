"""Unit tests for the real multiprocess backend (engine level)."""

from __future__ import annotations

import pytest

from repro.engine.metrics import JobMetrics
from repro.engine.multiprocess import (
    MapStep,
    MultiprocessEngine,
    MultiprocessResult,
    ReduceStep,
    default_process_count,
)


class KeyedEmit:
    """Picklable record → [(key, value)] mapper for tests."""

    def __init__(self, modulo: int = 10):
        self.modulo = modulo

    def __call__(self, record):
        return [(record % self.modulo, record)]


class PassThrough:
    def __call__(self, pair):
        return [pair]


class Add:
    def __call__(self, a, b):
        return a + b


class Subtract:
    """Deliberately non-commutative: fold order must be preserved."""

    def __call__(self, a, b):
        return a - b


def reference_groups(records, modulo):
    grouped = {}
    for r in records:
        grouped.setdefault(r % modulo, []).append(r)
    return grouped


class TestInlineExecution:
    def test_map_only_pipeline(self):
        records = list(range(100))
        result = MultiprocessEngine(processes=0).run_pipeline(
            records, [MapStep(KeyedEmit(7))]
        )
        assert result.pairs == [(r % 7, r) for r in records]
        assert result.fallback_reason == "single process requested"

    def test_map_reduce_sum(self):
        records = list(range(1000))
        result = MultiprocessEngine(processes=0).run_pipeline(
            records, [MapStep(KeyedEmit(10)), ReduceStep(Add())]
        )
        expected = [(k, sum(v)) for k, v in reference_groups(records, 10).items()]
        assert result.pairs == expected

    def test_non_commutative_fold_preserves_order(self):
        records = list(range(50))
        result = MultiprocessEngine(processes=0).run_pipeline(
            records, [MapStep(KeyedEmit(5)), ReduceStep(Subtract(), combine=False)]
        )
        expected = []
        for key, values in reference_groups(records, 5).items():
            acc = values[0]
            for value in values[1:]:
                acc = acc - value
            expected.append((key, acc))
        assert result.pairs == expected

    def test_chained_map_stages(self):
        records = list(range(30))
        result = MultiprocessEngine(processes=0).run_pipeline(
            records, [MapStep(KeyedEmit(3)), MapStep(PassThrough())]
        )
        assert result.pairs == [(r % 3, r) for r in records]

    def test_empty_input(self):
        result = MultiprocessEngine(processes=0).run_pipeline(
            [], [MapStep(KeyedEmit()), ReduceStep(Add())]
        )
        assert result.pairs == []

    def test_empty_steps_rejected(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            MultiprocessEngine(processes=0).run_pipeline([1, 2], [])


class TestPooledExecution:
    def test_pooled_matches_inline_exactly(self):
        records = list(range(4000))
        steps = [MapStep(KeyedEmit(13)), ReduceStep(Add())]
        inline = MultiprocessEngine(processes=0).run_pipeline(records, steps)
        pooled = MultiprocessEngine(
            processes=2, min_parallel_records=100
        ).run_pipeline(records, steps)
        assert pooled.fallback_reason is None
        assert pooled.executed_parallel
        assert pooled.pairs == inline.pairs

    def test_pooled_non_commutative_matches_inline(self):
        records = list(range(3000))
        steps = [MapStep(KeyedEmit(4)), ReduceStep(Subtract(), combine=False)]
        inline = MultiprocessEngine(processes=0).run_pipeline(records, steps)
        pooled = MultiprocessEngine(
            processes=2, min_parallel_records=100
        ).run_pipeline(records, steps)
        assert pooled.fallback_reason is None
        assert pooled.pairs == inline.pairs

    def test_task_bounds_cover_all_chunks_in_order(self):
        bounds = MultiprocessEngine._task_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        flat = [i for lo, hi in bounds for i in range(lo, hi)]
        assert flat == list(range(10))


class TestFallbacks:
    def test_tiny_input_stays_in_process(self):
        result = MultiprocessEngine(
            processes=4, min_parallel_records=1000
        ).run_pipeline(list(range(10)), [MapStep(KeyedEmit())])
        assert result.fallback_reason is not None
        assert "tiny input" in result.fallback_reason
        assert result.pairs == [(r % 10, r) for r in range(10)]

    def test_unpicklable_lambda_falls_back_sequentially(self):
        records = list(range(3000))
        result = MultiprocessEngine(
            processes=2, min_parallel_records=100
        ).run_pipeline(records, [MapStep(lambda r: [(r % 2, r)])])
        assert result.fallback_reason is not None
        assert "not picklable" in result.fallback_reason
        assert result.pairs == [(r % 2, r) for r in records]
        assert not result.executed_parallel

    def test_mapper_exception_propagates(self):
        class Boom:
            def __call__(self, record):
                raise ValueError("boom in mapper")

        with pytest.raises(ValueError, match="boom in mapper"):
            MultiprocessEngine(processes=0).run_pipeline(
                list(range(10)), [MapStep(Boom())]
            )

    def test_pooled_worker_exception_propagates(self):
        """Regression: a bug inside a kernel running in a pool worker must
        reach the caller — never be mistaken for an unpicklable payload
        and silently retried in-process."""

        class Boom:  # picklable, so it genuinely ships to a worker
            def __call__(self, record):
                raise ValueError("boom in worker")

        engine = MultiprocessEngine(processes=2, min_parallel_records=100)
        with pytest.raises(ValueError, match="boom in worker"):
            engine.run_pipeline(list(range(4000)), [MapStep(Boom())])

    def test_pooled_reducer_exception_propagates(self):
        class BoomReduce:
            def __call__(self, a, b):
                raise RuntimeError("boom in reducer")

        engine = MultiprocessEngine(processes=2, min_parallel_records=100)
        with pytest.raises(RuntimeError, match="boom in reducer"):
            engine.run_pipeline(
                list(range(4000)),
                [MapStep(KeyedEmit(8)), ReduceStep(BoomReduce(), combine=False)],
            )

    def test_buggy_serialization_hook_propagates(self):
        """Regression: pickle.dumps used to be wrapped in a blanket
        ``except Exception`` — a __reduce__ raising a *real* error was
        swallowed as "payload not picklable" and the job silently fell
        back in-process.  Only pickling errors may trigger the fallback."""

        class EvilPickle:
            def __call__(self, record):
                return [(record % 2, record)]

            def __reduce__(self):
                raise ValueError("buggy serialization hook")

        engine = MultiprocessEngine(processes=2, min_parallel_records=100)
        with pytest.raises(ValueError, match="buggy serialization hook"):
            engine.run_pipeline(list(range(4000)), [MapStep(EvilPickle())])


class TestMetrics:
    def test_wall_and_simulated_seconds_recorded(self):
        records = list(range(2000))
        result = MultiprocessEngine(processes=0).run_pipeline(
            records, [MapStep(KeyedEmit(10)), ReduceStep(Add())]
        )
        metrics: JobMetrics = result.metrics
        assert metrics.wall_seconds > 0
        assert metrics.simulated_seconds > 0
        names = [s.name for s in metrics.stages]
        assert names[0] == "scan"
        assert any(n.startswith("map") for n in names)
        assert any(n.startswith("shuffle") for n in names)
        assert metrics.bytes_emitted > 0
        assert metrics.bytes_shuffled > 0

    def test_result_shape(self):
        result = MultiprocessEngine(processes=0).run_pipeline(
            [1, 2, 3], [MapStep(KeyedEmit())]
        )
        assert isinstance(result, MultiprocessResult)
        assert result.processes_used == 1

    def test_default_process_count_positive(self):
        assert default_process_count() >= 1

"""Differential layout sweep: rows == columns, every suite, every backend.

The acceptance property of the columnar chunk layout
(:mod:`repro.engine.columnar`): for every translated fragment of every
benchmark suite,

    layout="columns" == layout="rows" == the reference interpreter,

*exactly* — the vectorized fast path, the grouped array folds, and the
column-wise shuffle either reproduce the row engine's fold order
bit-for-bit or trip a guard and fall back to the row loop.  The sweep
mirrors :mod:`tests.test_kernels`: all suites on the sequential backend,
representative suites on the multiprocess pool, the spill-to-disk path,
and the fused graph executor.
"""

from __future__ import annotations

import pytest

from repro.graph.executor import interpret_fragment
from repro.lang.values import values_equal
from repro.workloads import all_benchmarks, get_benchmark
from repro.workloads.runner import compile_benchmark

RUN_SIZE = 200

_COMPILED: dict[str, object] = {}


def compiled(name: str):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(get_benchmark(name))
    return _COMPILED[name]


def _match(lhs: dict, rhs: dict) -> bool:
    common = set(lhs) & set(rhs)
    return bool(common) and all(values_equal(lhs[k], rhs[k]) for k in common)


def _translated_fragments(compilation):
    return [f for f in compilation.fragments if f.translated]


# ----------------------------------------------------------------------
# Sequential: every suite, rows vs columns, exact equality


@pytest.mark.parametrize(
    "name", [b.name for b in all_benchmarks()], ids=lambda n: n
)
def test_columns_match_rows_and_interpreter(name):
    benchmark = get_benchmark(name)
    compilation = compiled(name)
    inputs = benchmark.make_inputs(RUN_SIZE, 7)

    env = dict(inputs)
    for fragment in compilation.fragments:
        if not fragment.translated:
            if fragment.analysis is not None:
                env.update(interpret_fragment(fragment.analysis, env))
            continue
        reference = interpret_fragment(fragment.analysis, env)
        by_rows = fragment.program.run(
            dict(env), plan="sequential", kernel="compiled", layout="rows"
        )
        by_cols = fragment.program.run(
            dict(env), plan="sequential", kernel="compiled", layout="columns"
        )
        assert _match(by_cols, reference), f"{name}: columns != interpreter"
        # Rows and columns share fold order (or the guards refuse the
        # array path), so they agree *exactly*, not within tolerance.
        assert by_rows == by_cols, f"{name}: columns != rows"
        env.update(reference)


# ----------------------------------------------------------------------
# Pool, spill, and fused-graph backends: representative suites

_BACKEND_CASES = [
    "ariths_sum",            # vectorized int sum, const key
    "stats_variance_sums",   # multi-emit float fold (row fallback)
    "phoenix_wordcount",     # string keys, never columnar
    "fiji_threshold",        # map-only, int keyed emits
    "tpch_q6",               # conditional emit, struct projection
]


@pytest.mark.parametrize("name", _BACKEND_CASES, ids=lambda n: n)
def test_columns_on_pool_and_spill_backends(name):
    benchmark = get_benchmark(name)
    compilation = compiled(name)
    inputs = benchmark.make_inputs(RUN_SIZE, 11)

    fragment = _translated_fragments(compilation)[0]
    reference = interpret_fragment(fragment.analysis, dict(inputs))

    pooled = fragment.program.run(
        dict(inputs), plan="multiprocess", kernel="compiled", layout="columns"
    )
    assert _match(pooled, reference), f"{name}: pooled columns != interpreter"

    spilled = fragment.program.run(
        dict(inputs),
        plan="sequential",
        memory_budget=4096,
        kernel="compiled",
        layout="columns",
    )
    report = fragment.program.last_plan_report
    assert report.plan.spill, f"{name}: budget did not engage the spill path"
    assert _match(spilled, reference), f"{name}: spilled columns != interpreter"
    assert report.summary()["layout"] == "columns"


def test_columns_through_fused_graph():
    from repro.compiler import run_program
    from repro.graph import interpret_reference
    from repro.options import ExecOptions

    compilation = compiled("tpch_q1")
    benchmark = get_benchmark("tpch_q1")
    inputs = benchmark.make_inputs(RUN_SIZE, 3)
    reference = interpret_reference(compilation.job_graph, dict(inputs))
    by_rows = run_program(
        compilation,
        dict(inputs),
        options=ExecOptions(plan="sequential", kernel="compiled", layout="rows"),
    )
    by_cols = run_program(
        compilation,
        dict(inputs),
        options=ExecOptions(
            plan="sequential", kernel="compiled", layout="columns"
        ),
    )
    assert by_rows == by_cols, "fused graph: columns != rows"
    common = set(by_cols) & set(reference)
    assert common, "graph run produced nothing comparable"
    assert all(values_equal(by_cols[k], reference[k]) for k in common)

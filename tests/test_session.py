"""The session API: ExecOptions normalization, JobResults, concurrency.

The contract under test is the PR-7 redesign: every entry point takes
one :class:`repro.ExecOptions`; legacy per-call kwargs still work but
warn; :meth:`Session.submit` returns results that *carry* their plan
reports and admission decisions, and stays identical to the direct
``run_program`` path even under concurrent mixed-budget submissions.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import ExecOptions, Session
from repro.compiler import (
    last_graph_report,
    run_program,
    run_translated,
    translate,
)
from repro.errors import ServeError
from repro.options import normalize_exec_options

SUM_SOURCE = """
int sum(int[] data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
"""

WORDCOUNT_SOURCE = """
Map<String, Integer> wc(List<String> words) {
  Map<String, Integer> counts = new HashMap<String, Integer>();
  for (String w : words) {
    counts.put(w, counts.getOrDefault(w, 0) + 1);
  }
  return counts;
}
"""

DATA = [((i * 37) % 101) - 50 for i in range(3000)]
WORDS = [f"w{i % 17}" for i in range(3000)]

_COMPILED: dict[str, object] = {}


def compiled(source: str):
    if source not in _COMPILED:
        _COMPILED[source] = translate(source)
    return _COMPILED[source]


class TestExecOptions:
    def test_rejects_unknown_plan(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecOptions(plan="quantum")

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            ExecOptions(kernel="jit")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="memory_budget"):
            ExecOptions(memory_budget=0)

    def test_outputs_normalized_to_tuple(self):
        assert ExecOptions(outputs=["a", "b"]).outputs == ("a", "b")

    def test_merged_replaces_fields(self):
        base = ExecOptions(plan="auto")
        assert base.merged(memory_budget=1 << 20) == ExecOptions(
            plan="auto", memory_budget=1 << 20
        )

    def test_dict_round_trip(self):
        options = ExecOptions(plan="auto", outputs=("x",), strict=False)
        assert ExecOptions.from_dict(options.as_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ExecOptions"):
            ExecOptions.from_dict({"plann": "auto"})


class TestNormalizeExecOptions:
    def test_legacy_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            options = normalize_exec_options(None, "caller", plan="auto")
        assert options == ExecOptions(plan="auto")

    def test_options_pass_through_silently(self):
        given = ExecOptions(plan="auto")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert normalize_exec_options(given, "caller") is given

    def test_options_plus_legacy_raises(self):
        with pytest.raises(ValueError, match="not both"):
            normalize_exec_options(ExecOptions(), "caller", plan="auto")

    def test_unknown_legacy_name_raises(self):
        with pytest.raises(TypeError, match="unknown option"):
            normalize_exec_options(None, "caller", pln="auto")

    def test_run_program_legacy_kwarg_warns(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        with pytest.warns(DeprecationWarning, match="run_program"):
            legacy = run_program(compilation, dict(inputs), plan="auto")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            modern = run_program(compilation, dict(inputs), ExecOptions(plan="auto"))
        assert legacy == modern

    def test_run_translated_accepts_options(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outputs = run_translated(
                compilation, dict(inputs), options=ExecOptions(plan="auto")
            )
        assert outputs == {"total": sum(DATA)}


class TestSessionInline:
    """max_workers=0: the submit path with no pool, on the caller's thread."""

    def test_identity_with_run_program(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        expected = run_program(compilation, dict(inputs))
        with Session(max_workers=0) as session:
            job = session.run(compilation, dict(inputs))
        assert job.ok
        assert job.outputs == expected

    def test_fragment_index_matches_run_translated(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        expected = run_translated(compilation, dict(inputs))
        with Session(max_workers=0) as session:
            job = session.run(compilation, dict(inputs), fragment_index=0)
        assert job.outputs == expected

    def test_jobresult_carries_report_and_admission(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        with Session(max_workers=0) as session:
            job = session.run(
                compilation, dict(inputs), ExecOptions(memory_budget=1 << 14)
            )
        assert job.ok
        assert job.plan_report is not None
        # The admission decision lands both on the result and inside the
        # report's evidence trail.
        assert job.admission["mode"] in ("concurrent", "exclusive")
        assert job.plan_report.admission == job.admission
        assert job.admission["footprint_bytes"] == 2 * (1 << 14)

    def test_submit_by_program_id(self):
        with Session(max_workers=0) as session:
            prog = session.compile(SUM_SOURCE)
            job = session.run(prog.program_id, {"data": DATA, "n": len(DATA)})
        assert job.outputs == {"total": sum(DATA)}

    def test_unknown_program_id_raises(self):
        with Session(max_workers=0) as session:
            with pytest.raises(ServeError, match="unknown program"):
                session.submit("prog-nope", {})

    def test_closed_session_rejects_submissions(self):
        session = Session(max_workers=0)
        session.close()
        with pytest.raises(ServeError, match="closed"):
            session.submit(compiled(SUM_SOURCE), {})

    def test_execution_failure_is_delivered_not_raised(self):
        compilation = compiled(SUM_SOURCE)
        with Session(max_workers=0) as session:
            job = session.run(compilation, {})  # missing inputs
        assert not job.ok
        assert job.status == "error"
        assert job.error
        assert job.admission is not None

    def test_session_defaults_apply_when_nothing_passed(self):
        defaults = ExecOptions(memory_budget=1 << 14)
        compilation = compiled(SUM_SOURCE)
        with Session(max_workers=0, defaults=defaults) as session:
            job = session.run(compilation, {"data": DATA, "n": len(DATA)})
        assert job.plan_report is not None  # budget implies a planned run
        assert job.admission["footprint_bytes"] == 2 * (1 << 14)

    def test_legacy_kwargs_on_submit_warn(self):
        compilation = compiled(SUM_SOURCE)
        with Session(max_workers=0) as session:
            with pytest.warns(DeprecationWarning, match="Session.submit"):
                job = session.run(
                    compilation, {"data": DATA, "n": len(DATA)}, plan="auto"
                )
        assert job.ok


class TestSessionConcurrent:
    def test_mixed_budget_jobs_identical_to_direct_run(self):
        sum_comp = compiled(SUM_SOURCE)
        wc_comp = compiled(WORDCOUNT_SOURCE)
        sum_inputs = {"data": DATA, "n": len(DATA)}
        wc_inputs = {"words": WORDS}
        expected_sum = run_program(sum_comp, dict(sum_inputs))
        expected_wc = run_program(wc_comp, dict(wc_inputs))

        budget = ExecOptions(memory_budget=1 << 14)
        with Session(max_workers=4) as session:
            jobs = []
            for i in range(4):
                options = budget if i % 2 else None
                jobs.append(session.submit(sum_comp, dict(sum_inputs), options))
                jobs.append(session.submit(wc_comp, dict(wc_inputs), options))
            results = [job.result(timeout=300) for job in jobs]

        assert len(results) == 8
        assert all(r.ok for r in results), [r.error for r in results]
        for i, result in enumerate(results):
            expected = expected_wc if i % 2 else expected_sum
            assert result.outputs == expected
            assert result.admission["mode"] in ("concurrent", "exclusive")
        # The budgeted submissions were planned and carry their own
        # reports — no cross-job smearing through shared last-run state.
        budgeted = [r for i, r in enumerate(results) if (i // 2) % 2]
        assert all(r.plan_report is not None for r in budgeted)
        spilled = [
            unit.spill_stats["spilled_bytes"]
            for r in budgeted
            for unit in r.plan_report.unit_reports.values()
            if unit.spill_stats
        ]
        assert spilled and max(spilled) > 0

    def test_same_program_jobs_serialize_but_stay_correct(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        with Session(max_workers=4) as session:
            jobs = [
                session.submit(
                    compilation,
                    dict(inputs),
                    ExecOptions(memory_budget=1 << (14 + i % 3)),
                )
                for i in range(6)
            ]
            results = [job.result(timeout=300) for job in jobs]
        assert all(r.ok for r in results)
        assert {tuple(r.outputs.items()) for r in results} == {(("total", sum(DATA)),)}
        # Each job's report reflects its *own* budget.
        budgets = sorted(r.admission["footprint_bytes"] // 2 for r in results)
        assert budgets == sorted(1 << (14 + i % 3) for i in range(6))

    def test_deprecated_globals_still_work_single_threaded(self):
        compilation = compiled(SUM_SOURCE)
        inputs = {"data": DATA, "n": len(DATA)}
        with Session(max_workers=0) as session:
            session.run(compilation, dict(inputs))
        assert last_graph_report(compilation) is not None


class TestPublicApi:
    def test_stable_names_exported(self):
        for name in (
            "Session",
            "ExecOptions",
            "JobResult",
            "compile",
            "connect",
            "serve",
            "errors",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_compile_is_translate(self):
        assert repro.compile is repro.translate

    def test_version_bumped(self):
        assert repro.__version__ == "1.5.0"

"""Tests for synthesis: grammar, classes, enumerator, CEGIS, search."""

import pytest

from repro.synthesis import (
    CandidateEnumerator,
    GrammarBuilder,
    SearchConfig,
    find_summaries,
    generate_classes,
    harvest_paths,
    monolithic_class,
    reduce_lambda_pool,
)
from repro.ir.nodes import MapStage, ReduceStage
from repro.verification.algebra import normalize, term_key
from tests.conftest import analysis_of


class TestGrammarClasses:
    def test_hierarchy_is_monotone(self, sum_analysis):
        classes = generate_classes(sum_analysis)
        for earlier, later in zip(classes, classes[1:]):
            assert later.subsumes(earlier)

    def test_monolithic_subsumes_all(self, sum_analysis):
        big = monolithic_class(sum_analysis)
        for cls in generate_classes(sum_analysis):
            assert big.subsumes(cls)

    def test_first_class_is_map_only(self, sum_analysis):
        classes = generate_classes(sum_analysis)
        assert classes[0].shapes == ("m",)
        assert classes[0].max_emits == 1


class TestGrammarGeneration:
    def test_pools_use_fragment_operators(self, q6_analysis):
        paths = harvest_paths(q6_analysis)
        pools = GrammarBuilder(q6_analysis, generate_classes(q6_analysis)[1], paths).build()
        # The Q6 guard and its value expression are harvested.
        assert pools.harvested_boolean
        value_keys = {term_key(normalize(e)) for e in pools.harvested_numeric}
        from repro.ir.builder import mul, var

        expected = term_key(normalize(mul(var("l_extendedprice"), var("l_discount"))))
        assert expected in value_keys

    def test_pools_include_scan_constants(self, q6_analysis):
        pools = GrammarBuilder(q6_analysis, generate_classes(q6_analysis)[1]).build()
        from repro.ir.nodes import Const

        values = {e.value for e in pools.numeric if isinstance(e, Const)}
        assert 0.05 in values and 0.07 in values

    def test_reduce_pool_follows_operators(self):
        lambdas = reduce_lambda_pool("int", {"+", "<"}, set())
        bodies = {str(l.body) for l in lambdas}
        assert any("+" in b for b in bodies)
        assert any("min" in b for b in bodies)

    def test_boolean_reduce_pool(self):
        lambdas = reduce_lambda_pool("boolean", set(), set())
        assert len(lambdas) == 2  # || and &&

    def test_harvest_paths_for_nested_loop(self, rwm_analysis):
        paths = harvest_paths(rwm_analysis)
        assert paths  # inner fold + finalizer paths


class TestEnumerator:
    def test_scalar_candidates_have_reduce_stage(self, sum_analysis):
        pools = GrammarBuilder(
            sum_analysis, generate_classes(sum_analysis)[1], harvest_paths(sum_analysis)
        ).build()
        enum = CandidateEnumerator(sum_analysis, generate_classes(sum_analysis)[1], pools)
        candidates = list(enum.candidates())[:10]
        assert candidates
        for candidate in candidates:
            kinds = [type(s) for s in candidate.pipeline.stages]
            assert kinds == [MapStage, ReduceStage]

    def test_candidates_are_unique(self, sum_analysis):
        grammar_class = generate_classes(sum_analysis)[1]
        pools = GrammarBuilder(sum_analysis, grammar_class, harvest_paths(sum_analysis)).build()
        enum = CandidateEnumerator(sum_analysis, grammar_class, pools)
        seen = list(enum.candidates())
        assert len({hash(c) for c in seen}) == len(seen)

    def test_part_filter_prunes(self, sum_analysis):
        grammar_class = generate_classes(sum_analysis)[1]
        pools = GrammarBuilder(sum_analysis, grammar_class, harvest_paths(sum_analysis)).build()
        unfiltered = len(list(
            CandidateEnumerator(sum_analysis, grammar_class, pools).candidates()
        ))
        from repro.synthesis.cegis import PartEvaluator
        from repro.verification.bounded import BoundedChecker

        checker = BoundedChecker(sum_analysis)
        part_filter = PartEvaluator(sum_analysis, checker.states[:6])
        filtered = len(list(
            CandidateEnumerator(
                sum_analysis, grammar_class, pools, part_filter
            ).candidates()
        ))
        assert filtered < unfiltered


class TestSearch:
    def test_sum_synthesizes_and_proves(self, sum_search):
        assert sum_search.translated
        assert sum_search.summaries[0].proof.status == "proved"

    def test_rwm_found_in_third_class(self, rwm_search):
        # Row-wise mean needs map→reduce→map: the search reaches G3
        # exactly as Fig. 6 illustrates.
        assert rwm_search.translated
        assert rwm_search.final_class == "G3"
        assert rwm_search.summaries[0].summary.operation_count == 3

    def test_wordcount_summary_shape(self, wordcount_search):
        assert wordcount_search.translated
        s = wordcount_search.summaries[0].summary
        assert s.operation_count == 2
        assert s.outputs[0].container == "map"

    def test_search_blocks_failed_candidates(self, max_analysis):
        result = find_summaries(max_analysis)
        assert result.translated
        # Nothing in Δ may equal anything that was rejected: all summaries
        # verified.
        for vs in result.summaries:
            assert vs.proof.status in ("proved", "unknown")

    def test_incremental_vs_exhaustive_counts(self, sum_analysis):
        incremental = find_summaries(sum_analysis, SearchConfig(incremental_grammar=True))
        exhaustive = find_summaries(
            sum_analysis,
            SearchConfig(
                incremental_grammar=False,
                exhaustive=True,
                max_summaries_per_class=50,
                timeout_seconds=60,
            ),
        )
        assert incremental.translated and exhaustive.translated
        # The Table 3 contrast appears on richer benchmarks (see
        # benchmarks/test_table3_incremental_grammar.py); for the tiny sum
        # space both modes succeed, with exhaustive searching one big class.
        assert exhaustive.classes_searched == 1
        assert incremental.classes_searched >= 2

    def test_untranslatable_fragment_fails_cleanly(self):
        analysis = analysis_of(
            """
            double median(double[] x, int n) {
              double best = 0;
              for (int i = 0; i < n; i++) {
                int rank = 0;
                for (int j = 0; j < n; j++) {
                  if (x[j] < x[i]) rank = rank + 1;
                }
                if (rank == n / 2) best = x[i];
              }
              return best;
            }
            """
        )
        result = find_summaries(analysis, SearchConfig(timeout_seconds=30))
        assert not result.translated
        assert result.failure_reason

    def test_search_reports_statistics(self, rwm_search):
        assert rwm_search.candidates_checked >= 1
        assert rwm_search.elapsed_seconds > 0
        assert rwm_search.classes_searched >= 3

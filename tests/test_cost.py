"""Tests for the cost model (Eqns 2-4) and the runtime monitor."""

import pytest

from repro.baselines.fig8_solutions import (
    string_match_solution_a,
    string_match_solution_b,
    string_match_solution_c,
)
from repro.cost import (
    CostModel,
    CostWeights,
    Implementation,
    RuntimeMonitor,
    estimate_from_sample,
    expr_static_size,
)
from repro.ir.builder import (
    add,
    and_,
    const,
    emit,
    eq,
    map_stage,
    or_,
    pipeline,
    proj,
    reduce_stage,
    scalar_output,
    summary,
    tup,
    var,
)
from repro.ir.nodes import OutputBinding, TupleExpr, Var


class TestStaticSizes:
    def test_string_and_boolean_pair_sizes(self):
        assert expr_static_size(Var("w", "String")) == 40
        assert expr_static_size(eq(Var("w", "String"), Var("k", "String"))) == 10
        assert expr_static_size(TupleExpr((const(True), const(False)))) == 28


class TestStaticCosts:
    def test_solution_a_matches_paper(self):
        """Fig. 8(d): λm cost 2·(40+10)·N, λr cost 2·2·50·N → 300N."""
        model = CostModel()
        cost = model.summary_cost(string_match_solution_a())
        assert cost.evaluate({}) == pytest.approx(300.0)

    def test_solution_b_matches_paper(self):
        """Fig. 8(d): λm 1·28·N + λr 2·28·N = 84N (constant routing key
        costs nothing — the reduction erases to a global reduce)."""
        model = CostModel()
        cost = model.summary_cost(string_match_solution_b())
        assert cost.evaluate({}) == pytest.approx(84.0)

    def test_solution_c_is_data_dependent(self):
        """Fig. 8(d): 150·(p1+p2)·N — zero at p=0, 150N at p1+p2=1."""
        model = CostModel()
        cost = model.summary_cost(string_match_solution_c())
        assert cost.lower_bound() == 0.0
        p_syms = sorted(cost.unknowns - {s for s in cost.unknowns if s.startswith("k_")})
        full = {s: 1.0 for s in cost.unknowns}
        assert cost.evaluate(full) == pytest.approx(300.0)
        half = {s: (0.25 if s.startswith("p_") else 1.0) for s in cost.unknowns}
        assert cost.evaluate(half) == pytest.approx(150.0 * 0.5 + 0.0, abs=40)

    def test_non_ca_reduce_penalized(self):
        model = CostModel()
        s = summary(
            pipeline(
                "d",
                map_stage(("v",), emit(const("k"), var("v"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("out", default=0),
        )
        ca = model.summary_cost(s, commutative_associative=True)
        non_ca = model.summary_cost(s, commutative_associative=False)
        assert non_ca.evaluate({}) > ca.evaluate({})
        assert non_ca.evaluate({}) / ca.evaluate({}) > 5  # Wcsg dominates

    def test_weights_are_paper_values(self):
        weights = CostWeights()
        assert (weights.wm, weights.wr, weights.wj, weights.wcsg) == (1.0, 2.0, 2.0, 50.0)

    def test_dominance_pruning_drops_solution_a(self):
        """Fig. 8: (a) is disqualified at compile time by (b)."""
        model = CostModel()
        a = string_match_solution_a()
        b = string_match_solution_b()
        costed = [(a, model.summary_cost(a)), (b, model.summary_cost(b))]
        survivors = model.prune_dominated(costed)
        assert [s for s, _ in survivors] == [b]

    def test_incomparable_solutions_both_survive(self):
        """(b) and (c) cannot be compared statically (unknown p1, p2)."""
        model = CostModel()
        b = string_match_solution_b()
        c = string_match_solution_c()
        costed = [(b, model.summary_cost(b)), (c, model.summary_cost(c))]
        survivors = model.prune_dominated(costed)
        assert len(survivors) == 2


class TestSampling:
    def sample(self, match_probability, n=1000):
        matched = int(n * match_probability)
        words = ["key1"] * (matched // 2) + ["key2"] * (matched - matched // 2)
        words += ["filler"] * (n - matched)
        return [{"word": w} for w in words]

    def test_probability_estimation(self):
        s = string_match_solution_c()
        env = {"key1": "key1", "key2": "key2"}
        estimates = estimate_from_sample(s, self.sample(0.5), env)
        total_p = sum(estimates.probabilities.values())
        assert total_p == pytest.approx(0.5, abs=0.01)

    def test_zero_match_probability(self):
        s = string_match_solution_c()
        env = {"key1": "key1", "key2": "key2"}
        estimates = estimate_from_sample(s, self.sample(0.0), env)
        assert all(p == 0.0 for p in estimates.probabilities.values())

    def test_distinct_key_ratio(self):
        s = summary(
            pipeline(
                "d",
                map_stage(("v",), emit(var("v"), const(1))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("out", default=0),
        )
        sample = [{"v": i % 5} for i in range(100)]
        estimates = estimate_from_sample(s, sample, {})
        assert list(estimates.key_ratios.values()) == [pytest.approx(0.05)]


class TestRuntimeMonitor:
    def make_monitor(self):
        model = CostModel()
        b = string_match_solution_b()
        c = string_match_solution_c()
        return RuntimeMonitor(
            implementations=[
                Implementation("b", b, model.summary_cost(b), lambda data: "ran_b"),
                Implementation("c", c, model.summary_cost(c), lambda data: "ran_c"),
            ]
        )

    def sample(self, match_probability, n=2000):
        matched = int(n * match_probability)
        words = ["key1"] * matched + ["filler"] * (n - matched)
        return [{"word": w} for w in words]

    def test_low_skew_prefers_guarded_solution(self):
        """Fig. 8(c): 0% and 50% match → solution (c) wins."""
        monitor = self.make_monitor()
        env = {"key1": "key1", "key2": "key2"}
        chosen = monitor.choose(self.sample(0.0), env)
        assert chosen.name == "c"
        chosen = monitor.choose(self.sample(0.5), env)
        assert chosen.name == "c"

    def test_high_skew_prefers_tuple_solution(self):
        """Fig. 8(c): 95% match → solution (b) wins."""
        monitor = self.make_monitor()
        env = {"key1": "key1", "key2": "key2"}
        chosen = monitor.choose(self.sample(0.95), env)
        assert chosen.name == "b"

    def test_monitor_records_costs(self):
        monitor = self.make_monitor()
        monitor.choose(self.sample(0.5), {"key1": "key1", "key2": "key2"})
        assert set(monitor.last_costs) == {"b", "c"}
        assert monitor.last_choice in ("b", "c")

    def test_run_dispatches_to_chosen(self):
        monitor = self.make_monitor()
        result = monitor.run([], self.sample(0.0), {"key1": "key1", "key2": "key2"})
        assert result == "ran_c"

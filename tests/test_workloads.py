"""Tests for data generators and the benchmark registry."""

import pytest

from repro.lang.interpreter import Interpreter
from repro.workloads import all_benchmarks, datagen, get_benchmark, suite_benchmarks, suites


class TestDatagen:
    def test_generators_are_seeded(self):
        assert datagen.words(50, seed=1) == datagen.words(50, seed=1)
        assert datagen.words(50, seed=1) != datagen.words(50, seed=2)

    def test_keyword_text_skew(self):
        low = datagen.keyword_text(2000, ["k"], 0.0, seed=1)
        high = datagen.keyword_text(2000, ["k"], 0.95, seed=1)
        assert low.count("k") == 0
        assert high.count("k") / 2000 == pytest.approx(0.95, abs=0.03)

    def test_keyword_text_validates_probability(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            datagen.keyword_text(10, ["k"], 1.5)

    def test_pixels_in_rgb_range(self):
        for p in datagen.pixels(100, seed=3):
            assert 0 <= p.get("r") <= 255
            assert 0 <= p.get("g") <= 255
            assert 0 <= p.get("b") <= 255

    def test_graph_edges_have_outdegree(self):
        edges = datagen.graph_edges(20, 100, seed=4)
        sources = {e.get("src") for e in edges}
        assert sources == set(range(20))

    def test_lineitem_fields(self):
        items = datagen.lineitems(50, seed=5)
        for item in items:
            assert 0.0 <= item.get("l_discount") <= 0.10
            assert item.get("l_returnflag") in ("A", "N", "R")

    def test_zipf_is_skewed(self):
        sample = datagen.zipf_sample(5000, alpha=1.5, universe=100, seed=6)
        head = sample.count(0)
        tail = sample.count(99)
        assert head > tail

    def test_image_frames_shape(self):
        frames = datagen.image_frames(5, 32, seed=7)
        assert len(frames) == 5
        assert all(len(f) == 32 for f in frames)


class TestRegistry:
    def test_eight_suites_registered(self):
        assert set(suites()) == {
            "ariths",
            "biglambda",
            "fiji",
            "iterative",
            "joins",
            "phoenix",
            "stats",
            "tpch",
        }

    def test_suite_counts(self):
        assert len(suite_benchmarks("ariths")) == 11
        assert len(suite_benchmarks("stats")) == 19
        assert len(suite_benchmarks("biglambda")) == 9
        assert len(suite_benchmarks("tpch")) == 4
        assert len(suite_benchmarks("joins")) == 3

    def test_lookup_by_name(self):
        benchmark = get_benchmark("phoenix_wordcount")
        assert benchmark.suite == "phoenix"
        with pytest.raises(KeyError):
            get_benchmark("nope")

    @pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
    def test_benchmark_parses_and_runs_sequentially(self, bench):
        """Every registered program parses and its sequential run succeeds."""
        program = bench.parse()
        inputs = bench.make_inputs(60, seed=13)
        args = bench.args_for(inputs)
        interp = Interpreter(program)
        interp.call_function(bench.function, args)  # must not raise

    def test_args_for_orders_by_signature(self):
        benchmark = get_benchmark("ariths_cond_sum")
        inputs = benchmark.make_inputs(10, seed=1)
        args = benchmark.args_for(inputs)
        assert args[0] == inputs["data"]
        assert args[1] == inputs["n"]
        assert args[2] == inputs["threshold"]


class TestCompileSuite:
    def test_batch_suite_compilation_matches_single(self):
        from repro import SummaryCache
        from repro.workloads.runner import compile_benchmark, compile_suite

        benchmarks = [get_benchmark("ariths_sum"), get_benchmark("ariths_max")]
        results = compile_suite(benchmarks, cache=SummaryCache())
        assert list(results) == ["ariths_sum", "ariths_max"]
        for benchmark in benchmarks:
            single = compile_benchmark(benchmark)
            batched = results[benchmark.name]
            assert batched.translated == single.translated
            assert [
                vs.summary
                for f in batched.fragments
                for vs in f.search.summaries
            ] == [
                vs.summary
                for f in single.fragments
                for vs in f.search.summaries
            ]

"""Whole-program property tests: run_program across every suite.

The acceptance property of the job-graph layer: for every benchmark of
all seven suites,

    fused DAG execution == unfused DAG execution
                        == per-fragment sequential execution
                        == the reference interpreter,

including loop-carried datasets (PageRank ranks fed across iterations)
and the planner's single-CPU calibration skip.
"""

from __future__ import annotations

import pytest

from repro.compiler import run_program, run_translated
from repro.errors import AnalysisError
from repro.graph import interpret_reference
from repro.lang.interpreter import Interpreter
from repro.lang.values import values_equal
from repro.planner import PlannerConfig
from repro.planner.planner import ExecutionPlanner
from repro.workloads import all_benchmarks, get_benchmark
from repro.workloads.runner import compile_benchmark, run_benchmark_graph

RUN_SIZE = 250

_COMPILED: dict[str, object] = {}


def compiled(name: str):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(get_benchmark(name))
    return _COMPILED[name]


def _match(lhs: dict, rhs: dict) -> bool:
    common = set(lhs) & set(rhs)
    return all(values_equal(lhs[k], rhs[k]) for k in common)


@pytest.mark.parametrize("name", [b.name for b in all_benchmarks()], ids=lambda n: n)
class TestGraphIdentity:
    """run_program == per-fragment sequential == interpreter, per benchmark."""

    def test_fused_dag_matches_all_references(self, name):
        benchmark = get_benchmark(name)
        compilation = compiled(name)
        inputs = benchmark.make_inputs(RUN_SIZE, 7)

        fused = run_program(compilation, dict(inputs), strict=False)
        report = compilation.last_graph_run.report
        unfused = run_program(compilation, dict(inputs), strict=False, fuse=False)
        interpreted = interpret_reference(compilation.job_graph, dict(inputs))

        # Per-fragment sequential chaining: each translated fragment
        # runs as its own job (run_benchmark's model); untranslated
        # fragments with an analysis are interpreted so their outputs
        # still chain forward (what strict=False does graph-side).
        from repro.graph.executor import interpret_fragment

        sequential: dict = {}
        env = dict(inputs)
        for fragment in compilation.fragments:
            if fragment.translated:
                outputs = fragment.program.run(dict(env))
            elif fragment.analysis is not None:
                outputs = interpret_fragment(fragment.analysis, env)
            else:
                continue
            env.update(outputs)
            sequential.update(outputs)

        assert _match(fused, interpreted), f"{name}: fused != interpreter"
        assert _match(unfused, interpreted), f"{name}: unfused != interpreter"
        assert _match(fused, unfused), f"{name}: fused != unfused"
        assert _match(sequential, interpreted), f"{name}: per-fragment != interpreter"
        assert _match(fused, sequential), f"{name}: fused != per-fragment"

        # Every observable (final) variable a translated-or-interpreted
        # node produces must actually be delivered.
        produced_final = {
            var
            for node in compilation.job_graph.nodes.values()
            if node.analysis is not None
            for var in node.output_vars
            if var in compilation.job_graph.final_vars
        }
        missing = [v for v in produced_final if v not in fused]
        assert not missing, f"{name}: final outputs missing {missing}"
        assert report is not None


class TestMultiStagePrograms:
    def test_select_sum_exercises_map_map_fusion(self):
        compilation = compiled("biglambda_select_sum")
        benchmark = get_benchmark("biglambda_select_sum")
        run_program(compilation, benchmark.make_inputs(RUN_SIZE, 7))
        report = compilation.last_graph_run.report
        assert any("map→map fused" in d for d in report.decisions)
        assert any("combiner hoisted" in d for d in report.decisions)
        assert report.fused_away == ["kept"]

    def test_q1_exercises_concurrent_branches(self):
        compilation = compiled("tpch_q1")
        benchmark = get_benchmark("tpch_q1")
        run_program(compilation, benchmark.make_inputs(RUN_SIZE, 7), max_workers=2)
        report = compilation.last_graph_run.report
        assert report.plan.waves == [(0, 1)]
        assert report.plan.concurrency == 2
        # Both aggregates scan lineitem: one materialization, one reuse.
        assert report.records_cache_hits >= 1

    def test_pagerank_chain_stage_fuses(self):
        compilation = compiled("iterative_pagerank")
        benchmark = get_benchmark("iterative_pagerank")
        run_program(compilation, benchmark.make_inputs(RUN_SIZE, 7))
        run = compilation.last_graph_run
        assert any(unit.fused for unit in run.schedule.units)
        assert any("stage-fused" in d for d in run.report.decisions)

    def test_loop_carried_pagerank_iterations(self):
        benchmark = get_benchmark("iterative_pagerank")
        compilation = compiled("iterative_pagerank")
        inputs = benchmark.make_inputs(RUN_SIZE, 7)
        interp = Interpreter(benchmark.parse())
        graph_rank = list(inputs["rank"])
        interp_rank = list(inputs["rank"])
        for _iteration in range(3):
            outputs = run_program(
                compilation,
                {
                    "edges": inputs["edges"],
                    "rank": graph_rank,
                    "nodes": inputs["nodes"],
                },
            )
            graph_rank = outputs["next"]
            interp_rank = interp.call_function(
                "pagerankIter", [inputs["edges"], interp_rank, inputs["nodes"]]
            )
            assert values_equal(graph_rank, interp_rank)

    def test_run_benchmark_graph_round_trip(self):
        run = run_benchmark_graph(
            get_benchmark("tpch_q15"),
            size=RUN_SIZE,
            plan="sequential",
            compilation=compiled("tpch_q15"),
        )
        assert run.outputs_match
        assert run.simulated_seconds > 0
        assert run.run.report.unit_reports


class TestRunTranslatedErrors:
    def test_multi_fragment_error_enumerates_and_names_run_program(self):
        compilation = compiled("tpch_q1")
        benchmark = get_benchmark("tpch_q1")
        inputs = benchmark.make_inputs(20, 7)
        with pytest.raises(AnalysisError) as excinfo:
            run_translated(compilation, inputs)
        message = str(excinfo.value)
        assert "run_program" in message
        assert "[0] query1#0 (translated)" in message
        assert "[1] query1#1 (translated)" in message
        assert "fragment_index" in message

    def test_untranslated_fragment_error_keeps_reason(self):
        compilation = compiled("biglambda_cross_pairs")
        with pytest.raises(AnalysisError, match="was not translated"):
            run_translated(compilation, {}, fragment_index=0)


class TestSingleCpuCalibrationSkip:
    def test_planner_skips_measured_probe_on_one_cpu(self, monkeypatch):
        compilation = compiled("biglambda_sentiment")
        fragment = next(f for f in compilation.fragments if f.translated)
        program = fragment.program
        benchmark = get_benchmark("biglambda_sentiment")
        inputs = benchmark.make_inputs(200, 7)

        def _fail_calibrate(self, *args, **kwargs):
            raise AssertionError("measured probe must not run on 1 CPU")

        monkeypatch.setattr(ExecutionPlanner, "_calibrate", _fail_calibrate)
        monkeypatch.setattr(ExecutionPlanner, "_pickle_seconds", _fail_calibrate)
        program.planner = ExecutionPlanner(
            config=PlannerConfig(processes=1),
            cost_model=program.cost_model,
        )
        program.planner.precompute(program.programs)
        program.run(dict(inputs), plan="auto")
        report = program.last_plan_report
        assert report.plan.backend == "sequential"
        assert report.calibration_skipped is not None
        assert "λm calibration skipped" in report.calibration_skipped
        assert any("calibration skipped" in r for r in report.plan.reasons)
        assert report.estimated_seconds == {}
        assert report.summary()["calibration_skipped"] == report.calibration_skipped

    def test_multi_cpu_still_calibrates(self):
        compilation = compiled("biglambda_sentiment")
        fragment = next(f for f in compilation.fragments if f.translated)
        program = fragment.program
        benchmark = get_benchmark("biglambda_sentiment")
        inputs = benchmark.make_inputs(200, 7)
        program.planner = ExecutionPlanner(
            config=PlannerConfig(processes=4),
            cost_model=program.cost_model,
        )
        program.planner.precompute(program.programs)
        program.run(dict(inputs), plan="auto")
        report = program.last_plan_report
        assert report.calibration_skipped is None
        assert set(report.estimated_seconds) == {"sequential", "multiprocess"}

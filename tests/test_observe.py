"""Feedback-driven adaptive planning (PR 9).

Covers the observation store's failure paths (corrupt / truncated /
wrong-schema disk entries, concurrent writers — all loud, never fatal),
the bounded first-chunk probe that frees unknown-length streams from
"assume large" pessimism, the warm re-plan that flips a mispriced
reduce-side join to broadcast from stored observations, and the mid-job
broadcast-overflow switch — the two acceptance scenarios asserted
byte-identical.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.codegen.base import view_records
from repro.compiler import translate
from repro.cost.observe import (
    Observation,
    ObservationStore,
    dataset_fingerprint,
    fragment_observation_key,
    harvest_observation,
)
from repro.engine.multiprocess import MapStep, MultiprocessEngine, ReduceStep
from repro.engine.source import GeneratorSource, ListSource
from repro.options import ExecOptions
from repro.session import Session
from repro.workloads import datagen

#: Integer-valued variant of the BENCH_pr5 misprice scenario: availqty ×
#: size instead of supplycost × size, so the joined fold is exact integer
#: arithmetic and broadcast / reduce-side / adapted runs are
#: byte-identical (float folds drift in the last ulp across strategies).
INT_JOIN_SOURCE = """
class PartSupp {
  int ps_partkey;
  int ps_suppkey;
  int ps_availqty;
}
class Part {
  int p_partkey;
  int p_size;
}

int joinQty(List<PartSupp> partsupp, List<Part> part) {
  int total = 0;
  for (PartSupp ps : partsupp) {
    for (Part p : part) {
      if (ps.ps_partkey == p.p_partkey) {
        total += ps.ps_availqty * p.p_size;
      }
    }
  }
  return total;
}
"""

#: Budget below the small side's bytes — forces the static rule to pick
#: reduce-side, the misprice the observation feedback must correct.
MISPRICE_BUDGET = 512

_COMPILED: dict[str, object] = {}


def compiled_join():
    if "join" not in _COMPILED:
        result = translate(INT_JOIN_SOURCE, "joinQty")
        fragment = result.fragments[0]
        assert fragment.translated, fragment.failure_reason
        _COMPILED["join"] = result
    return _COMPILED["join"]


@pytest.fixture
def join_program():
    """The compiled int-join program with feedback state reset.

    The compilation is cached module-wide (CEGIS is the expensive part);
    each test gets the program with a clean observation slate so tests
    stay order-independent.
    """
    fragment = compiled_join().fragments[0]
    program = fragment.program
    program.observations = None
    program.feedback_default = False
    yield program
    program.observations = None
    program.feedback_default = False


def join_inputs(size: int = 1500, seed: int = 7) -> dict:
    part, _supplier, partsupp = datagen.part_supplier_tables(
        parts=max(8, size // 40),
        suppliers=8,
        partsupps=size,
        seed=seed,
    )
    return {"partsupp": partsupp, "part": part}


def make_observation(**overrides) -> Observation:
    base = dict(fragment_key="frag", dataset_key="data", input_records=100)
    base.update(overrides)
    return Observation(**base)


# ----------------------------------------------------------------------
# Store failure paths: loud, never fatal


class TestStoreFailurePaths:
    def entry_path(self, store: ObservationStore) -> str:
        return store._disk_path("frag", "data")

    def test_round_trip_through_disk(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        store.record(make_observation(input_bytes=4096, spilled=True))
        fresh = ObservationStore(cache_dir=str(tmp_path))  # simulates restart
        got = fresh.lookup("frag", "data")
        assert got is not None
        assert got.input_records == 100
        assert got.input_bytes == 4096
        assert got.spilled is True
        assert fresh.last_note is None

    def test_corrupt_json_is_a_loud_miss(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        store.record(make_observation())
        with open(self.entry_path(store), "w") as handle:
            handle.write("{this is not json")
        fresh = ObservationStore(cache_dir=str(tmp_path))
        assert fresh.lookup("frag", "data") is None
        assert fresh.last_note is not None
        assert "corrupt JSON" in fresh.last_note

    def test_truncated_entry_is_a_loud_miss(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        store.record(make_observation())
        path = self.entry_path(store)
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[: len(content) // 2])  # torn write
        fresh = ObservationStore(cache_dir=str(tmp_path))
        assert fresh.lookup("frag", "data") is None
        assert "corrupt JSON" in (fresh.last_note or "")

    def test_schema_version_mismatch_is_a_loud_miss(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        path = self.entry_path(store)
        with open(path, "w") as handle:
            json.dump(
                {"format": 999, "observation": make_observation().as_dict()},
                handle,
            )
        assert store.lookup("frag", "data") is None
        assert "schema version mismatch" in (store.last_note or "")
        assert "999" in store.last_note

    def test_entry_missing_keys_is_a_loud_miss(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        path = self.entry_path(store)
        with open(path, "w") as handle:
            json.dump(
                {"format": 1, "observation": {"input_records": 5}}, handle
            )
        assert store.lookup("frag", "data") is None
        assert "malformed entry" in (store.last_note or "")

    def test_note_clears_on_next_clean_lookup(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        with open(self.entry_path(store), "w") as handle:
            handle.write("garbage")
        assert store.lookup("frag", "data") is None
        assert store.last_note is not None
        store.record(make_observation(fragment_key="other"))
        assert store.lookup("other", "data") is not None
        assert store.last_note is None  # per-lookup, not sticky
        assert len(store.notes) == 1  # ...but the history keeps it

    def test_concurrent_writers_race_benignly(self, tmp_path):
        store = ObservationStore(cache_dir=str(tmp_path))
        errors: list[BaseException] = []

        def write(worker: int) -> None:
            try:
                for round_index in range(20):
                    store.record(
                        make_observation(
                            input_records=worker * 1000 + round_index
                        )
                    )
            except BaseException as exc:  # pragma: no cover - the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(worker,)) for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Whatever write won, the surviving entry is complete and valid.
        fresh = ObservationStore(cache_dir=str(tmp_path))
        got = fresh.lookup("frag", "data")
        assert got is not None and got.input_records is not None
        assert fresh.last_note is None

    def test_capacity_evicts_lru(self):
        store = ObservationStore(capacity=2)
        store.record(make_observation(dataset_key="a"))
        store.record(make_observation(dataset_key="b"))
        store.record(make_observation(dataset_key="c"))
        assert len(store) == 2
        assert store.lookup("frag", "a") is None  # evicted, silent miss
        assert store.last_note is None

    def test_runs_counter_accumulates(self):
        store = ObservationStore()
        store.record(make_observation())
        store.record(make_observation())
        assert store.lookup("frag", "data").runs == 2


class TestFingerprints:
    def test_dataset_fingerprint_tracks_content(self):
        a = dataset_fingerprint({"xs": [1, 2, 3]})
        assert a == dataset_fingerprint({"xs": [1, 2, 3]})
        assert a != dataset_fingerprint({"xs": [1, 2, 4]})
        assert a != dataset_fingerprint({"xs": [1, 2, 3], "n": 3})

    def test_dataset_fingerprint_accepts_streams(self):
        stream = GeneratorSource(lambda: iter(range(10)))
        key = dataset_fingerprint({"xs": stream})
        assert key == dataset_fingerprint(
            {"xs": GeneratorSource(lambda: iter(range(10)))}
        )

    def test_fragment_key_is_stable(self):
        fragment = compiled_join().fragments[0]
        key = fragment_observation_key(
            fragment.analysis, fragment.program.programs[0].summary
        )
        assert key == fragment_observation_key(
            fragment.analysis, fragment.program.programs[0].summary
        )
        assert len(key) == 20


# ----------------------------------------------------------------------
# Satellite 1: bounded first-chunk probe on unknown-length streams


class TestStreamProbe:
    def test_probe_exhausting_caches_exact_length(self):
        source = GeneratorSource(lambda: iter(range(300)))
        assert source.known_length is None
        probe = source.probe(1024)
        assert probe.exhausted and probe.records == 300
        assert source.known_length == 300  # cached for the planner

    def test_probe_beyond_bound_stays_unknown(self):
        source = GeneratorSource(lambda: iter(range(10_000)))
        probe = source.probe(64)
        assert not probe.exhausted and probe.records == 64
        assert source.known_length is None

    def test_small_generator_no_longer_forces_spill(self, join_program):
        """Regression: a short unknown-length stream used to be priced
        'assume large' and pushed through the spill shuffle; the probe
        measures it and the plan stays in memory, results identical."""
        inputs = join_inputs(400)
        fragment = compiled_join().fragments[0]
        out_var = list(fragment.analysis.output_vars)[0]
        expected = join_program.run(dict(inputs), plan="sequential")[out_var]

        rows = list(view_records(fragment.analysis.view, dict(inputs)))
        got = join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=1 << 20,
            records=GeneratorSource(lambda: iter(rows)),
        )[out_var]
        report = join_program.last_plan_report
        assert got == expected
        assert report.plan.spill is False
        assert report.estimates["input_records"]["source"] == "observed"
        assert any("stream probe" in r for r in report.plan.reasons)

    def test_disabled_probe_keeps_assume_large(self, join_program):
        """Contrast: probe_records=0 restores the pessimistic pricing —
        the same short stream is planned 'assume large' and spills."""
        inputs = join_inputs(400)
        fragment = compiled_join().fragments[0]
        out_var = list(fragment.analysis.output_vars)[0]
        expected = join_program.run(dict(inputs), plan="sequential")[out_var]
        rows = list(view_records(fragment.analysis.view, dict(inputs)))

        join_program.run(dict(inputs), plan="auto")  # materialize the planner
        planner = join_program.planner
        assert planner is not None
        saved = planner.config.probe_records
        planner.config.probe_records = 0
        try:
            got = join_program.run(
                dict(inputs),
                plan="auto",
                memory_budget=1 << 20,
                records=GeneratorSource(lambda: iter(rows)),
            )[out_var]
        finally:
            planner.config.probe_records = saved
        report = join_program.last_plan_report
        assert got == expected  # pessimism costs time, never correctness
        assert report.plan.spill is True


class TestEngineStreamAdaptation:
    """Mid-job: the engine probes unknown-length input itself."""

    def run_engine(self, records, combine: bool):
        engine = MultiprocessEngine(
            processes=1, partitions=8, memory_budget=1 << 16
        )
        steps = [
            MapStep(lambda r: [(r % 5, r)]),
            ReduceStep(lambda a, b: a + b, combine=combine),
        ]
        return engine.run_pipeline(records, steps)

    def test_partitions_shrink_for_a_measured_short_stream(self):
        data = list(range(500))
        stream = GeneratorSource(lambda: iter(data))
        result = self.run_engine(stream, combine=False)
        kinds = [a["kind"] for a in result.adaptations]
        assert kinds == ["stream_partitions"]
        adaptation = result.adaptations[0]
        assert adaptation["records"] == 500
        assert adaptation["partitions_after"] < adaptation["partitions_before"]
        # Byte-identity with the known-length run is the whole point.
        reference = self.run_engine(ListSource(list(data)), combine=False)
        assert result.pairs == reference.pairs

    def test_combining_reduce_pins_the_partition_count(self):
        stream = GeneratorSource(lambda: iter(range(500)))
        result = self.run_engine(stream, combine=True)
        adaptation = result.adaptations[0]
        assert adaptation["kind"] == "stream_partitions"
        assert adaptation["partitions_after"] == adaptation["partitions_before"]
        assert "combine" in adaptation["note"]

    def test_long_streams_keep_pessimistic_settings(self):
        stream = GeneratorSource(lambda: iter(range(9000)))
        result = self.run_engine(stream, combine=False)
        assert result.adaptations[0]["kind"] == "stream_probe"
        assert result.adaptations[0]["exhausted"] is False


# ----------------------------------------------------------------------
# Acceptance: warm re-plan from stored observations


class TestWarmReplan:
    def test_second_run_flips_mispriced_join_to_broadcast(self, join_program):
        inputs = join_inputs(1500)
        out_var = list(compiled_join().fragments[0].analysis.output_vars)[0]

        cold = join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        cold_report = join_program.last_plan_report
        assert cold_report.plan.join_strategies == ("reduce_side",)

        warm = join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        warm_report = join_program.last_plan_report
        assert warm_report.plan.join_strategies == ("broadcast",)
        # Integer fold: byte-identical across the strategy flip.
        assert warm[out_var] == cold[out_var]
        # ...and byte-identical to a plain broadcast execution.
        reference = join_program.run(dict(inputs), plan="auto", feedback=False)
        assert warm[out_var] == reference[out_var]

        provenance = warm_report.estimates["join_strategy"]
        assert provenance["source"] == "observed"
        assert provenance["static"] == "reduce_side"
        assert provenance["used"] == "broadcast"
        assert (
            provenance["observed_shuffled_bytes"]
            > provenance["observed_right_bytes"]
        )
        # The raised broadcast limit keeps the mid-job guard from
        # instantly re-tripping on the side the observation justified.
        assert warm_report.plan.broadcast_limit >= MISPRICE_BUDGET
        assert any("re-priced from observation" in r for r in warm_report.plan.reasons)

    def test_feedback_off_replans_cold_every_time(self, join_program):
        inputs = join_inputs(1500)
        join_program.run(
            dict(inputs), plan="auto", memory_budget=MISPRICE_BUDGET
        )
        first = join_program.last_plan_report.plan.join_strategies
        join_program.run(
            dict(inputs), plan="auto", memory_budget=MISPRICE_BUDGET
        )
        assert join_program.last_plan_report.plan.join_strategies == first
        assert first == ("reduce_side",)
        assert join_program.observations is None  # no store ever created

    def test_changed_data_misses_the_observation(self, join_program):
        join_program.run(
            dict(join_inputs(1500, seed=7)),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        join_program.run(
            dict(join_inputs(1500, seed=8)),  # different content
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        report = join_program.last_plan_report
        # Fresh data → no stored evidence → the static rule stands.
        assert report.plan.join_strategies == ("reduce_side",)

    def test_corrupt_store_entry_falls_back_loudly(self, join_program, tmp_path):
        inputs = join_inputs(1500)
        join_program.observations = ObservationStore(cache_dir=str(tmp_path))
        join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        entries = [n for n in os.listdir(tmp_path) if n.endswith(".json")]
        assert len(entries) == 1
        with open(os.path.join(tmp_path, entries[0]), "w") as handle:
            handle.write("{torn")
        # New store over the same dir: the memory tier is gone, the disk
        # entry is corrupt — the run must fall back to static estimates
        # and say so in the report, not crash.
        join_program.observations = ObservationStore(cache_dir=str(tmp_path))
        join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        report = join_program.last_plan_report
        assert report.plan.join_strategies == ("reduce_side",)  # static
        fallback = report.estimates["fallback"]
        assert fallback["source"] == "static"
        assert "corrupt JSON" in fallback["note"]
        assert any("static estimates in effect" in r for r in report.plan.reasons)


# ----------------------------------------------------------------------
# Acceptance: mid-job broadcast-overflow switch


class TestMidJobSwitch:
    def test_overflowing_build_switches_to_reduce_side(
        self, join_program, monkeypatch
    ):
        inputs = join_inputs(1500)
        out_var = list(compiled_join().fragments[0].analysis.output_vars)[0]
        reference = join_program.run(
            dict(inputs), plan="auto", memory_budget=MISPRICE_BUDGET
        )[out_var]

        import repro.codegen.joins as joins_mod

        monkeypatch.setattr(
            joins_mod, "sizeof_pair", lambda key, value: 1 << 40
        )
        switched = join_program.run(dict(inputs), plan="auto")
        report = join_program.last_plan_report
        assert report.plan.join_strategies == ("broadcast",)  # the plan...
        adaptation = report.adaptations[0]
        assert adaptation["kind"] == "broadcast_overflow"  # ...adapted
        assert adaptation["switched_to"] == "reduce_side"
        assert adaptation["observed_bytes"] > adaptation["limit"]
        # The join evidence describes what actually ran.
        level = report.join["levels"][0]
        assert level["strategy"] == "reduce_side"
        assert "overflowed" in level["reason"]
        # Byte-identical to the reduce-side execution it switched into.
        assert switched[out_var] == reference

    def test_observed_limit_guards_the_warm_broadcast(self, join_program):
        """The warm re-plan raises broadcast_limit above the observed
        side bytes, so the guard does not re-trip on the very side the
        observation justified."""
        inputs = join_inputs(1500)
        join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        join_program.run(
            dict(inputs),
            plan="auto",
            memory_budget=MISPRICE_BUDGET,
            feedback=True,
        )
        report = join_program.last_plan_report
        assert report.plan.join_strategies == ("broadcast",)
        assert report.adaptations == []  # no overflow switch fired


# ----------------------------------------------------------------------
# Serve: sessions accumulate observations across jobs


class TestSessionObserve:
    def test_session_self_tunes_run_over_run(self, join_program):
        inputs = join_inputs(1500)
        options = ExecOptions(memory_budget=MISPRICE_BUDGET)
        with Session(max_workers=0) as session:
            program = session.registry.adopt(compiled_join())
            first = session.run(program, dict(inputs), options, fragment_index=0)
            assert first.ok, first.error
            assert first.plan_report.plan.join_strategies == ("reduce_side",)
            second = session.run(
                program, dict(inputs), options, fragment_index=0
            )
            assert second.ok, second.error
            assert second.plan_report.plan.join_strategies == ("broadcast",)
            assert (
                second.plan_report.estimates["join_strategy"]["source"]
                == "observed"
            )
            assert second.outputs == first.outputs

    def test_observe_false_keeps_runs_independent(self, join_program):
        inputs = join_inputs(1500)
        options = ExecOptions(memory_budget=MISPRICE_BUDGET)
        with Session(max_workers=0, observe=False) as session:
            program = session.registry.adopt(compiled_join())
            session.run(program, dict(inputs), options, fragment_index=0)
            second = session.run(
                program, dict(inputs), options, fragment_index=0
            )
            assert second.plan_report.plan.join_strategies == ("reduce_side",)

    def test_per_job_feedback_override_wins(self, join_program):
        inputs = join_inputs(1500)
        with Session(max_workers=0) as session:
            program = session.registry.adopt(compiled_join())
            opted_out = ExecOptions(
                memory_budget=MISPRICE_BUDGET, feedback=False
            )
            session.run(program, dict(inputs), opted_out, fragment_index=0)
            second = session.run(
                program, dict(inputs), opted_out, fragment_index=0
            )
            # feedback=False per job: nothing recorded, nothing resolved.
            assert second.plan_report.plan.join_strategies == ("reduce_side",)

    def test_observations_survive_a_restart(self, join_program, tmp_path):
        inputs = join_inputs(1500)
        options = ExecOptions(memory_budget=MISPRICE_BUDGET)
        with Session(max_workers=0, cache_dir=str(tmp_path)) as session:
            program = session.registry.adopt(compiled_join())
            session.run(program, dict(inputs), options, fragment_index=0)
        obs_dir = os.path.join(tmp_path, "observations")
        assert os.path.isdir(obs_dir) and os.listdir(obs_dir)
        with Session(max_workers=0, cache_dir=str(tmp_path)) as session:
            program = session.registry.adopt(compiled_join())
            warm = session.run(program, dict(inputs), options, fragment_index=0)
            assert warm.plan_report.plan.join_strategies == ("broadcast",)


# ----------------------------------------------------------------------
# Harvest details


class TestHarvest:
    def test_harvest_captures_stage_evidence(self, join_program):
        inputs = join_inputs(1500)
        join_program.run(
            dict(inputs), plan="auto", memory_budget=MISPRICE_BUDGET
        )
        report = join_program.last_plan_report
        outcome = join_program.last_outcome
        observation = harvest_observation("f", "d", report, outcome)
        assert observation.stages, "no stage rows harvested"
        names = [row["name"] for row in observation.stages]
        assert "scan" in names
        assert any(name.startswith("shuffle.") for name in names)
        assert observation.join_levels[0]["strategy"] == "reduce_side"
        assert observation.join_levels[0]["right_bytes"] > 0
        assert observation.join_selectivity is not None
        assert 0 < observation.join_selectivity <= 1
        assert observation.key_ratios

"""Tests for the IR: nodes, evaluator, map/reduce/join semantics, fold ext."""

import pytest

from repro.errors import IRError
from repro.ir import (
    FoldStage,
    FoldSummary,
    builder,
    eval_expr,
    evaluate_fold,
    evaluate_summary,
    expr_size,
    expr_vars,
    fold_to_mapreduce,
    format_summary,
    run_join,
    run_map,
    run_reduce,
)
from repro.ir.builder import (
    add,
    and_,
    cond,
    const,
    div,
    emit,
    eq,
    lt,
    map_stage,
    max_,
    mul,
    pipeline,
    proj,
    reduce_stage,
    scalar_output,
    summary,
    tup,
    var,
    whole_output,
)
from repro.ir.nodes import Const, Var


class TestExprEval:
    def test_arithmetic(self):
        expr = add(mul(const(3), var("x")), const(1))
        assert eval_expr(expr, {"x": 4}) == 13

    def test_java_int_division(self):
        expr = div(var("a"), var("b"))
        assert eval_expr(expr, {"a": -7, "b": 2}) == -3

    def test_float_division(self):
        expr = div(const(7.0), const(2.0))
        assert eval_expr(expr, {}) == 3.5

    def test_division_by_zero_raises_irerror(self):
        with pytest.raises(IRError):
            eval_expr(div(const(1), const(0)), {})

    def test_conditional(self):
        expr = cond(lt(var("x"), const(0)), const(-1), const(1))
        assert eval_expr(expr, {"x": -5}) == -1
        assert eval_expr(expr, {"x": 5}) == 1

    def test_tuple_and_projection(self):
        expr = proj(tup(var("a"), var("b")), 1)
        assert eval_expr(expr, {"a": 1, "b": 2}) == 2

    def test_short_circuit_logic(self):
        expr = and_(eq(var("x"), const(0)), lt(const(0), var("x")))
        assert eval_expr(expr, {"x": 0}) is False

    def test_library_functions(self):
        assert eval_expr(max_(const(3), const(7)), {}) == 7
        assert eval_expr(builder.min_(const(3), const(7)), {}) == 3

    def test_lookup_function(self):
        from repro.ir.nodes import CallFn

        expr = CallFn("lookup", (var("arr"), var("i")))
        assert eval_expr(expr, {"arr": [10, 20, 30], "i": 2}) == 30

    def test_unbound_variable_raises(self):
        with pytest.raises(IRError):
            eval_expr(var("nope"), {})

    def test_expr_vars_and_size(self):
        expr = add(mul(var("x"), var("y")), var("x"))
        assert expr_vars(expr) == {"x", "y"}
        assert expr_size(expr) == 2


class TestOperatorSemantics:
    def test_run_map_emits_union(self):
        lam = builder.map_lambda(("v",), emit(var("v"), const(1)))
        pairs = run_map([{"v": "a"}, {"v": "b"}, {"v": "a"}], lam, {})
        assert pairs == [("a", 1), ("b", 1), ("a", 1)]

    def test_run_map_guarded_emit(self):
        lam = builder.map_lambda(
            ("v",), emit(const("k"), var("v"), when=lt(const(0), var("v")))
        )
        pairs = run_map([{"v": 5}, {"v": -3}, {"v": 2}], lam, {})
        assert pairs == [("k", 5), ("k", 2)]

    def test_run_map_multiple_emits(self):
        lam = builder.map_lambda(
            ("v",), emit(const("a"), var("v")), emit(const("b"), mul(var("v"), const(2)))
        )
        pairs = run_map([{"v": 3}], lam, {})
        assert pairs == [("a", 3), ("b", 6)]

    def test_run_reduce_groups_by_key(self):
        lam = builder.reduce_lambda(add(var("v1"), var("v2")))
        result = run_reduce([("a", 1), ("b", 5), ("a", 2)], lam, {})
        assert dict(result) == {"a": 3, "b": 5}

    def test_run_reduce_fold_order_is_dataset_order(self):
        # Non-commutative λr: keep-first semantics distinguishes order.
        lam = builder.reduce_lambda(var("v1"))
        result = run_reduce([("k", 10), ("k", 20), ("k", 30)], lam, {})
        assert result == [("k", 10)]

    def test_run_join_matches_keys(self):
        left = [(1, "a"), (2, "b")]
        right = [(1, "x"), (1, "y"), (3, "z")]
        assert run_join(left, right) == [(1, ("a", "x")), (1, ("a", "y"))]


class TestSummaryEvaluation:
    def test_row_wise_mean_summary(self):
        s = builder.row_wise_mean_summary()
        datasets = {
            "mat": [
                {"i": 0, "j": 0, "v": 2},
                {"i": 0, "j": 1, "v": 4},
                {"i": 1, "j": 0, "v": 10},
                {"i": 1, "j": 1, "v": 20},
            ]
        }
        out = evaluate_summary(s, datasets, {"cols": 2}, output_sizes={"m": 2})
        assert out == {"m": [3, 15]}

    def test_scalar_output_default_on_empty(self):
        s = summary(
            pipeline(
                "d",
                map_stage(("v",), emit(const("total"), var("v"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=0),
        )
        assert evaluate_summary(s, {"d": []}, {}) == {"total": 0}

    def test_projection_binding(self):
        from repro.ir.nodes import OutputBinding

        s = summary(
            pipeline(
                "d",
                map_stage(("v",), emit(const("t"), tup(var("v"), mul(var("v"), const(2))))),
                reduce_stage(tup(add(proj(var("v1"), 0), proj(var("v2"), 0)),
                                 add(proj(var("v1"), 1), proj(var("v2"), 1)))),
            ),
            OutputBinding(var="a", kind="keyed", key=const("t"), default=0, project=0),
            OutputBinding(var="b", kind="keyed", key=const("t"), default=0, project=1),
        )
        out = evaluate_summary(s, {"d": [{"v": 1}, {"v": 2}]}, {})
        assert out == {"a": 3, "b": 6}

    def test_map_container_output(self):
        s = summary(
            pipeline(
                "words",
                map_stage(("w",), emit(var("w"), const(1))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            whole_output("counts", container="map", default=None),
        )
        data = [{"w": w} for w in ["a", "b", "a"]]
        assert evaluate_summary(s, {"words": data}, {}) == {"counts": {"a": 2, "b": 1}}

    def test_bag_container_preserves_order(self):
        s = summary(
            pipeline("d", map_stage(("v",), emit(const(0), mul(var("v"), const(2))))),
            whole_output("out", container="bag", default=None),
        )
        data = [{"v": v} for v in [3, 1, 2]]
        assert evaluate_summary(s, {"d": data}, {}) == {"out": [6, 2, 4]}

    def test_format_summary_mentions_stages(self):
        text = format_summary(builder.row_wise_mean_summary())
        assert "map(reduce(map(mat" in text
        assert "λr" in text

    def test_summaries_hashable_for_blocking(self):
        a = builder.row_wise_mean_summary()
        b = builder.row_wise_mean_summary()
        assert hash(a) == hash(b)
        assert a == b


class TestFoldExtension:
    def test_evaluate_fold(self):
        fold = FoldSummary(
            source="d",
            stage=FoldStage(init=Const(0, "int"), acc_param="acc",
                            body=add(var("acc"), var("v"))),
            output_var="total",
        )
        data = [{"v": v} for v in [1, 2, 3]]
        assert evaluate_fold(fold, {"d": data}, {}) == 6

    def test_fold_lowering_to_mapreduce(self):
        fold = FoldSummary(
            source="d",
            stage=FoldStage(init=Const(0, "int"), acc_param="acc",
                            body=add(var("acc"), var("v"))),
            output_var="total",
        )
        lowered = fold_to_mapreduce(fold, var("v"), add(var("v1"), var("v2")))
        data = [{"v": v} for v in [4, 5, 6]]
        out = evaluate_summary(lowered, {"d": data}, {})
        assert out["total"] == 15
        assert out["total"] == evaluate_fold(fold, {"d": data}, {})

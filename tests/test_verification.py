"""Tests for verification: symexec, bounded checking, and the prover."""

import pytest

from repro.errors import VerificationError
from repro.ir import builder
from repro.ir.builder import (
    add,
    const,
    div,
    emit,
    map_stage,
    max_,
    min_,
    pipeline,
    reduce_stage,
    scalar_output,
    summary,
    var,
    whole_output,
)
from repro.lang.parser import parse_function, parse_program
from repro.verification import (
    BoundedCheckConfig,
    BoundedChecker,
    FullVerifier,
    StateGenerator,
    SymbolicExecutor,
    check_reduce_properties,
    generate_vcs,
    run_sequential_fragment,
)
from repro.ir.nodes import ReduceLambda, Var
from repro.verification.algebra import normalize, term_key


class TestSymbolicExecution:
    def exec_body(self, source, bindings, containers=frozenset()):
        func = parse_function(source)
        executor = SymbolicExecutor(dict(bindings), set(containers))
        return executor.execute(func.body.stmts)

    def test_straight_line_update(self):
        paths = self.exec_body(
            "int f(int v) { acc = acc + v; }",
            {"acc": Var("acc"), "v": Var("v")},
        )
        assert len(paths) == 1
        assert term_key(normalize(paths[0].scalars["acc"])) == term_key(
            normalize(add(var("acc"), var("v")))
        )

    def test_branching_creates_paths(self):
        paths = self.exec_body(
            "int f(int v) { if (v > acc) acc = v; }",
            {"acc": Var("acc"), "v": Var("v")},
        )
        assert len(paths) == 2
        conditions = {p.path[0][1] for p in paths}
        assert conditions == {True, False}

    def test_local_declaration_tracked(self):
        paths = self.exec_body(
            "int f(int v) { int t = v * 2; acc = acc + t; }",
            {"acc": Var("acc"), "v": Var("v")},
        )
        assert term_key(normalize(paths[0].scalars["acc"])) == term_key(
            normalize(add(var("acc"), builder.mul(const(2), var("v"))))
        )

    def test_container_write_recorded(self):
        paths = self.exec_body(
            "int f(int v) { h[v] = h[v] + 1; }",
            {"v": Var("v")},
            containers={"h"},
        )
        writes = paths[0].writes["h"]
        assert len(writes) == 1
        key, value = writes[0]
        assert term_key(normalize(key)) == term_key(normalize(var("v")))

    def test_cell_read_before_write_is_symbolic(self):
        paths = self.exec_body(
            "int f(int v) { h[v] = h[v] + 1; }",
            {"v": Var("v")},
            containers={"h"},
        )
        assert len(paths[0].cell_reads) == 1

    def test_nested_loop_rejected(self):
        with pytest.raises(VerificationError):
            self.exec_body(
                "int f(int v) { for (int i = 0; i < v; i++) acc = acc + 1; }",
                {"acc": Var("acc"), "v": Var("v")},
            )


class TestBoundedChecking:
    def test_counterexample_for_wrong_summary(self, sum_analysis):
        checker = BoundedChecker(sum_analysis)
        wrong = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("total"), builder.mul(var("data"), const(2)))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=0),
        )
        assert checker.check(wrong) is not None

    def test_correct_summary_passes(self, sum_analysis):
        checker = BoundedChecker(sum_analysis)
        correct = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("total"), var("data"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=0),
        )
        assert checker.check(correct) is None

    def test_bounded_domain_blind_spot(self, max_analysis):
        """min(4, v) == v inside the bounded domain — must pass here."""
        checker = BoundedChecker(max_analysis, config=BoundedCheckConfig(int_range=(-4, 4)))
        sneaky = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("best"), min_(const(4), var("data")))),
                reduce_stage(max_(var("v1"), var("v2"))),
            ),
            scalar_output("best", default=-(2**31)),
        )
        assert checker.check(sneaky) is None  # undetectably wrong here

    def test_states_respect_loop_bounds(self, rwm_analysis):
        generator = StateGenerator(rwm_analysis)
        for _ in range(10):
            state = generator.generate()
            assert state.inputs["rows"] == len(state.inputs["mat"])

    def test_empty_state_has_empty_dataset(self, sum_analysis):
        generator = StateGenerator(sum_analysis)
        state = generator.empty_state()
        assert state.inputs["data"] == []
        assert state.inputs["n"] == 0

    def test_sequential_fragment_run(self, sum_analysis):
        from repro.verification.bounded import ProgramState

        run = run_sequential_fragment(
            sum_analysis, ProgramState({"data": [1, 2, 3], "n": 3})
        )
        assert run.outputs == {"total": 6}


class TestReduceProperties:
    def test_addition_is_ca(self):
        lam = ReduceLambda(add(var("v1"), var("v2")))
        assert check_reduce_properties(lam) == (True, True)

    def test_max_is_ca(self):
        lam = ReduceLambda(max_(var("v1"), var("v2")))
        assert check_reduce_properties(lam) == (True, True)

    def test_keep_first_is_associative_not_commutative(self):
        lam = ReduceLambda(var("v1"))
        commutative, associative = check_reduce_properties(lam)
        assert not commutative
        assert associative

    def test_subtraction_is_neither(self):
        lam = ReduceLambda(builder.sub(var("v1"), var("v2")))
        assert check_reduce_properties(lam) == (False, False)


class TestFullVerifier:
    def test_proves_correct_sum(self, sum_analysis):
        verifier = FullVerifier(sum_analysis)
        correct = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("total"), var("data"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=0),
        )
        result = verifier.verify(correct)
        assert result.status == "proved"
        assert "step" in result.obligations

    def test_refutes_bounded_domain_artifact(self, max_analysis):
        """The paper's §4.1 example: verifier failure caught by phase two."""
        verifier = FullVerifier(max_analysis)
        sneaky = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("best"), min_(const(4), var("data")))),
                reduce_stage(max_(var("v1"), var("v2"))),
            ),
            scalar_output("best", default=-(2**31)),
        )
        result = verifier.verify(sneaky)
        assert result.status == "refuted"
        assert result.counterexample is not None

    def test_rejects_wrong_initiation(self, sum_analysis):
        verifier = FullVerifier(sum_analysis)
        wrong_default = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("total"), var("data"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=99),
        )
        result = verifier.verify(wrong_default)
        assert result.status in ("refuted", "unknown")
        assert result.status != "proved"

    def test_proves_nested_rwm(self, rwm_analysis):
        verifier = FullVerifier(rwm_analysis)
        result = verifier.verify(builder.row_wise_mean_summary())
        assert result.status == "proved"
        assert "finalizer" in result.obligations

    def test_rejects_wrong_finalizer(self, rwm_analysis):
        verifier = FullVerifier(rwm_analysis)
        wrong = summary(
            pipeline(
                "mat",
                map_stage(("i", "j", "v"), emit(var("i"), var("v"))),
                reduce_stage(add(var("v1"), var("v2"))),
                map_stage(("k", "v"), emit(var("k"), div(var("v"), var("rows")))),
            ),
            whole_output("m", container="array", default=0),
        )
        assert verifier.verify(wrong).status != "proved"

    def test_accepts_flag_controls_unknown(self, sum_analysis):
        from repro.verification.prover import ProofResult

        strict = FullVerifier(sum_analysis, accept_bounded_only=False)
        lenient = FullVerifier(sum_analysis, accept_bounded_only=True)
        unknown = ProofResult(status="unknown")
        assert not strict.accepts(unknown)
        assert lenient.accepts(unknown)


class TestVCGeneration:
    def test_vcs_have_three_clauses(self, rwm_analysis):
        vcs = generate_vcs(rwm_analysis, builder.row_wise_mean_summary())
        names = [c.name for c in vcs.conditions]
        assert names == ["initiation", "continuation", "termination"]

    def test_nested_loop_gets_two_invariants(self, rwm_analysis):
        vcs = generate_vcs(rwm_analysis, builder.row_wise_mean_summary())
        assert len(vcs.invariants) == 2

    def test_rendering_mentions_prefix(self, rwm_analysis):
        vcs = generate_vcs(rwm_analysis, builder.row_wise_mean_summary())
        text = vcs.render()
        assert "mat[0..i]" in text
        assert "Initiation" in text

"""Unit tests for the mini-Java reference interpreter."""

import pytest

from repro.errors import InterpreterError
from repro.lang import Instance, parse_date, run_function
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert run_function("int f() { return -7 / 2; }", "f", []) == -3
        assert run_function("int f() { return 7 / 2; }", "f", []) == 3

    def test_integer_remainder_sign(self):
        assert run_function("int f() { return -7 % 2; }", "f", []) == -1
        assert run_function("int f() { return 7 % -2; }", "f", []) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            run_function("int f() { return 1 / 0; }", "f", [])

    def test_mixed_arithmetic_widens(self):
        assert run_function("double f() { return 7 / 2.0; }", "f", []) == 3.5

    def test_string_concatenation(self):
        assert run_function('String f() { return "a" + 1; }', "f", []) == "a1"

    def test_bitwise_operators(self):
        assert run_function("int f() { return (5 & 3) | (4 ^ 1); }", "f", []) == (5 & 3) | (4 ^ 1)

    def test_shift_operators(self):
        assert run_function("int f() { return 1 << 4; }", "f", []) == 16

    def test_short_circuit_and(self):
        source = "boolean f(int x) { return x != 0 && 10 / x > 1; }"
        assert run_function(source, "f", [0]) is False  # no division fault


class TestControlFlow:
    def test_for_loop_accumulation(self):
        source = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }"
        assert run_function(source, "f", [10]) == 55

    def test_while_with_break(self):
        source = """
        int f() {
          int i = 0;
          while (true) { if (i >= 5) break; i++; }
          return i;
        }
        """
        assert run_function(source, "f", []) == 5

    def test_continue_skips(self):
        source = """
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++) { if (i % 2 == 0) continue; s += i; }
          return s;
        }
        """
        assert run_function(source, "f", [10]) == 1 + 3 + 5 + 7 + 9

    def test_do_while_runs_once(self):
        source = "int f() { int i = 0; do i++; while (false); return i; }"
        assert run_function(source, "f", []) == 1

    def test_nested_loops(self):
        source = """
        int f(int n) {
          int c = 0;
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              c++;
          return c;
        }
        """
        assert run_function(source, "f", [4]) == 16

    def test_foreach_over_list(self):
        source = "int f(List<int> xs) { int s = 0; for (int x : xs) s += x; return s; }"
        assert run_function(source, "f", [[1, 2, 3, 4]]) == 10

    def test_infinite_loop_guard(self):
        interp = Interpreter(parse_program("int f() { while (true) { } return 0; }"), max_steps=10_000)
        with pytest.raises(InterpreterError):
            interp.call_function("f", [])


class TestDataStructures:
    def test_array_allocation_and_store(self):
        source = """
        int[] f(int n) {
          int[] a = new int[n];
          for (int i = 0; i < n; i++) a[i] = i * i;
          return a;
        }
        """
        assert run_function(source, "f", [4]) == [0, 1, 4, 9]

    def test_2d_array(self):
        source = """
        int f() {
          int[][] m = new int[2][3];
          m[1][2] = 7;
          return m[1][2] + m[0][0];
        }
        """
        assert run_function(source, "f", []) == 7

    def test_array_bounds_checked(self):
        with pytest.raises(InterpreterError):
            run_function("int f(int[] a) { return a[5]; }", "f", [[1, 2]])

    def test_map_operations(self):
        source = """
        int f() {
          Map<String, Integer> m = new HashMap<String, Integer>();
          m.put("a", 1);
          m.put("a", m.getOrDefault("a", 0) + 10);
          return m.get("a");
        }
        """
        assert run_function(source, "f", []) == 11

    def test_set_operations(self):
        source = """
        int f(List<int> xs) {
          Set<int> s = new HashSet<int>();
          for (int x : xs) s.add(x);
          return s.size();
        }
        """
        assert run_function(source, "f", [[1, 2, 2, 3, 3, 3]]) == 3

    def test_list_add_get(self):
        source = """
        int f() {
          List<int> xs = new ArrayList<int>();
          xs.add(5);
          xs.add(7);
          return xs.get(1);
        }
        """
        assert run_function(source, "f", []) == 7

    def test_user_class_instance(self):
        source = """
        class P { int x; int y; }
        int f() {
          P p = new P(3, 4);
          p.x = p.x + 1;
          return p.x * p.y;
        }
        """
        assert run_function(source, "f", []) == 16

    def test_instance_argument(self):
        source = "class P { int x; } int f(P p) { return p.x; }"
        assert run_function(source, "f", [Instance("P", {"x": 9})]) == 9


class TestLibraryMethods:
    def test_math_methods(self):
        assert run_function("int f() { return Math.abs(-4) + Math.max(1, 2); }", "f", []) == 6
        assert run_function("double f() { return Math.sqrt(9.0); }", "f", []) == 3.0

    def test_math_sqrt_negative_is_nan(self):
        result = run_function("double f() { return Math.sqrt(-1.0); }", "f", [])
        assert result != result  # NaN

    def test_integer_constants(self):
        assert run_function("int f() { return Integer.MAX_VALUE; }", "f", []) == 2**31 - 1

    def test_string_methods(self):
        source = 'boolean f(String s) { return s.toLowerCase().startsWith("ab"); }'
        assert run_function(source, "f", ["ABc"]) is True

    def test_string_split(self):
        source = 'int f(String s) { return s.split(" ").length; }'
        assert run_function(source, "f", ["a b c"]) == 3

    def test_date_comparison(self):
        source = """
        boolean f(Date d) {
          Date cutoff = Util.parseDate("2000-01-01");
          return d.before(cutoff);
        }
        """
        assert run_function(source, "f", [parse_date("1999-12-31")]) is True
        assert run_function(source, "f", [parse_date("2000-01-02")]) is False

    def test_user_function_call(self):
        source = """
        int sq(int x) { return x * x; }
        int f(int a) { return sq(a) + sq(a + 1); }
        """
        program = parse_program(source)
        assert Interpreter(program).call_function("f", [2]) == 4 + 9

    def test_counters_track_operations(self):
        program = parse_program("int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }")
        interp = Interpreter(program)
        interp.call_function("f", [100])
        assert interp.counters.loop_iterations == 100
        assert interp.counters.arith_ops > 100

"""Affinity-aware CPU detection (containers/CI pin processes to cores)."""

from __future__ import annotations

import os

from repro.cpu import available_cpu_count
from repro.engine.multiprocess import default_process_count
from repro.pipeline.scheduler import default_worker_count


class TestAvailableCpuCount:
    def test_positive_on_this_host(self):
        assert available_cpu_count() >= 1

    def test_honors_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
        assert available_cpu_count() == 3

    def test_affinity_narrower_than_cpu_count_wins(self, monkeypatch):
        # The cgroup/affinity mask must take precedence over the
        # machine-wide count — this is the container over-subscription
        # bug: os.cpu_count() says 64, the runner granted 2.
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpu_count() == 2

    def test_falls_back_without_affinity_support(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity")
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_cpu_count() == 6

    def test_never_returns_zero(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set())
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_cpu_count() == 1


class TestConsumers:
    def test_engine_process_count_uses_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2, 3})
        monkeypatch.setattr(os, "cpu_count", lambda: 128)
        assert default_process_count() == 4

    def test_scheduler_worker_count_uses_affinity_and_cap(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        monkeypatch.setattr(os, "cpu_count", lambda: 128)
        assert default_worker_count() == 2
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(32)))
        assert default_worker_count() == 8  # synthesis cap stays

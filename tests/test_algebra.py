"""Tests for the term algebra: normalization, assumptions, properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import (
    add,
    and_,
    cond,
    const,
    div,
    lt,
    max_,
    min_,
    mul,
    or_,
    proj,
    sub,
    tup,
    var,
)
from repro.ir.eval import eval_expr
from repro.ir.nodes import BinOp, Const, UnOp, Var
from repro.verification.algebra import (
    INT_MAX,
    INT_MIN,
    Normalizer,
    assignment_feasible,
    collect_atoms,
    normalize,
    substitute,
    term_key,
    terms_equal,
)


class TestSumNormalization:
    def test_commutativity(self):
        assert terms_equal(add(var("a"), var("b")), add(var("b"), var("a")))

    def test_associativity(self):
        left = add(add(var("a"), var("b")), var("c"))
        right = add(var("a"), add(var("b"), var("c")))
        assert terms_equal(left, right)

    def test_coefficient_collection(self):
        assert terms_equal(add(var("x"), var("x")), mul(const(2), var("x")))

    def test_subtraction_cancels(self):
        assert terms_equal(sub(add(var("x"), var("y")), var("y")), var("x"))

    def test_additive_identity(self):
        assert terms_equal(add(var("x"), const(0)), var("x"))

    def test_constant_folding(self):
        assert normalize(add(const(2), const(3))) == Const(5, "int")

    def test_string_concat_not_commuted(self):
        a = add(Const("a", "String"), Var("s", "String"))
        b = add(Var("s", "String"), Const("a", "String"))
        assert not terms_equal(a, b)


class TestProductNormalization:
    def test_commutativity(self):
        assert terms_equal(mul(var("a"), var("b")), mul(var("b"), var("a")))

    def test_multiplicative_zero(self):
        assert normalize(mul(var("x"), const(0))) == Const(0, "int")

    def test_multiplicative_identity(self):
        assert terms_equal(mul(var("x"), const(1)), var("x"))

    def test_distribution_not_assumed(self):
        # (a+b)*c and a*c+b*c normalize differently (no distribution) —
        # but both are still stable under re-normalization.
        left = mul(add(var("a"), var("b")), var("c"))
        assert term_key(normalize(left)) == term_key(normalize(normalize(left)))

    def test_division_by_one(self):
        assert terms_equal(div(var("x"), const(1)), var("x"))

    def test_int_division_not_simplified(self):
        # (a/2)*2 != a under Java int division: must not normalize equal.
        assert not terms_equal(mul(div(var("a"), const(2)), const(2)), var("a"))


class TestBooleanNormalization:
    def test_and_commutative(self):
        assert terms_equal(and_(var("p", "boolean"), var("q", "boolean")),
                           and_(var("q", "boolean"), var("p", "boolean")))

    def test_idempotence(self):
        p = var("p", "boolean")
        assert terms_equal(and_(p, p), p)

    def test_identity_elements(self):
        p = var("p", "boolean")
        assert terms_equal(and_(p, const(True)), p)
        assert terms_equal(or_(p, const(False)), p)

    def test_absorbing_elements(self):
        p = var("p", "boolean")
        assert normalize(and_(p, const(False))) == Const(False, "boolean")
        assert normalize(or_(p, const(True))) == Const(True, "boolean")

    def test_complement_detection(self):
        atom = lt(var("a"), var("b"))
        negated = UnOp("!", atom)
        assert normalize(and_(atom, negated)) == Const(False, "boolean")
        assert normalize(or_(atom, negated)) == Const(True, "boolean")

    def test_comparison_canonicalization(self):
        gt = BinOp(">", var("a"), var("b"))
        lt_flip = BinOp("<", var("b"), var("a"))
        assert terms_equal(gt, lt_flip)

    def test_reflexive_comparison_folds(self):
        assert normalize(BinOp("<=", var("x"), var("x"))) == Const(True, "boolean")
        assert normalize(BinOp("<", var("x"), var("x"))) == Const(False, "boolean")

    def test_double_negation(self):
        p = lt(var("a"), var("b"))
        assert terms_equal(UnOp("!", UnOp("!", p)), p)


class TestMinMax:
    def test_min_flatten_and_commute(self):
        assert terms_equal(min_(min_(var("a"), var("b")), var("c")),
                           min_(var("a"), min_(var("c"), var("b"))))

    def test_min_identity_element(self):
        assert terms_equal(min_(Const(INT_MAX, "int"), var("x")), var("x"))

    def test_max_identity_element(self):
        assert terms_equal(max_(Const(INT_MIN, "int"), var("x")), var("x"))

    def test_min_resolution_under_assumption(self):
        atom = normalize(lt(var("a"), var("b")))
        normalizer = Normalizer({term_key(atom): True})
        assert term_key(normalizer.normalize(min_(var("a"), var("b")))) == term_key(var("a"))
        assert term_key(normalizer.normalize(max_(var("a"), var("b")))) == term_key(var("b"))

    def test_min_idempotent(self):
        assert terms_equal(min_(var("x"), var("x")), var("x"))


class TestConditionals:
    def test_cond_constant_selection(self):
        expr = cond(const(True), var("a"), var("b"))
        assert terms_equal(expr, var("a"))

    def test_cond_same_branches_collapse(self):
        expr = cond(lt(var("a"), var("b")), var("x"), var("x"))
        assert terms_equal(expr, var("x"))

    def test_cond_resolved_by_assumption(self):
        atom = normalize(lt(var("a"), var("b")))
        normalizer = Normalizer({term_key(atom): False})
        expr = cond(lt(var("a"), var("b")), var("x"), var("y"))
        assert term_key(normalizer.normalize(expr)) == term_key(var("y"))

    def test_tuple_eta_reduction(self):
        t = var("t")
        expr = tup(proj(t, 0), proj(t, 1))
        assert terms_equal(expr, t)


class TestAtomsAndAssignments:
    def test_collect_atoms_from_guard(self):
        guard = and_(lt(var("a"), var("b")), lt(const(0), var("c")))
        atoms = collect_atoms(guard)
        assert len(atoms) == 2

    def test_collect_boolean_var_atom(self):
        expr = cond(var("flag", "boolean"), var("x"), var("y"))
        atoms = collect_atoms(expr)
        assert any(isinstance(a, Var) for a in atoms)

    def test_infeasible_assignment_rejected(self):
        a_lt_b = normalize(lt(var("a"), var("b")))
        b_lt_a = normalize(lt(var("b"), var("a")))
        atoms = [a_lt_b, b_lt_a]
        both_true = {term_key(a_lt_b): True, term_key(b_lt_a): True}
        assert not assignment_feasible(atoms, both_true)

    def test_feasible_assignment_accepted(self):
        a_lt_b = normalize(lt(var("a"), var("b")))
        b_lt_a = normalize(lt(var("b"), var("a")))
        atoms = [a_lt_b, b_lt_a]
        one_true = {term_key(a_lt_b): True, term_key(b_lt_a): False}
        assert assignment_feasible(atoms, one_true)

    def test_substitution(self):
        expr = add(var("x"), mul(var("y"), var("x")))
        result = substitute(expr, {"x": const(2)})
        assert eval_expr(result, {"y": 3}) == 8


# ----------------------------------------------------------------------
# Property-based: normalization preserves semantics


_names = st.sampled_from(["a", "b", "c"])


@st.composite
def arith_terms(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return var(draw(_names))
        return const(draw(st.integers(min_value=-9, max_value=9)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_terms(depth=depth + 1))
    right = draw(arith_terms(depth=depth + 1))
    return BinOp(op, left, right)


@given(arith_terms(), st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
@settings(max_examples=200, deadline=None)
def test_normalize_preserves_arithmetic_semantics(expr, a, b, c):
    env = {"a": a, "b": b, "c": c}
    assert eval_expr(expr, env) == eval_expr(normalize(expr), env)


@given(arith_terms())
@settings(max_examples=100, deadline=None)
def test_normalization_is_idempotent(expr):
    once = normalize(expr)
    twice = normalize(once)
    assert term_key(once) == term_key(twice)


@given(arith_terms(), arith_terms())
@settings(max_examples=100, deadline=None)
def test_terms_equal_is_sound(left, right):
    # If the normalizer claims equality, the terms must agree semantically.
    if terms_equal(left, right):
        for env in ({"a": 3, "b": -2, "c": 7}, {"a": 0, "b": 11, "c": -5}):
            assert eval_expr(left, env) == eval_expr(right, env)

"""Compiled batch kernels: differential identity and transport tests.

The acceptance property of the second codegen target
(:mod:`repro.codegen.kernels`): for every translated fragment of every
benchmark suite,

    kernel="compiled" == kernel="eval" == the reference interpreter,

on the real sequential backend — and on the multiprocess pool and the
spill-to-disk path for representative benchmarks.  Alongside that, unit
tests pin the semantics the renderer must preserve exactly (Java
division errors, unbound globals, pickling) and the shared-memory
payload transport's lifecycle.
"""

from __future__ import annotations

import pickle

import pytest

from repro.codegen.base import prepare_globals, resolve_kernel, view_records
from repro.codegen.kernels import (
    CompiledRecordMapper,
    CompiledReduce,
    _live_atoms,
    _record_atoms,
    kernel_support,
)
from repro.engine import shm
from repro.engine.multiprocess import MultiprocessEngine
from repro.errors import CodegenError, EngineError, IRError
from repro.graph.executor import interpret_fragment
from repro.ir.eval import eval_expr
from repro.ir.nodes import BinOp, Var
from repro.lang.values import values_equal
from repro.planner.plan import forced_plan
from repro.workloads import all_benchmarks, get_benchmark
from repro.workloads.runner import compile_benchmark

RUN_SIZE = 200

_COMPILED: dict[str, object] = {}


def compiled(name: str):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(get_benchmark(name))
    return _COMPILED[name]


def _match(lhs: dict, rhs: dict) -> bool:
    common = set(lhs) & set(rhs)
    return bool(common) and all(values_equal(lhs[k], rhs[k]) for k in common)


def _translated_fragments(compilation):
    return [f for f in compilation.fragments if f.translated]


# ----------------------------------------------------------------------
# Differential identity: compiled == eval == interpreter, every suite


@pytest.mark.parametrize(
    "name", [b.name for b in all_benchmarks()], ids=lambda n: n
)
def test_compiled_matches_eval_and_interpreter(name):
    benchmark = get_benchmark(name)
    compilation = compiled(name)
    inputs = benchmark.make_inputs(RUN_SIZE, 7)

    env = dict(inputs)
    for fragment in compilation.fragments:
        if not fragment.translated:
            if fragment.analysis is not None:
                env.update(interpret_fragment(fragment.analysis, env))
            continue
        reference = interpret_fragment(fragment.analysis, env)
        out_eval = fragment.program.run(
            dict(env), plan="sequential", kernel="eval"
        )
        out_compiled = fragment.program.run(
            dict(env), plan="sequential", kernel="compiled"
        )
        assert _match(out_eval, reference), f"{name}: eval != interpreter"
        assert _match(out_compiled, reference), f"{name}: compiled != interpreter"
        # The two kernels share fold order, so they agree *exactly*,
        # not merely within float tolerance.
        assert out_eval == out_compiled, f"{name}: compiled != eval"
        env.update(reference)


_BACKEND_CASES = [
    "ariths_sum",            # vectorized numpy path
    "stats_variance_sums",   # multi-emit float fold
    "phoenix_wordcount",     # string keys, count fold
    "fiji_threshold",        # map-only (no reduce stage)
    "tpch_q6",               # conditional emit, struct projection
]


@pytest.mark.parametrize("name", _BACKEND_CASES, ids=lambda n: n)
def test_compiled_on_pool_and_spill_backends(name):
    benchmark = get_benchmark(name)
    compilation = compiled(name)
    inputs = benchmark.make_inputs(RUN_SIZE, 11)

    fragment = _translated_fragments(compilation)[0]
    reference = interpret_fragment(fragment.analysis, dict(inputs))

    pooled = fragment.program.run(
        dict(inputs), plan="multiprocess", kernel="compiled"
    )
    assert _match(pooled, reference), f"{name}: pooled compiled != interpreter"

    spilled = fragment.program.run(
        dict(inputs),
        plan="sequential",
        memory_budget=4096,
        kernel="compiled",
    )
    report = fragment.program.last_plan_report
    assert report.plan.spill, f"{name}: budget did not engage the spill path"
    assert _match(spilled, reference), f"{name}: spilled compiled != interpreter"


def test_compiled_through_fused_graph():
    from repro.compiler import run_program
    from repro.graph import interpret_reference

    compilation = compiled("tpch_q1")
    benchmark = get_benchmark("tpch_q1")
    inputs = benchmark.make_inputs(RUN_SIZE, 3)
    reference = interpret_reference(compilation.job_graph, dict(inputs))
    outputs = run_program(
        compilation, dict(inputs), plan="sequential", kernel="compiled"
    )
    common = set(outputs) & set(reference)
    assert common, "graph run produced nothing comparable"
    assert all(values_equal(outputs[k], reference[k]) for k in common)


def test_join_pipelines_fall_back_to_eval():
    compilation = compiled("joins_partsupp_cost")
    benchmark = get_benchmark("joins_partsupp_cost")
    inputs = benchmark.make_inputs(RUN_SIZE, 5)
    fragment = _translated_fragments(compilation)[0]
    program = fragment.program.programs[0]
    reason = kernel_support(program.summary, program.analysis.view)
    assert reason == "join pipelines use the eval kernel"
    # Requesting the compiled kernel is still safe: the join stages
    # fall back per stage and the results are unchanged.
    reference = interpret_fragment(fragment.analysis, dict(inputs))
    outputs = fragment.program.run(
        dict(inputs), plan="sequential", kernel="compiled"
    )
    assert _match(outputs, reference)


# ----------------------------------------------------------------------
# Renderer semantics


def _first_map_stage(name: str):
    compilation = compiled(name)
    fragment = _translated_fragments(compilation)[0]
    program = fragment.program.programs[0]
    benchmark = get_benchmark(name)
    inputs = benchmark.make_inputs(RUN_SIZE, 7)
    globals_env, _sizes = prepare_globals(fragment.analysis, inputs)
    stage = program.summary.pipeline.stages[0]
    records = view_records(fragment.analysis.view, inputs)
    return program, stage, globals_env, records


def test_projection_pushdown_prunes_dead_fields():
    program, stage, globals_env, _records = _first_map_stage("tpch_q6")
    view = program.analysis.view
    live = _live_atoms(stage.lam.emits, view)
    dead_fields = {
        f.name for f in view.element_fields if f.name not in live
    }
    assert dead_fields, "tpch_q6 should have unread lineitem fields"
    mapper = CompiledRecordMapper(
        emits=stage.lam.emits, globals_env=globals_env, view=view
    )
    for name in dead_fields:
        assert repr(name) not in mapper.source
    for name in live & _record_atoms(view):
        assert repr(name) in mapper.source or name in view.index_vars


def test_vectorized_path_matches_compiled_loop():
    program, stage, globals_env, records = _first_map_stage("ariths_sum")
    mapper = CompiledRecordMapper(
        emits=stage.lam.emits, globals_env=globals_env, view=program.analysis.view
    )
    assert mapper.vectorized
    vectorized = mapper.map_chunk(records)
    loop_only = pickle.loads(pickle.dumps(mapper))
    loop_only._ensure()
    loop_only._vec = None
    assert vectorized == loop_only.map_chunk(records)
    # A chunk that is not the clean float column the types promised
    # falls back to the loop instead of producing numpy garbage.
    dirty = list(records) + [(len(records), "oops")]
    assert mapper._vec(dirty) is None


def test_division_by_zero_matches_evaluator():
    body = BinOp("/", Var("a"), Var("b"))
    reducer = CompiledReduce(body=body, params=("a", "b"), globals_env={})
    with pytest.raises(IRError) as compiled_err:
        reducer(1, 0)
    with pytest.raises(IRError) as eval_err:
        eval_expr(body, {"a": 1, "b": 0})
    assert str(compiled_err.value) == str(eval_err.value)
    # Truncating Java semantics on the happy path, same as the evaluator.
    assert reducer(-7, 2) == eval_expr(body, {"a": -7, "b": 2}) == -3


def test_unbound_global_matches_evaluator():
    reducer = CompiledReduce(
        body=BinOp("+", Var("a"), Var("missing")),
        params=("a", "b"),
        globals_env={},
    )
    with pytest.raises(IRError, match="unbound IR variable 'missing'"):
        reducer._ensure()


def test_compiled_mappers_pickle_without_code_objects():
    program, stage, globals_env, records = _first_map_stage("phoenix_wordcount")
    mapper = CompiledRecordMapper(
        emits=stage.lam.emits, globals_env=globals_env, view=program.analysis.view
    )
    before = mapper.map_chunk(records)
    assert mapper._fn is not None
    state = mapper.__getstate__()
    assert state["_fn"] is None and state["_rendered"] is None
    clone = pickle.loads(pickle.dumps(mapper))
    assert clone._fn is None  # recompiles lazily on the worker
    assert clone.map_chunk(records) == before


# ----------------------------------------------------------------------
# The kernel knob: plans, planner pricing, validation


def test_forced_plan_carries_kernel():
    plan = forced_plan("sequential", kernel="compiled")
    assert plan.kernel == "compiled"
    assert "kernel=compiled" in plan.describe()
    assert any("kernel" in reason for reason in plan.reasons)
    # Simulated backends always interpret; the knob must not pretend.
    assert forced_plan("spark", kernel="compiled").kernel == "eval"
    with pytest.raises(ValueError, match="unknown kernel"):
        forced_plan("sequential", kernel="fastest")


def test_resolve_kernel_precedence():
    plan = forced_plan("sequential", kernel="compiled")
    assert resolve_kernel(None, None) == "eval"
    assert resolve_kernel(None, plan) == "compiled"
    assert resolve_kernel("eval", plan) == "eval"
    with pytest.raises(CodegenError, match="unknown kernel"):
        resolve_kernel("jit", None)


def test_planner_prices_kernel_from_map_work():
    benchmark = get_benchmark("stats_variance_sums")
    compilation = compiled("stats_variance_sums")
    fragment = _translated_fragments(compilation)[0]

    big = benchmark.make_inputs(5000, 11)
    fragment.program.run(dict(big), plan="auto")
    report = fragment.program.last_plan_report
    assert report.summary()["kernel"] == "compiled"
    assert any("kernel=compiled" in r for r in report.plan.reasons)

    small = benchmark.make_inputs(20, 11)
    fragment.program.run(dict(small), plan="auto")
    report = fragment.program.last_plan_report
    assert report.summary()["kernel"] == "eval"
    assert any("compile cost would dominate" in r for r in report.plan.reasons)


# ----------------------------------------------------------------------
# Shared-memory transport


def test_shm_round_trip_and_release():
    payload = b"x" * 100_000
    before = shm.owned_segments()
    ref = shm.write_segment(payload)
    if ref is None:
        pytest.skip("shared memory unavailable on this platform")
    assert shm.owned_segments() == before + 1
    assert shm.read_segment(ref) == payload
    assert shm.resolve_payload(ref) == payload
    assert shm.resolve_payload(b"plain") == b"plain"
    shm.release_segments([ref])
    assert shm.owned_segments() == before
    shm.release_segments([ref])  # idempotent
    assert shm.owned_segments() == before


def test_shm_empty_payload_falls_back():
    assert shm.write_segment(b"") is None


def _pooled_steps(name: str):
    program, _stage, globals_env, records = _first_map_stage(name)
    steps = list(program.local_steps(globals_env, kernel="compiled"))
    return program, records, steps, globals_env


def test_shm_transport_matches_queue_transport():
    if not shm.SHM_AVAILABLE:
        pytest.skip("shared memory unavailable on this platform")
    program, records, steps, _globals = _pooled_steps("stats_variance_sums")
    config = program.engine_config.with_framework("multiprocess")

    via_shm = MultiprocessEngine(
        config=config, processes=2, transport="shm", shm_min_bytes=0
    ).run_pipeline(records, steps)
    via_queue = MultiprocessEngine(
        config=config, processes=2, transport="queue"
    ).run_pipeline(records, steps)

    assert sorted(via_shm.pairs) == sorted(via_queue.pairs)
    if via_shm.fallback_reason is None:
        assert via_shm.transport == "shm"
        assert via_shm.shm_segments > 0 and via_shm.shm_bytes > 0
        stats = via_shm.transport_stats()
        assert stats["segments"] == via_shm.shm_segments
    assert via_queue.transport_stats() is None
    assert shm.owned_segments() == 0, "driver leaked segments"


def test_shm_creation_failure_counts_fallbacks(monkeypatch):
    import repro.engine.multiprocess as mp_mod

    program, records, steps, _globals = _pooled_steps("stats_variance_sums")
    monkeypatch.setattr(mp_mod, "write_payload", lambda head, buffers: None)
    result = MultiprocessEngine(
        config=program.engine_config.with_framework("multiprocess"),
        processes=2,
        transport="shm",
        shm_min_bytes=0,
    ).run_pipeline(records, steps)
    if result.fallback_reason is None:
        assert result.shm_fallbacks > 0
        assert result.shm_segments == 0


def test_unknown_transport_rejected():
    program, records, steps, _globals = _pooled_steps("ariths_sum")
    engine = MultiprocessEngine(
        config=program.engine_config.with_framework("multiprocess"),
        processes=2,
        transport="teleport",
    )
    with pytest.raises(EngineError, match="unknown transport"):
        engine.run_pipeline(records, steps)

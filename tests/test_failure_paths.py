"""Failure-path coverage: scheduler pool crashes, corrupt cache entries,
and the multiprocess backend's sequential fallback end-to-end."""

from __future__ import annotations

import json

import pytest

from repro.compiler import translate
from repro.lang.parser import parse_program
from repro.pipeline.cache import SummaryCache
from repro.pipeline.context import CompilationContext
from repro.pipeline.passes import CompilerPass, default_passes
from repro.pipeline.scheduler import PassPipeline

SUM_SOURCE = """
int sum(int[] data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
"""

WORDCOUNT_SOURCE = """
Map<String, Integer> wc(List<String> words) {
  Map<String, Integer> counts = new HashMap<String, Integer>();
  for (String w : words) {
    counts.put(w, counts.getOrDefault(w, 0) + 1);
  }
  return counts;
}
"""


class BombPass(CompilerPass):
    """A pass that blows up inside the scheduler's worker pool."""

    name = "bomb"

    def run(self, ctx, state):
        raise RuntimeError("fragment exploded in the pool")


class TestSchedulerPoolFailures:
    def _contexts(self):
        return [
            CompilationContext(program=parse_program(SUM_SOURCE), function="sum"),
            CompilationContext(
                program=parse_program(WORDCOUNT_SOURCE), function="wc"
            ),
        ]

    def test_raising_pass_propagates_from_pool(self):
        # More than one fragment forces the ThreadPoolExecutor path; the
        # scheduler must surface the exception, not swallow or hang.
        pipeline = PassPipeline(passes=[BombPass()], max_workers=4)
        with pytest.raises(RuntimeError, match="exploded in the pool"):
            pipeline.run_many(self._contexts())

    def test_raising_pass_propagates_sequentially(self):
        pipeline = PassPipeline(passes=[BombPass()], max_workers=1)
        with pytest.raises(RuntimeError, match="exploded in the pool"):
            pipeline.run(self._contexts()[0])

    def test_partial_failure_leaves_earlier_pass_results(self):
        # The bomb sits after analyze: states keep their analysis even
        # though the chain died mid-way.
        passes = [default_passes()[0], BombPass()]
        pipeline = PassPipeline(passes=passes, max_workers=4)
        contexts = self._contexts()
        with pytest.raises(RuntimeError):
            pipeline.run_many(contexts)
        assert any(
            state.analysis is not None
            for ctx in contexts
            for state in ctx.fragments
        )


class TestCorruptDiskCache:
    def _warm(self, tmp_path) -> SummaryCache:
        cache = SummaryCache(cache_dir=str(tmp_path))
        translate(SUM_SOURCE, cache=cache)
        assert list(tmp_path.glob("*.json"))
        return cache

    def test_truncated_json_is_a_miss_and_recompiles(self, tmp_path):
        self._warm(tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text('{"format": 1, "summaries": [{"sum', encoding="utf-8")
        fresh = SummaryCache(cache_dir=str(tmp_path))
        result = translate(SUM_SOURCE, cache=fresh)
        assert result.translated == 1
        assert result.cache_hits == 0
        assert fresh.stats.misses >= 1

    def test_wrong_schema_entry_is_dropped_from_disk(self, tmp_path):
        # Valid JSON, right format tag, garbage payload: decoding fails,
        # the poisoned file must be deleted so it cannot re-fail forever.
        self._warm(tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text(
                json.dumps({"format": 1, "summaries": [{"bogus": True}]}),
                encoding="utf-8",
            )
        fresh = SummaryCache(cache_dir=str(tmp_path))
        result = translate(SUM_SOURCE, cache=fresh)
        assert result.translated == 1
        assert result.cache_hits == 0
        # The recompile stores a clean replacement entry.
        entries = list(tmp_path.glob("*.json"))
        assert entries
        for path in entries:
            decoded = json.loads(path.read_text(encoding="utf-8"))
            assert decoded["summaries"] and "summary" in decoded["summaries"][0]

    def test_unknown_format_version_is_ignored(self, tmp_path):
        self._warm(tmp_path)
        for path in tmp_path.glob("*.json"):
            entry = json.loads(path.read_text(encoding="utf-8"))
            entry["format"] = 999
            path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = SummaryCache(cache_dir=str(tmp_path))
        result = translate(SUM_SOURCE, cache=fresh)
        assert result.translated == 1
        assert result.cache_hits == 0


class TestMultiprocessFallbackEndToEnd:
    def test_unpicklable_payload_reaches_sequential_fallback(self):
        # Globals that refuse to pickle: the engine must fall back to
        # in-process execution and still produce correct outputs.
        from repro.codegen.base import _stage_complexity
        from repro.engine.multiprocess import MapStep, MultiprocessEngine

        result = translate(WORDCOUNT_SOURCE)
        program = result.fragments[0].program.programs[0]
        stage = program.summary.pipeline.stages[0]

        class Unpicklable:
            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        poison = Unpicklable()

        class PoisonedMapper:
            """Emits normally but drags an unpicklable global along."""

            def __init__(self, inner):
                self.inner = inner
                self.poison = poison

            def __call__(self, record):
                return self.inner(record)

        from repro.codegen.base import _emit_fn, view_records

        inputs = {"words": [f"w{i % 9}" for i in range(5000)]}
        records = view_records(program.analysis.view, inputs)
        mapper = PoisonedMapper(_emit_fn(stage.lam.emits, {}, program.analysis.view))
        engine = MultiprocessEngine(processes=2, min_parallel_records=10)
        outcome = engine.run_pipeline(
            records, [MapStep(mapper, _stage_complexity(stage))]
        )
        assert outcome.fallback_reason is not None
        assert "not picklable" in outcome.fallback_reason
        assert outcome.pairs == [(w, 1) for w in inputs["words"]]

"""The serve layer: registry warmth, admission control, the daemon.

Acceptance properties of PR 7's tentpole:

* re-registering a program performs **zero synthesis** — in-process via
  the resident entry, across a daemon restart via the summary cache's
  disk tier (``candidates_checked == 0`` both ways);
* admission control prices jobs with the planner's §5 estimator: small
  jobs run concurrently, box-overrunning or unknowable jobs serialize,
  and every decision is recorded on the job's result;
* a daemon serving ≥8 concurrent mixed-size jobs (some spilling under a
  small ``memory_budget``) returns outputs identical to direct
  ``run_program`` calls, then shuts down cleanly.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.compiler import run_program, translate
from repro.errors import ServeError
from repro.options import ExecOptions
from repro.serve import admission as admission_mod
from repro.serve.admission import AdmissionController
from repro.serve.registry import ProgramRegistry, program_key
from repro.serve.wire import decode_value, encode_value
from repro.synthesis.search import SearchConfig

SUM_SOURCE = """
int sum(int[] data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
"""

WORDCOUNT_SOURCE = """
Map<String, Integer> wc(List<String> words) {
  Map<String, Integer> counts = new HashMap<String, Integer>();
  for (String w : words) {
    counts.put(w, counts.getOrDefault(w, 0) + 1);
  }
  return counts;
}
"""

DATA = [((i * 37) % 101) - 50 for i in range(3000)]
WORDS = [f"w{i % 17}" for i in range(3000)]


class TestProgramKey:
    def test_key_is_content_addressed(self):
        config = SearchConfig()
        key = program_key(SUM_SOURCE, "sum", config)
        assert key == program_key(SUM_SOURCE, "sum", config)
        assert key != program_key(WORDCOUNT_SOURCE, "wc", config)
        assert key != program_key(SUM_SOURCE, "sum", config, backend="flink")


class TestRegistry:
    def test_warm_rehit_skips_synthesis(self):
        registry = ProgramRegistry()
        cold = registry.register(SUM_SOURCE)
        assert cold.translated == 1
        assert cold.candidates_checked > 0
        warm = registry.register(SUM_SOURCE)
        assert warm is cold
        assert warm.warm
        assert warm.candidates_checked == 0
        assert warm.registrations == 2
        assert len(registry) == 1

    def test_disk_tier_warms_a_fresh_registry(self, tmp_path):
        first = ProgramRegistry(cache_dir=str(tmp_path))
        cold = first.register(SUM_SOURCE)
        assert cold.candidates_checked > 0
        # A brand-new registry (a restarted daemon) over the same disk
        # tier: same program id, summaries from cache, zero CEGIS work.
        second = ProgramRegistry(cache_dir=str(tmp_path))
        warm = second.register(SUM_SOURCE)
        assert warm.program_id == cold.program_id
        assert warm.warm
        assert warm.candidates_checked == 0
        assert warm.translated == 1

    def test_unknown_program_raises(self):
        with pytest.raises(ServeError, match="unknown program"):
            ProgramRegistry().get("prog-missing")

    def test_adopt_is_identity_keyed(self):
        registry = ProgramRegistry()
        compilation = translate(SUM_SOURCE)
        entry = registry.adopt(compilation)
        assert registry.adopt(compilation) is entry
        assert registry.get(entry.program_id) is entry


class TestAdmission:
    def test_budgeted_job_priced_at_its_budget(self):
        controller = AdmissionController(capacity_bytes=1 << 30)
        footprint, reasons = controller.price(
            {"data": DATA, "n": len(DATA)},
            ExecOptions(memory_budget=1 << 20),
        )
        assert footprint == 2 * (1 << 20)
        assert any("memory_budget" in r for r in reasons)

    def test_unbudgeted_job_priced_by_estimator(self, monkeypatch):
        monkeypatch.setattr(
            admission_mod, "estimate_input_bytes", lambda records, n=None: 5000
        )
        controller = AdmissionController(capacity_bytes=1 << 30)
        footprint, _ = controller.price({"data": [1, 2, 3]})
        assert footprint == 10000  # 5000 × shuffle residency factor 2

    def test_unknowable_footprint_goes_exclusive(self, monkeypatch):
        monkeypatch.setattr(
            admission_mod, "estimate_input_bytes", lambda records, n=None: None
        )
        controller = AdmissionController(capacity_bytes=1 << 30)
        footprint, reasons = controller.price({"data": [1]})
        assert footprint is None
        decision = controller.admit_footprint(footprint, reasons)
        assert decision.mode == "exclusive"
        controller.release(decision)

    def test_small_concurrent_large_exclusive(self):
        controller = AdmissionController(capacity_bytes=1000, exclusive_fraction=0.5)
        small = controller.admit_footprint(100)
        assert small.mode == "concurrent"
        controller.release(small)
        large = controller.admit_footprint(600)  # > 50% of capacity
        assert large.mode == "exclusive"
        controller.release(large)

    def test_exclusive_drains_running_jobs_first(self):
        controller = AdmissionController(capacity_bytes=1000, exclusive_fraction=0.5)
        running = controller.admit_footprint(100)
        admitted = threading.Event()

        def big_job():
            decision = controller.admit_footprint(900)
            admitted.set()
            controller.release(decision)

        thread = threading.Thread(target=big_job)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # blocked behind the running job
        controller.release(running)
        thread.join(timeout=5)
        assert admitted.is_set()
        assert controller.admitted["exclusive"] == 1

    def test_ledger_blocks_past_capacity(self):
        controller = AdmissionController(capacity_bytes=1000, exclusive_fraction=1.0)
        first = controller.admit_footprint(600)
        admitted = threading.Event()

        def second_job():
            decision = controller.admit_footprint(600)
            admitted.set()
            controller.release(decision)

        thread = threading.Thread(target=second_job)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # 600 + 600 > 1000
        controller.release(first)
        thread.join(timeout=5)
        assert admitted.is_set()

    def test_decision_records_queueing_and_reasons(self):
        controller = AdmissionController(capacity_bytes=1000)
        decision = controller.admit_footprint(10, ["priced somehow"])
        controller.release(decision)
        as_dict = decision.as_dict()
        assert as_dict["mode"] == "concurrent"
        assert as_dict["footprint_bytes"] == 10
        assert as_dict["capacity_bytes"] == 1000
        assert "priced somehow" in as_dict["reasons"]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity_bytes=0)
        with pytest.raises(ValueError):
            AdmissionController(exclusive_fraction=0.0)


class TestWireCodec:
    def test_round_trips_python_shapes(self):
        value = {
            ("k", 1): [1, 2, (3, 4)],
            7: {"nested": {frozenset({1, 2})}},
            "floats": [0.1, 2.5e-8, -1.0],
            "bytes": b"\x00\xff",
            "none": None,
        }
        assert decode_value(encode_value(value)) == value

    def test_tuple_vs_list_distinction_survives(self):
        encoded = encode_value({"t": (1, 2), "l": [1, 2]})
        decoded = decode_value(encoded)
        assert isinstance(decoded["t"], tuple)
        assert isinstance(decoded["l"], list)

    def test_user_tag_key_cannot_be_mistaken(self):
        value = {"__t__": "not-a-tag"}
        assert decode_value(encode_value(value)) == value

    def test_unencodable_type_raises(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_value(object())


class TestDaemon:
    """End-to-end acceptance: the daemon over a real socket."""

    def test_concurrent_mixed_jobs_identical_to_run_program(self, tmp_path):
        from repro.serve.client import connect
        from repro.serve.daemon import serve

        sum_inputs = {"data": DATA, "n": len(DATA)}
        wc_inputs = {"words": WORDS}
        expected_sum = run_program(translate(SUM_SOURCE), dict(sum_inputs))
        expected_wc = run_program(translate(WORDCOUNT_SOURCE), dict(wc_inputs))
        budget = ExecOptions(memory_budget=1 << 14)

        daemon = serve(cache_dir=str(tmp_path), max_workers=4)
        try:
            client = connect(daemon.address)
            assert client.health()["ok"]

            sum_prog = client.compile(SUM_SOURCE)
            wc_prog = client.compile(WORDCOUNT_SOURCE)
            rehit = client.compile(SUM_SOURCE)
            assert rehit.warm and rehit.candidates_checked == 0

            jobs = []
            for i in range(4):
                options = budget if i % 2 else None
                jobs.append(client.submit(sum_prog, sum_inputs, options))
                jobs.append(client.submit(wc_prog, wc_inputs, options))
            results = [job.result(timeout=300) for job in jobs]

            assert len(results) == 8
            assert all(r.ok for r in results), [r.error for r in results]
            for i, result in enumerate(results):
                expected = expected_wc if i % 2 else expected_sum
                assert result.outputs == expected
                assert result.admission["mode"] in (
                    "concurrent",
                    "exclusive",
                )
            # Budgeted jobs carry their (wire-flattened) reports, with
            # the admission decision embedded, and at least one spilled.
            budgeted = [r for i, r in enumerate(results) if (i // 2) % 2]
            assert all(isinstance(r.plan_report, dict) for r in budgeted)
            assert all(
                r.plan_report["admission"]["mode"] == r.admission["mode"]
                for r in budgeted
            )
            spilled = [
                unit["spill_stats"]["spilled_bytes"]
                for r in budgeted
                for unit in r.plan_report["unit_reports"].values()
                if unit["spill_stats"]
            ]
            assert spilled and max(spilled) > 0

            client.shutdown()
        finally:
            daemon.shutdown()

    def test_restarted_daemon_registers_warm_from_disk(self, tmp_path):
        from repro.serve.client import connect
        from repro.serve.daemon import serve

        with serve(cache_dir=str(tmp_path)) as daemon:
            cold = connect(daemon.address).compile(SUM_SOURCE)
            assert cold.candidates_checked > 0
        with serve(cache_dir=str(tmp_path)) as daemon:
            warm = connect(daemon.address).compile(SUM_SOURCE)
            assert warm.warm
            assert warm.candidates_checked == 0

    def test_protocol_errors_surface_as_serve_errors(self):
        from repro.serve.client import DaemonClient, connect
        from repro.serve.daemon import serve

        with serve() as daemon:
            client = connect(daemon.address)
            with pytest.raises(ServeError, match="unknown program"):
                client.submit("prog-nope", {"data": [1]})
            with pytest.raises(ServeError, match="unknown job"):
                client.result("job-999")
        with pytest.raises(ServeError, match="cannot reach"):
            DaemonClient("127.0.0.1:1").health()

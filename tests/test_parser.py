"""Unit tests for the mini-Java parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_function, parse_program
from repro.lang.types import (
    ArrayType,
    ClassType,
    DOUBLE,
    INT,
    ListType,
    MapType,
    SetType,
    STRING,
)


class TestDeclarations:
    def test_simple_function(self):
        func = parse_function("int f(int x) { return x; }")
        assert func.name == "f"
        assert func.return_type == INT
        assert [p.name for p in func.params] == ["x"]

    def test_array_types(self):
        func = parse_function("int[][] f(int[] a) { return null; }")
        assert func.return_type == ArrayType(ArrayType(INT))
        assert func.params[0].type == ArrayType(INT)

    def test_generic_collections(self):
        func = parse_function(
            "Map<String, Integer> f(List<String> xs, Set<Double> s) { return null; }"
        )
        assert func.return_type == MapType(STRING, INT)
        assert func.params[0].type == ListType(STRING)
        assert func.params[1].type == SetType(DOUBLE)

    def test_class_declaration(self):
        program = parse_program("class P { int x; double y; }")
        decl = program.class_decl("P")
        assert [f.name for f in decl.fields] == ["x", "y"]
        assert decl.fields[1].type == DOUBLE

    def test_user_type_parameter(self):
        func = parse_function("int f(List<Point> pts) { return 0; }")
        assert func.params[0].type == ListType(ClassType("Point"))

    def test_modifiers_skipped(self):
        program = parse_program("public static int f() { return 1; }")
        assert program.functions[0].name == "f"

    def test_multi_variable_declaration(self):
        func = parse_function("int f() { int a = 1, b = 2; return a + b; }")
        decls = [s for s in func.body.stmts if isinstance(s, ast.VarDecl)]
        assert [d.name for d in decls] == ["a", "b"]

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_program("int f() { return 1 }")


class TestStatements:
    def test_if_else(self):
        func = parse_function("int f(int x) { if (x > 0) return 1; else return 2; }")
        stmt = func.body.stmts[0]
        assert isinstance(stmt, ast.If)
        assert stmt.other is not None

    def test_classic_for_loop(self):
        func = parse_function("int f(int n) { for (int i = 0; i < n; i++) n--; return n; }")
        loop = func.body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init[0], ast.VarDecl)
        assert isinstance(loop.cond, ast.BinOp)
        assert len(loop.update) == 1

    def test_enhanced_for_loop(self):
        func = parse_function("int f(List<String> xs) { for (String x : xs) { } return 0; }")
        loop = func.body.stmts[0]
        assert isinstance(loop, ast.ForEach)
        assert loop.var_name == "x"
        assert loop.var_type == STRING

    def test_while_and_do_while(self):
        func = parse_function(
            "int f(int n) { while (n > 0) n--; do n++; while (n < 5); return n; }"
        )
        assert isinstance(func.body.stmts[0], ast.While)
        assert isinstance(func.body.stmts[1], ast.DoWhile)

    def test_break_continue(self):
        func = parse_function(
            "int f(int n) { for (int i = 0; i < n; i++) { if (i > 2) break; continue; } return n; }"
        )
        body = func.body.stmts[0].body
        assert isinstance(body.stmts[0], ast.If)
        assert isinstance(body.stmts[0].then, ast.Break)
        assert isinstance(body.stmts[1], ast.Continue)


class TestExpressions:
    def expr_of(self, text):
        func = parse_function(f"int f(int a, int b, int c) {{ return {text}; }}")
        return func.body.stmts[0].value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("a + b * c")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = self.expr_of("a > 0 || b > 0 && c > 0")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_comparison_precedence(self):
        expr = self.expr_of("a + b < c * 2")
        assert expr.op == "<"

    def test_parenthesized(self):
        expr = self.expr_of("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_ternary(self):
        expr = self.expr_of("a > 0 ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_unary_negation(self):
        expr = self.expr_of("-a + !b")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnOp) and expr.left.op == "-"

    def test_cast(self):
        expr = self.expr_of("(double) a")
        assert isinstance(expr, ast.Cast)
        assert expr.type == DOUBLE

    def test_array_index_chain(self):
        expr = self.expr_of("a")
        func = parse_function("int f(int[][] m, int i, int j) { return m[i][j]; }")
        inner = func.body.stmts[0].value
        assert isinstance(inner, ast.Index)
        assert isinstance(inner.base, ast.Index)

    def test_method_call_and_field_access(self):
        func = parse_function(
            "int f(List<String> xs) { return xs.get(0).length() + xs.size(); }"
        )
        expr = func.body.stmts[0].value
        assert isinstance(expr.left, ast.MethodCall)
        assert expr.left.method == "length"

    def test_static_call(self):
        func = parse_function("int f(int a) { return Math.abs(a); }")
        call = func.body.stmts[0].value
        assert isinstance(call, ast.MethodCall)
        assert call.receiver.ident == "Math"

    def test_new_array(self):
        func = parse_function("int[] f(int n) { return new int[n]; }")
        expr = func.body.stmts[0].value
        assert isinstance(expr, ast.NewArray)

    def test_new_collection_diamond(self):
        func = parse_function(
            "Map<String, Integer> f() { return new HashMap<String, Integer>(); }"
        )
        expr = func.body.stmts[0].value
        assert isinstance(expr, ast.NewObject)
        assert expr.type == MapType(STRING, INT)

    def test_assignment_expression(self):
        func = parse_function("int f(int a) { a += 2; return a; }")
        stmt = func.body.stmts[0]
        assert isinstance(stmt.expr, ast.Assign)
        assert stmt.expr.op == "+="

    def test_invalid_assignment_target_raises(self):
        with pytest.raises(ParseError):
            parse_program("int f(int a) { (a + 1) = 2; return a; }")


class TestProgramLookup:
    def test_function_lookup(self):
        program = parse_program("int f() { return 1; } int g() { return 2; }")
        assert program.function("g").name == "g"
        with pytest.raises(KeyError):
            program.function("h")

    def test_parse_function_requires_unique(self):
        with pytest.raises(ParseError):
            parse_function("int f() { return 1; } int g() { return 2; }")

    def test_walk_visits_nested_nodes(self):
        func = parse_function("int f(int n) { if (n > 0) { return n + 1; } return 0; }")
        names = [n for n in ast.walk(func) if isinstance(n, ast.Name)]
        assert len(names) == 2

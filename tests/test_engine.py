"""Tests for the simulated MapReduce engine: core, sizes, three APIs."""

import dataclasses

import pytest

from repro.engine import (
    EngineConfig,
    SimFlinkEnv,
    SimHadoopJob,
    SimSparkContext,
    partition_data,
    run_sequential,
    sizeof,
)
from repro.engine.sizes import BOOLEAN_SIZE, STRING_SIZE, TUPLE_HEADER
from repro.errors import EngineError
from repro.lang.parser import parse_program
from repro.lang.values import Instance


class TestSizes:
    def test_paper_constants(self):
        """Section 7.4's data-type sizes: String 40, Boolean 10, pair 28."""
        assert sizeof("anything") == STRING_SIZE == 40
        assert sizeof(True) == BOOLEAN_SIZE == 10
        assert sizeof((True, False)) == TUPLE_HEADER + 20 == 28

    def test_numeric_sizes(self):
        assert sizeof(42) == 4
        assert sizeof(3.5) == 8
        assert sizeof(2**40) == 8

    def test_instance_size(self):
        p = Instance("P", {"x": 1, "y": 2.0})
        assert sizeof(p) == 16 + 4 + 8

    def test_collections_use_object_header(self):
        # Collections are objects like Instance (16 B header), not bare
        # tuples (8 B) — charging them the tuple header understated the
        # shuffle-byte accounting and the spill-trigger estimate.
        from repro.engine.sizes import OBJECT_HEADER

        assert OBJECT_HEADER == 16
        assert sizeof([True, False]) == OBJECT_HEADER + 20 == 36
        assert sizeof({1, 2}) == OBJECT_HEADER + 8 == 24
        assert sizeof({"k": 1}) == OBJECT_HEADER + 40 + 4 == 60
        # Tuples keep the paper's 8-byte header (§7.4: (bool, bool) = 28).
        assert sizeof((True, False)) == 28


class TestPartitioning:
    def test_even_partitioning(self):
        parts = partition_data(list(range(100)), 10)
        assert len(parts) == 10
        assert sum(len(p) for p in parts) == 100

    def test_empty_data(self):
        assert partition_data([], 5) == [[]]

    def test_invalid_count_raises(self):
        with pytest.raises(EngineError):
            partition_data([1], 0)

    def test_negative_count_raises(self):
        with pytest.raises(EngineError):
            partition_data([1, 2], -3)

    def test_more_partitions_than_records(self):
        parts = partition_data([1, 2, 3], 10)
        # No padding partitions are invented; every record lands once.
        assert len(parts) == 3
        assert [r for p in parts for r in p] == [1, 2, 3]
        assert all(p for p in parts)

    def test_single_record_many_partitions(self):
        assert partition_data([42], 8) == [[42]]

    def test_empty_data_any_partition_count(self):
        assert partition_data([], 1) == [[]]
        assert partition_data([], 100) == [[]]


class TestExecutorCore:
    """Direct Executor coverage: shuffle modes and metrics invariants."""

    @staticmethod
    def make_executor(combiners: bool = True):
        from repro.engine.core import Executor

        config = EngineConfig()
        config = dataclasses.replace(
            config, framework=dataclasses.replace(config.framework, combiners=combiners)
        )
        return Executor(config=config)

    PAIRS = [("a", 1), ("a", 2), ("b", 3), ("a", 4), ("b", 5)]

    def test_shuffle_with_combiner_collapses_per_partition(self):
        executor = self.make_executor(combiners=True)
        parts = partition_data(self.PAIRS, 2)
        groups = executor.run_shuffle(parts, lambda x, y: x + y)
        # Grouped values are per-partition partial sums, one per partition
        # containing the key; the total is conserved.
        assert sum(groups["a"]) == 7
        assert sum(groups["b"]) == 8
        stage = executor.metrics.last_stage("shuffle")
        assert stage.records_in == len(self.PAIRS)
        assert stage.records_out == sum(len(v) for v in groups.values())
        assert stage.records_out < len(self.PAIRS)

    def test_shuffle_with_combiners_disabled_passes_values_through(self):
        executor = self.make_executor(combiners=False)
        parts = partition_data(self.PAIRS, 2)
        groups = executor.run_shuffle(parts, lambda x, y: x + y)
        # The combiner function is supplied but the framework profile
        # disables it: every value crosses the network unmerged.
        assert sorted(groups["a"]) == [1, 2, 4]
        assert sorted(groups["b"]) == [3, 5]
        stage = executor.metrics.last_stage("shuffle")
        assert stage.records_in == len(self.PAIRS)
        assert stage.records_out == len(self.PAIRS)

    def test_disabled_combiners_shuffle_more_bytes(self):
        with_combiner = self.make_executor(combiners=True)
        without = self.make_executor(combiners=False)
        pairs = [("k%d" % (i % 3), 1) for i in range(600)]
        with_combiner.run_shuffle(partition_data(pairs, 4), lambda x, y: x + y)
        without.run_shuffle(partition_data(pairs, 4), lambda x, y: x + y)
        assert (
            with_combiner.metrics.last_stage("shuffle").bytes_shuffled
            < without.metrics.last_stage("shuffle").bytes_shuffled
        )

    def test_narrow_stage_conserves_record_counts(self):
        executor = self.make_executor()
        parts = partition_data(list(range(50)), 4)
        out = executor.run_narrow(parts, lambda x: [x, x], "double")
        stage = executor.metrics.last_stage("double")
        assert stage.records_in == 50
        assert stage.records_out == 100
        assert stage.records_out == sum(len(p) for p in out)

    def test_narrow_stage_on_empty_partitions(self):
        executor = self.make_executor()
        out = executor.run_narrow([[]], lambda x: [x], "noop")
        stage = executor.metrics.last_stage("noop")
        assert stage.records_in == 0
        assert stage.records_out == 0
        assert out == [[]]

    def test_scan_records_in_equals_records_out(self):
        executor = self.make_executor()
        executor.run_scan(list(range(30)), 4)
        stage = executor.metrics.last_stage("scan")
        assert stage.records_in == stage.records_out == 30
        assert stage.bytes_in == stage.bytes_out > 0

    def test_reduce_groups_conserves_totals(self):
        executor = self.make_executor()
        groups = {"a": [1, 2, 4], "b": [3, 5]}
        out = executor.run_reduce_groups(groups, lambda x, y: x + y)
        stage = executor.metrics.last_stage("reduce")
        assert stage.records_in == 5
        assert stage.records_out == len(out) == 2
        assert dict(out) == {"a": 7, "b": 8}


class TestSparkAPI:
    def make_context(self):
        return SimSparkContext(EngineConfig())

    def test_map_reduce_by_key(self):
        sc = self.make_context()
        counts = (
            sc.parallelize(["a", "b", "a", "c", "a"])
            .map_to_pair(lambda w: (w, 1))
            .reduce_by_key(lambda x, y: x + y)
            .collect_as_map()
        )
        assert counts == {"a": 3, "b": 1, "c": 1}

    def test_filter_and_count(self):
        sc = self.make_context()
        assert sc.parallelize(list(range(10))).filter(lambda x: x % 2 == 0).count() == 5

    def test_flat_map(self):
        sc = self.make_context()
        words = sc.parallelize(["a b", "c"]).flat_map(lambda s: s.split())
        assert sorted(words.collect()) == ["a", "b", "c"]

    def test_reduce_action(self):
        sc = self.make_context()
        assert sc.parallelize([1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self):
        sc = self.make_context()
        with pytest.raises(EngineError):
            sc.parallelize([]).reduce(lambda a, b: a + b)

    def test_join(self):
        sc = self.make_context()
        left = sc.parallelize([(1, "a"), (2, "b")]).map_to_pair(lambda kv: kv)
        right = sc.parallelize([(1, "x"), (3, "y")]).map_to_pair(lambda kv: kv)
        joined = dict(left.join(right).collect())
        assert joined == {1: ("a", "x")}

    def test_take_is_first_k(self):
        sc = self.make_context()
        rdd = sc.parallelize(list(range(100)))
        assert rdd.take(5) == [0, 1, 2, 3, 4]

    def test_pair_op_requires_pairs(self):
        sc = self.make_context()
        with pytest.raises(EngineError):
            sc.parallelize([1, 2]).reduce_by_key(lambda a, b: a + b)

    def test_group_by_key_preserves_order(self):
        sc = self.make_context()
        pairs = [("k", 3), ("k", 1), ("k", 2)]
        grouped = (
            sc.parallelize(pairs, partitions=1)
            .map_to_pair(lambda kv: kv)
            .group_by_key()
            .collect_as_map()
        )
        assert grouped["k"] == [3, 1, 2]


class TestMetricsAccounting:
    def test_combiner_reduces_shuffled_bytes(self):
        """The Table 4 mechanism: combiners shrink shuffle volume."""
        words = ["w%d" % (i % 10) for i in range(5000)]

        sc1 = SimSparkContext(EngineConfig())
        sc1.parallelize(words).map_to_pair(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        with_combiner = sc1.metrics.bytes_shuffled

        sc2 = SimSparkContext(EngineConfig())
        (
            sc2.parallelize(words)
            .map_to_pair(lambda w: (w, 1))
            .group_by_key()
            .map_values(lambda vs: sum(vs))
            .collect()
        )
        without_combiner = sc2.metrics.bytes_shuffled

        # Combining collapses 5000 word pairs to (distinct × partitions).
        assert with_combiner < without_combiner / 5

    def test_simulated_time_scales_with_data_scale(self):
        words = ["w"] * 1000
        small = SimSparkContext(EngineConfig(scale=1.0))
        small.parallelize(words).map_to_pair(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        big = SimSparkContext(EngineConfig(scale=1000.0))
        big.parallelize(words).map_to_pair(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        assert big.metrics.simulated_seconds > small.metrics.simulated_seconds

    def test_startup_charged_once(self):
        sc = SimSparkContext(EngineConfig())
        rdd = sc.parallelize([1, 2, 3])
        rdd = rdd.map(lambda x: x + 1).map(lambda x: x * 2)
        # Only one startup in total: time < 2 startups + overheads.
        assert sc.metrics.simulated_seconds < 2 * sc.config.framework.startup_s + 2


class TestHadoopAPI:
    def test_word_count_job(self):
        job = SimHadoopJob(
            mapper=lambda w: [(w, 1)],
            reducer=lambda k, vs: [(k, sum(vs))],
            combiner=lambda a, b: a + b,
        )
        result = dict(job.run(["a", "b", "a"]))
        assert result == {"a": 2, "b": 1}

    def test_map_only_job(self):
        job = SimHadoopJob(mapper=lambda x: [(x, x * x)])
        assert dict(job.run([1, 2, 3])) == {1: 1, 2: 4, 3: 9}

    def test_hadoop_slower_than_spark(self):
        words = ["w%d" % (i % 50) for i in range(2000)]
        job = SimHadoopJob(
            mapper=lambda w: [(w, 1)],
            reducer=lambda k, vs: [(k, sum(vs))],
            combiner=lambda a, b: a + b,
            config=EngineConfig(scale=1000),
        )
        job.run(words)
        sc = SimSparkContext(EngineConfig(scale=1000))
        sc.parallelize(words).map_to_pair(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        assert job.metrics.simulated_seconds > sc.metrics.simulated_seconds


class TestFlinkAPI:
    def test_group_reduce(self):
        env = SimFlinkEnv()
        result = (
            env.from_collection(["a", "b", "a"])
            .map_to_pair(lambda w: (w, 1))
            .group_by_key_reduce(lambda x, y: x + y)
            .collect()
        )
        assert dict(result) == {"a": 2, "b": 1}

    def test_filter_map_pipeline(self):
        env = SimFlinkEnv()
        out = (
            env.from_collection(list(range(10)))
            .filter(lambda x: x > 5)
            .map(lambda x: x * 10)
            .collect()
        )
        assert out == [60, 70, 80, 90]

    def test_flink_between_spark_and_hadoop(self):
        words = ["w%d" % (i % 50) for i in range(2000)]
        config = EngineConfig(scale=2000)

        sc = SimSparkContext(config)
        sc.parallelize(words).map_to_pair(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b
        ).collect()

        env = SimFlinkEnv(config)
        env.from_collection(words).map_to_pair(lambda w: (w, 1)).group_by_key_reduce(
            lambda a, b: a + b
        ).collect()

        job = SimHadoopJob(
            mapper=lambda w: [(w, 1)],
            reducer=lambda k, vs: [(k, sum(vs))],
            combiner=lambda a, b: a + b,
            config=config,
        )
        job.run(words)

        assert (
            sc.metrics.simulated_seconds
            < env.metrics.simulated_seconds
            < job.metrics.simulated_seconds
        )


class TestSequentialBaseline:
    def test_sequential_result_and_time(self):
        program = parse_program(
            "int f(int[] d, int n) { int s = 0; for (int i = 0; i < n; i++) s += d[i]; return s; }"
        )
        result = run_sequential(program, "f", [[1, 2, 3], 3], scale=1000.0)
        assert result.result == 6
        assert result.simulated_seconds > 0
        assert result.records == 3

    def test_scale_increases_time_linearly(self):
        program = parse_program(
            "int f(int[] d, int n) { int s = 0; for (int i = 0; i < n; i++) s += d[i]; return s; }"
        )
        t1 = run_sequential(program, "f", [[1] * 100, 100], scale=1.0).simulated_seconds
        t2 = run_sequential(program, "f", [[1] * 100, 100], scale=100.0).simulated_seconds
        assert abs(t2 / t1 - 100.0) < 1.0

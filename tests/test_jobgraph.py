"""Unit tests for the whole-program job-graph layer.

Covers the inter-fragment dataflow analysis, the JobGraph IR (cycle
detection, failed-producer validation), the fusion optimizer (map→map
fusion, combiner hoisting, dead-stage elimination), the engine's bridge
step, and the executor's failure paths.
"""

from __future__ import annotations

import pytest

from repro import run_program, translate
from repro.errors import GraphError
from repro.graph import (
    JobEdge,
    JobGraph,
    JobNode,
    interpret_reference,
    optimize_graph,
    run_graph,
)
from repro.lang.analysis import analyze_dataflow, identify_fragments
from repro.lang.analysis.fragments import analyze_fragment
from repro.lang.parser import parse_program
from repro.lang.values import values_equal

SELECT_SUM_SOURCE = """
class Row { int id; int val; }
double selectSum(List<Row> rows, int threshold) {
  List<int> kept = new ArrayList<int>();
  for (Row r : rows) {
    if (r.val > threshold) kept.add(r.val);
  }
  double total = 0;
  for (int v : kept) {
    total += v;
  }
  return total;
}
"""

TWO_BRANCH_SOURCE = """
int twoBranches(int[] data, int n) {
  int a = 0;
  for (int i = 0; i < n; i++) a += data[i];
  int b = 0;
  for (int j = 0; j < n; j++) b += data[j] * data[j];
  return a + b;
}
"""


def _rows(n):
    from repro.lang.values import Instance

    return [Instance("Row", {"id": i, "val": (i * 37) % 100}) for i in range(n)]


def _analyses(source, function=None):
    program = parse_program(source)
    func = program.function(function) if function else program.functions[0]
    out = []
    for fragment in identify_fragments(func):
        try:
            out.append(analyze_fragment(fragment, program))
        except Exception:
            out.append(None)
    return out, func


class TestDataflow:
    def test_chain_edge_with_dataset_kind(self):
        analyses, func = _analyses(SELECT_SUM_SOURCE)
        flow = analyze_dataflow(analyses, func)
        assert len(flow.edges) == 1
        edge = flow.edges[0]
        assert (edge.producer, edge.consumer, edge.var) == (0, 1, "kept")
        assert edge.kind == "dataset"
        assert flow.final_vars == {"total"}
        assert "rows" in flow.source_vars

    def test_independent_branches_have_no_edges(self):
        analyses, func = _analyses(TWO_BRANCH_SOURCE)
        flow = analyze_dataflow(analyses, func)
        assert flow.edges == []
        assert flow.final_vars == {"a", "b"}

    def test_broadcast_edge_kind(self):
        source = """
        class Edge { int src; int dst; }
        double[] pr(List<Edge> edges, double[] rank, int nodes) {
          int[] outdeg = new int[nodes];
          for (Edge e : edges) {
            outdeg[e.src] = outdeg[e.src] + 1;
          }
          double[] contrib = new double[nodes];
          for (Edge e : edges) {
            contrib[e.dst] = contrib[e.dst] + rank[e.src] / outdeg[e.src];
          }
          return contrib;
        }
        """
        analyses, func = _analyses(source)
        flow = analyze_dataflow(analyses, func)
        kinds = {(e.producer, e.consumer, e.var): e.kind for e in flow.edges}
        assert kinds[(0, 1, "outdeg")] == "broadcast"

    def test_failed_analysis_has_no_edges(self):
        analyses, func = _analyses(SELECT_SUM_SOURCE)
        flow = analyze_dataflow([analyses[0], None], func)
        assert flow.edges == []


class TestJobGraphIR:
    def test_compiled_graph_attached_by_sixth_pass(self):
        result = translate(SELECT_SUM_SOURCE)
        assert result.job_graph is not None
        assert "graph" in result.pass_seconds
        assert set(result.job_graph.nodes) == {"selectSum#0", "selectSum#1"}
        assert result.job_graph.final_vars == frozenset({"total"})

    def test_topological_order_and_describe(self):
        result = translate(SELECT_SUM_SOURCE)
        graph = result.job_graph
        assert graph.topological_order() == ["selectSum#0", "selectSum#1"]
        text = graph.describe()
        assert "selectSum#0 --kept/dataset--> selectSum#1" in text

    def test_cycle_detection(self):
        graph = JobGraph(function="loop")
        graph.nodes["a"] = JobNode(id="a", index=0)
        graph.nodes["b"] = JobNode(id="b", index=1)
        graph.edges = [
            JobEdge("a", "b", "x", "dataset"),
            JobEdge("b", "a", "y", "dataset"),
        ]
        with pytest.raises(GraphError, match="cycle"):
            graph.topological_order()

    def test_check_producers_names_failed_producer(self):
        result = translate(SELECT_SUM_SOURCE)
        graph = result.job_graph
        producer = graph.nodes["selectSum#0"]
        producer.program = None
        producer.failure_reason = "synthetic failure"
        with pytest.raises(GraphError, match="selectSum#0.*synthetic failure"):
            graph.check_producers()


class TestFusion:
    def test_map_map_fusion_and_combiner_hoist(self):
        result = translate(SELECT_SUM_SOURCE)
        schedule = optimize_graph(result.job_graph)
        assert len(schedule.units) == 1
        unit = schedule.units[0]
        assert unit.node_ids == ("selectSum#0", "selectSum#1")
        assert unit.bridges == ("map",)
        assert schedule.fused_away == frozenset({"kept"})
        assert any("map→map fused" in d for d in schedule.decisions)
        assert any("combiner hoisted" in d for d in schedule.decisions)

    def test_fuse_disabled_yields_singletons(self):
        result = translate(SELECT_SUM_SOURCE)
        schedule = optimize_graph(result.job_graph, fuse=False)
        assert [u.node_ids for u in schedule.units] == [
            ("selectSum#0",),
            ("selectSum#1",),
        ]

    def test_observable_intermediate_uses_barrier_bridge(self):
        # When the intermediate is itself required, map→map fusion would
        # lose it; the optimizer must degrade to a capturing barrier.
        result = translate(SELECT_SUM_SOURCE)
        schedule = optimize_graph(result.job_graph, required_vars={"kept", "total"})
        unit = schedule.units[0]
        assert unit.bridges == ("barrier",)

    def test_prelude_reading_intermediate_blocks_fusion(self):
        # The consumer's prelude runs at chain-assembly time, before the
        # intermediate exists; fusing here would crash the default path.
        source = """
        class Row { int id; int val; }
        double selectSum(List<Row> rows, int threshold) {
          List<int> kept = new ArrayList<int>();
          for (Row r : rows) {
            if (r.val > threshold) kept.add(r.val);
          }
          double n = kept.size();
          double total = 0;
          for (int v : kept) {
            total += v;
          }
          return total;
        }
        """
        result = translate(source)
        assert all(f.translated for f in result.fragments)
        schedule = optimize_graph(result.job_graph)
        assert all(not unit.fused for unit in schedule.units)
        inputs = {"rows": _rows(60), "threshold": 50}
        outputs = run_program(result, dict(inputs))
        expected = interpret_reference(result.job_graph, dict(inputs))
        assert values_equal(outputs["total"], expected["total"])

    def test_dead_stage_elimination(self):
        result = translate(TWO_BRANCH_SOURCE)
        schedule = optimize_graph(result.job_graph, required_vars={"a"})
        assert len(schedule.units) == 1
        assert "twoBranches#1" in schedule.eliminated
        assert "dead stage" in schedule.eliminated["twoBranches#1"]


class TestExecutorFailurePaths:
    def test_consumer_of_failed_producer_raises(self):
        result = translate(SELECT_SUM_SOURCE)
        graph = result.job_graph
        producer = graph.nodes["selectSum#0"]
        producer.program = None
        producer.failure_reason = "no valid summary"
        with pytest.raises(GraphError) as excinfo:
            run_graph(graph, {"rows": _rows(10), "threshold": 50})
        message = str(excinfo.value)
        assert "selectSum#0" in message
        assert "no valid summary" in message
        assert "strict=False" in message

    def test_cyclic_graph_raises_through_run(self):
        result = translate(SELECT_SUM_SOURCE)
        graph = result.job_graph
        graph.edges.append(JobEdge("selectSum#1", "selectSum#0", "total", "broadcast"))
        with pytest.raises(GraphError, match="cycle"):
            run_graph(graph, {"rows": _rows(10), "threshold": 50})

    def test_non_strict_interprets_failed_producer(self):
        result = translate(SELECT_SUM_SOURCE)
        graph = result.job_graph
        producer = graph.nodes["selectSum#0"]
        producer.program = None
        producer.failure_reason = "no valid summary"
        inputs = {"rows": _rows(40), "threshold": 50}
        run = run_graph(graph, dict(inputs), strict=False)
        expected = interpret_reference(graph, dict(inputs))
        assert run.report.interpreted_nodes == ["selectSum#0"]
        assert values_equal(run.outputs["total"], expected["total"])

    def test_requested_output_must_exist(self):
        result = translate(SELECT_SUM_SOURCE)
        with pytest.raises(GraphError, match="nonexistent"):
            run_program(
                result,
                {"rows": _rows(10), "threshold": 50},
                outputs=["nonexistent"],
            )


class TestExecutor:
    def test_fused_matches_reference(self):
        result = translate(SELECT_SUM_SOURCE)
        inputs = {"rows": _rows(300), "threshold": 50}
        fused = run_program(result, dict(inputs))
        expected = interpret_reference(result.job_graph, dict(inputs))
        assert values_equal(fused["total"], expected["total"])
        assert "kept" not in fused  # fused away, never materialized
        report = result.last_graph_run.report
        assert sorted(report.fused_away) == ["kept"]

    def test_unfused_materializes_intermediate(self):
        result = translate(SELECT_SUM_SOURCE)
        inputs = {"rows": _rows(300), "threshold": 50}
        unfused = run_program(result, dict(inputs), fuse=False)
        expected = interpret_reference(result.job_graph, dict(inputs))
        assert values_equal(unfused["kept"], expected["kept"])
        assert values_equal(unfused["total"], expected["total"])

    def test_fusion_saves_simulated_time(self):
        result = translate(SELECT_SUM_SOURCE)
        inputs = {"rows": _rows(500), "threshold": 50}
        run_program(result, dict(inputs), plan="sequential")
        fused = result.last_graph_run.report.simulated_seconds
        run_program(result, dict(inputs), plan="sequential", fuse=False)
        unfused = result.last_graph_run.report.simulated_seconds
        assert fused < unfused

    def test_branches_share_one_wave_and_records_cache(self):
        result = translate(TWO_BRANCH_SOURCE)
        inputs = {"data": list(range(64)), "n": 64}
        outputs = run_program(result, dict(inputs), max_workers=2)
        report = result.last_graph_run.report
        assert report.plan.waves == [(0, 1)]
        assert report.plan.concurrency == 2
        assert report.records_cache_hits >= 1
        expected = interpret_reference(result.job_graph, dict(inputs))
        assert values_equal(outputs["a"], expected["a"])
        assert values_equal(outputs["b"], expected["b"])

    def test_forced_cluster_plan_degrades_fused_chains(self):
        result = translate(SELECT_SUM_SOURCE)
        run_program(result, {"rows": _rows(100), "threshold": 50}, plan="spark")
        report = result.last_graph_run.report
        unit_report = report.unit_reports["selectSum#0"]
        assert unit_report.plan.backend == "sequential"
        assert any("degraded" in r for r in unit_report.plan.reasons)


class TestBridgeStep:
    def test_bridge_step_in_engine_pipeline(self):
        from repro.engine.multiprocess import (
            BridgeStep,
            MapStep,
            MultiprocessEngine,
            ReduceStep,
        )

        engine = MultiprocessEngine(processes=0)
        steps = [
            MapStep(lambda record: [(record % 3, record)]),
            ReduceStep(lambda a, b: a + b),
            BridgeStep(lambda pairs: [value for _key, value in pairs]),
            MapStep(lambda record: [("all", record)]),
            ReduceStep(lambda a, b: a + b),
        ]
        result = engine.run_pipeline(list(range(10)), steps)
        assert result.pairs == [("all", sum(range(10)))]
        names = [stage.name for stage in result.metrics.stages]
        assert any(name.startswith("bridge") for name in names)

"""Unit tests for the mini-Java lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestLiterals:
    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.INT_LIT
        assert tokens[0].text == "42"

    def test_float_literal(self):
        assert kinds("3.25") == [TokenType.FLOAT_LIT]

    def test_float_with_exponent(self):
        assert kinds("1e9 2.5e-3") == [TokenType.FLOAT_LIT, TokenType.FLOAT_LIT]

    def test_float_suffix_consumed(self):
        tokens = tokenize("2.0f")
        assert tokens[0].type is TokenType.FLOAT_LIT
        assert tokens[1].type is TokenType.EOF

    def test_long_suffix_consumed(self):
        tokens = tokenize("7L")
        assert tokens[0].type is TokenType.INT_LIT
        assert tokens[1].type is TokenType.EOF

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].type is TokenType.STRING_LIT
        assert tokens[0].text == "hello world"

    def test_string_escapes(self):
        tokens = tokenize(r'"a\nb\t\"c\""')
        assert tokens[0].text == 'a\nb\t"c"'

    def test_char_literal(self):
        tokens = tokenize("'x'")
        assert tokens[0].type is TokenType.CHAR_LIT
        assert tokens[0].text == "x"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')


class TestOperators:
    def test_compound_assignment_operators(self):
        assert kinds("+= -= *= /= %=") == [
            TokenType.PLUS_ASSIGN,
            TokenType.MINUS_ASSIGN,
            TokenType.STAR_ASSIGN,
            TokenType.SLASH_ASSIGN,
            TokenType.PERCENT_ASSIGN,
        ]

    def test_comparison_operators(self):
        assert kinds("== != <= >= < >") == [
            TokenType.EQ,
            TokenType.NEQ,
            TokenType.LE,
            TokenType.GE,
            TokenType.LT,
            TokenType.GT,
        ]

    def test_increment_greedy_match(self):
        assert kinds("i++ + ++j") == [
            TokenType.IDENT,
            TokenType.PLUS_PLUS,
            TokenType.PLUS,
            TokenType.PLUS_PLUS,
            TokenType.IDENT,
        ]

    def test_logical_operators(self):
        assert kinds("&& || !") == [
            TokenType.AND_AND,
            TokenType.OR_OR,
            TokenType.NOT,
        ]

    def test_shift_operators(self):
        assert kinds("<< >>") == [TokenType.SHL, TokenType.SHR]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x \n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestKeywordsAndIdentifiers:
    def test_keywords_recognized(self):
        for word in ("int", "for", "while", "class", "return", "true", "null"):
            assert tokenize(word)[0].type is TokenType.KEYWORD

    def test_identifier_not_keyword(self):
        token = tokenize("integer")[0]
        assert token.type is TokenType.IDENT

    def test_underscore_identifier(self):
        assert tokenize("_private_var1")[0].type is TokenType.IDENT

    def test_is_keyword_helper(self):
        assert tokenize("for")[0].is_keyword("for")
        assert not tokenize("for")[0].is_keyword("if")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a # b")


def test_full_function_token_stream():
    source = "int f(int x) { return x + 1; }"
    assert kinds(source) == [
        TokenType.KEYWORD,
        TokenType.IDENT,
        TokenType.LPAREN,
        TokenType.KEYWORD,
        TokenType.IDENT,
        TokenType.RPAREN,
        TokenType.LBRACE,
        TokenType.KEYWORD,
        TokenType.IDENT,
        TokenType.PLUS,
        TokenType.INT_LIT,
        TokenType.SEMI,
        TokenType.RBRACE,
    ]

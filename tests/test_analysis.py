"""Tests for program analysis: liveness, scan, views, fragments."""

import pytest

from repro.errors import AnalysisError
from repro.lang.analysis import (
    analyze_fragment,
    build_type_env,
    desugar_stmt,
    expr_defs,
    expr_uses,
    extract_dataset_view,
    identify_fragments,
    infer_type,
    live_before,
    normalize_loop,
    outermost_loops,
    scan_fragment,
    stmt_defs,
    stmt_uses,
)
from repro.lang import ast
from repro.lang.parser import parse_function, parse_program
from repro.lang.types import BOOLEAN, DOUBLE, INT, STRING


def first_loop(source, name=None):
    program = parse_program(source)
    func = program.function(name) if name else program.functions[0]
    return outermost_loops(func.body.stmts)[0], func, program


class TestUseDef:
    def test_expr_uses_simple(self):
        func = parse_function("int f(int a, int b) { return a + b * 2; }")
        assert expr_uses(func.body.stmts[0].value) == {"a", "b"}

    def test_expr_defs_assignment(self):
        func = parse_function("int f(int a) { a = a + 1; return a; }")
        stmt = func.body.stmts[0]
        assert expr_defs(stmt.expr) == {"a"}
        assert "a" in expr_uses(stmt.expr)

    def test_array_store_defines_container(self):
        func = parse_function("int f(int[] m, int i) { m[i] = 1; return 0; }")
        assert expr_defs(func.body.stmts[0].expr) == {"m"}
        assert expr_uses(func.body.stmts[0].expr) >= {"m", "i"}

    def test_collection_mutator_defines_receiver(self):
        func = parse_function(
            "int f(List<int> out, int x) { out.add(x); return 0; }"
        )
        assert expr_defs(func.body.stmts[0].expr) == {"out"}

    def test_stmt_defs_includes_declarations(self):
        func = parse_function("int f() { int a = 1; return a; }")
        assert stmt_defs(func.body.stmts[0]) == {"a"}


class TestLiveness:
    def test_live_before_sequence(self):
        func = parse_function("int f(int a, int b) { int c = a + b; return c; }")
        live = live_before(func.body.stmts, set())
        assert live == {"a", "b"}

    def test_dead_assignment_not_live(self):
        func = parse_function("int f(int a) { int c = a; c = 5; return c; }")
        live = live_before(func.body.stmts[1:], set())
        assert "c" not in live

    def test_loop_keeps_accumulator_live(self):
        func = parse_function(
            "int f(int[] d, int n) { int s = 0; for (int i = 0; i < n; i++) s += d[i]; return s; }"
        )
        live = live_before(func.body.stmts[1:], set())
        assert "s" in live and "d" in live and "n" in live


class TestTypeInference:
    def test_infer_variable_types(self):
        program = parse_program("double f(int a, double b, String s) { return b; }")
        func = program.functions[0]
        env = build_type_env(func, program)
        assert env.lookup("a") == INT
        assert env.lookup("b") == DOUBLE
        assert env.lookup("s") == STRING

    def test_infer_binop_widening(self):
        program = parse_program("double f(int a, double b) { return a * b; }")
        func = program.functions[0]
        env = build_type_env(func, program)
        assert infer_type(func.body.stmts[0].value, env, program) == DOUBLE

    def test_infer_comparison_is_boolean(self):
        program = parse_program("boolean f(int a) { return a < 3; }")
        func = program.functions[0]
        env = build_type_env(func, program)
        assert infer_type(func.body.stmts[0].value, env, program) == BOOLEAN

    def test_infer_field_access(self):
        program = parse_program(
            "class P { double w; } double f(P p) { return p.w; }"
        )
        func = program.functions[0]
        env = build_type_env(func, program)
        assert infer_type(func.body.stmts[0].value, env, program) == DOUBLE


class TestScan:
    def test_scan_operators_and_constants(self):
        func = parse_function(
            "int f(int[] d, int n) { int s = 0; for (int i = 0; i < n; i++) if (d[i] > 10) s += d[i] * 2; return s; }"
        )
        result = scan_fragment(func.body.stmts)
        assert {"+", "*", ">", "<"} <= result.operators
        assert (10, INT) in result.constants
        assert result.has_conditionals

    def test_scan_methods(self):
        func = parse_function(
            "double f(double[] d, int n) { double s = 0; for (int i = 0; i < n; i++) s += Math.abs(d[i]); return s; }"
        )
        result = scan_fragment(func.body.stmts)
        assert "Math.abs" in result.methods

    def test_scan_nested_loops_flag(self):
        func = parse_function(
            "int f(int[][] m, int r, int c) { int s = 0; for (int i = 0; i < r; i++) for (int j = 0; j < c; j++) s += m[i][j]; return s; }"
        )
        assert scan_fragment(func.body.stmts).has_nested_loops


class TestDatasetViews:
    def test_array1d_view(self):
        loop, func, program = first_loop(
            "int f(int[] d, int n) { int s = 0; for (int i = 0; i < n; i++) s += d[i]; return s; }"
        )
        view = extract_dataset_view(loop, build_type_env(func, program), program)
        assert view.kind == "array1d"
        assert view.sources == ["d"]
        assert view.field_names == ["i", "d"]

    def test_zipped_arrays_view(self):
        loop, func, program = first_loop(
            "double f(double[] x, double[] y, int n) { double s = 0; for (int i = 0; i < n; i++) s += x[i] * y[i]; return s; }"
        )
        view = extract_dataset_view(loop, build_type_env(func, program), program)
        assert view.sources == ["x", "y"]

    def test_array2d_view(self):
        loop, func, program = first_loop(
            "int f(int[][] m, int r, int c) { int s = 0; for (int i = 0; i < r; i++) for (int j = 0; j < c; j++) s += m[i][j]; return s; }"
        )
        view = extract_dataset_view(loop, build_type_env(func, program), program)
        assert view.kind == "array2d"
        assert view.field_names == ["i", "j", "v"]

    def test_foreach_struct_view_flattens_fields(self):
        loop, func, program = first_loop(
            "class P { int a; int b; } int f(List<P> ps) { int s = 0; for (P p : ps) s += p.a; return s; }",
            "f",
        )
        view = extract_dataset_view(loop, build_type_env(func, program), program)
        assert view.kind == "foreach"
        assert view.field_names == ["a", "b"]
        assert view.element_class == "P"

    def test_output_array_not_a_source(self):
        loop, func, program = first_loop(
            "int[] f(int[] x, int n) { int[] y = new int[n]; for (int i = 0; i < n; i++) y[i] = x[i] + 1; return y; }"
        )
        view = extract_dataset_view(loop, build_type_env(func, program), program)
        assert view.sources == ["x"]

    def test_materialize_2d(self):
        loop, func, program = first_loop(
            "int f(int[][] m, int r, int c) { int s = 0; for (int i = 0; i < r; i++) for (int j = 0; j < c; j++) s += m[i][j]; return s; }"
        )
        view = extract_dataset_view(loop, build_type_env(func, program), program)
        elements = view.materialize({"m": [[1, 2], [3, 4]]})
        assert elements == [
            {"i": 0, "j": 0, "v": 1},
            {"i": 0, "j": 1, "v": 2},
            {"i": 1, "j": 0, "v": 3},
            {"i": 1, "j": 1, "v": 4},
        ]

    def test_non_counter_loop_rejected(self):
        loop, func, program = first_loop(
            "int f(int n) { int s = 0; for (int i = n; i > 0; i--) s += i; return s; }"
        )
        with pytest.raises(AnalysisError):
            extract_dataset_view(loop, build_type_env(func, program), program)


class TestNormalization:
    def test_desugar_compound_assignment(self):
        func = parse_function("int f(int a) { a += 2; return a; }")
        stmt = desugar_stmt(func.body.stmts[0])
        assert stmt.expr.op == "="
        assert isinstance(stmt.expr.value, ast.BinOp)

    def test_desugar_increment(self):
        func = parse_function("int f(int a) { a++; return a; }")
        stmt = desugar_stmt(func.body.stmts[0])
        assert isinstance(stmt.expr, ast.Assign)

    def test_normalize_for_to_while_true(self):
        func = parse_function(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        loop = outermost_loops(func.body.stmts)[0]
        normalized = normalize_loop(loop)
        assert isinstance(normalized, ast.While)
        assert isinstance(normalized.cond, ast.BoolLit) and normalized.cond.value
        # first statement is the guard-break
        guard = normalized.body.stmts[0]
        assert isinstance(guard, ast.If) and isinstance(guard.then, ast.Break)


class TestFragments:
    def test_identify_fragment_and_prelude(self, q6_analysis):
        fragment = q6_analysis.fragment
        assert len(fragment.prelude) == 3  # dt1, dt2, revenue
        assert q6_analysis.input_vars.keys() == {"lineitem"}
        assert q6_analysis.output_vars.keys() == {"revenue"}

    def test_prelude_constants_evaluated(self, q6_analysis):
        assert q6_analysis.prelude_constants["revenue"] == 0.0
        assert q6_analysis.prelude_constants["dt1"].get("epoch") > 0

    def test_rwm_analysis(self, rwm_analysis):
        assert rwm_analysis.input_vars.keys() == {"mat", "rows", "cols"}
        assert rwm_analysis.output_vars.keys() == {"m"}
        assert rwm_analysis.features.multidimensional
        assert rwm_analysis.features.nested_loops

    def test_fragment_without_outputs_rejected(self):
        program = parse_program(
            "int f(int[] d, int n) { int s = 0; for (int i = 0; i < n; i++) s += d[i]; return 0; }"
        )
        fragment = identify_fragments(program.functions[0])[0]
        with pytest.raises(AnalysisError):
            analyze_fragment(fragment, program)

    def test_multiple_fragments_identified(self):
        program = parse_program(
            """
            int f(int[] d, int n) {
              int a = 0;
              for (int i = 0; i < n; i++) a += d[i];
              int b = 0;
              for (int i = 0; i < n; i++) b += d[i] * d[i];
              return a + b;
            }
            """
        )
        fragments = identify_fragments(program.functions[0])
        assert len(fragments) == 2
        assert fragments[0].id == "f#0" and fragments[1].id == "f#1"

    def test_loc_metric_positive(self, rwm_analysis):
        assert rwm_analysis.loc >= 5

"""Golden tests for the static diagnostics layer.

Three properties are pinned here:

1. **Every stable code fires** — each REP1xx/REP2xx/REP3xx diagnostic
   and each LNT10x lint code is triggered by a crafted fragment (or a
   crafted Python file, for the lint), so a code silently going dead is
   a test failure, not a doc rot.
2. **The soundness gate is behavior-neutral** — compiling with the gate
   on vs off changes *which diagnostics exist*, never what a translated
   fragment computes: the differential sweep runs representative suites
   both ways on the sequential and multiprocess backends and demands
   byte-identical outputs.
3. **The lint invariant holds locally** — ``repro.diagnostics.lint``
   self-runs clean over ``src/repro`` (the same check CI enforces).
"""

from __future__ import annotations

import pickle
import threading
import types
from pathlib import Path

import pytest

import repro
from repro.compiler import CasperCompiler, translate
from repro.diagnostics import (
    REGISTRY,
    SEVERITIES,
    analyze_soundness,
    diagnostic_from_data,
    explain,
    info_for,
    make,
    probe_payload,
    static_unpicklable_reason,
    worst_severity,
)
from repro.diagnostics.lint import lint_file, lint_tree, main as lint_main
from repro.engine.multiprocess import MapStep, MultiprocessEngine
from repro.errors import AnalysisError, DiagnosticError
from repro.graph.executor import interpret_fragment
from repro.lang.values import values_equal
from repro.lang.analysis.fragments import fingerprint_fragment
from repro.pipeline.cache import SummaryCache
from repro.synthesis.search import SearchConfig
from repro.workloads import all_benchmarks, get_benchmark
from repro.workloads.runner import compile_benchmark

# ----------------------------------------------------------------------
# Crafted fragments, one per diagnostic family

NOISY_SUM = """
double noisySum(double[] data, int n) {
  double total = 0;
  for (int i = 0; i < n; i++) total += data[i] * Math.random();
  return total;
}
"""

UNMODELLED_STATIC = """
int bits(int[] data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) total += Integer.bitCount(data[i]);
  return total;
}
"""

SCRATCH_MUTATION = """
int sumWithScratch(List<Integer> data, int n) {
  List<Integer> scratch = new ArrayList<Integer>();
  int sum = 0;
  for (int i = 0; i < n; i++) {
    scratch.add(data.get(i));
    sum = sum + data.get(i);
  }
  return sum;
}
"""

SET_ITERATION = """
int setTotal(Set<Integer> items) {
  int total = 0;
  for (int v : items) {
    total = total + v;
  }
  return total;
}
"""

FLOAT_FOLD = """
double fsum(double[] data, int n) {
  double total = 0;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
"""

PRELUDE_FAULT = """
int crash(int[] data, int n) {
  int z = 0;
  int w = 5 / z;
  int total = 0;
  for (int i = 0; i < n; i++) total += data[i] + w;
  return total;
}
"""

ORDER_DEPENDENT = """
int weird(int[] data, int n) {
  int acc = 7;
  for (int i = 0; i < n; i++) {
    acc = acc * acc + data[i];
  }
  return acc;
}
"""


def codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# Registry and Diagnostic invariants


class TestRegistry:
    def test_codes_are_stable_and_well_formed(self):
        for code, info in REGISTRY.items():
            assert code == info.code
            assert code[:3] in ("REP", "LNT")
            assert info.severity in SEVERITIES
            assert info.title
            assert info.hint

    def test_families_present(self):
        prefixes = {c[:4] for c in REGISTRY if c.startswith("REP")}
        assert prefixes == {"REP1", "REP2", "REP3"}
        assert any(c.startswith("LNT") for c in REGISTRY)

    def test_make_fills_registry_defaults(self):
        diag = make("REP103", "boom", line=4, fragment="f#0")
        assert diag.severity == info_for("REP103").severity == "error"
        assert diag.hint == info_for("REP103").hint
        assert "REP103" in diag.render() and "boom" in diag.render()

    def test_make_rejects_unknown_code(self):
        with pytest.raises(Exception):
            make("REP999", "nope")

    def test_explicit_severity_only_escalates(self):
        # REP104 defaults to warning; an explicit error sticks …
        assert make("REP104", "m", severity="error").severity == "error"
        # … but an attempted demotion of an error-level code does not.
        assert make("REP103", "m", severity="info").severity == "error"

    def test_as_dict_round_trip(self):
        diag = make("REP203", "two of three", fragment="g#1")
        clone = diagnostic_from_data(diag.as_dict())
        assert clone == diag

    def test_explain_orders_by_severity(self):
        text = explain(
            [make("REP106", "info one"), make("REP103", "error one")]
        )
        assert text.index("REP103") < text.index("REP106")
        assert worst_severity(
            [make("REP106", "a"), make("REP103", "b")]
        ) == "error"


# ----------------------------------------------------------------------
# REP1xx: the soundness gate


class TestSoundnessGate:
    def test_rep103_nondeterminism_rejected_before_cegis(self):
        result = translate(NOISY_SUM)
        frag = result.fragments[0]
        assert not frag.translated
        assert frag.search is None  # CEGIS never ran
        assert "REP103" in codes(frag.diagnostics)
        assert "REP103" in frag.failure_reason
        assert "REP103" in frag.explain()

    def test_rep102_unmodelled_stdlib_rejected(self):
        result = translate(UNMODELLED_STATIC)
        frag = result.fragments[0]
        assert not frag.translated
        assert frag.search is None
        assert "REP102" in codes(frag.diagnostics)

    def test_rep104_scratch_mutation_warns_but_translates(self):
        result = translate(SCRATCH_MUTATION)
        frag = result.fragments[0]
        assert frag.translated
        assert "REP104" in codes(frag.diagnostics)
        rep104 = next(d for d in frag.diagnostics if d.code == "REP104")
        assert rep104.severity == "warning"

    def test_rep105_unordered_iteration_warns(self):
        result = translate(SET_ITERATION)
        frag = result.fragments[0]
        assert frag.translated
        assert "REP105" in codes(frag.diagnostics)

    def test_rep106_float_fold_noted(self):
        result = translate(FLOAT_FOLD)
        frag = result.fragments[0]
        assert frag.translated
        assert "REP106" in codes(frag.diagnostics)
        assert next(
            d for d in frag.diagnostics if d.code == "REP106"
        ).severity == "info"

    def test_rep107_unpicklable_capture(self):
        result = translate(FLOAT_FOLD)
        analysis = result.fragments[0].analysis
        analysis.prelude_constants["bad"] = lambda x: x
        try:
            diags = analyze_soundness(analysis)
        finally:
            del analysis.prelude_constants["bad"]
        assert "REP107" in codes(diags)

    def test_rep101_analysis_failure(self, monkeypatch):
        import repro.pipeline.passes as passes

        def boom(fragment, program):
            raise AnalysisError("deliberately unanalyzable")

        monkeypatch.setattr(passes, "analyze_fragment", boom)
        result = translate(FLOAT_FOLD)
        frag = result.fragments[0]
        assert not frag.translated
        assert "REP101" in codes(frag.diagnostics)
        assert "REP101" in frag.failure_reason

    def test_soundness_off_skips_the_gate(self):
        compiler = CasperCompiler(soundness=False)
        result = compiler.translate_source(NOISY_SUM)
        frag = result.fragments[0]
        # The gate is off, so CEGIS runs (and fails the slow way):
        # no REP1xx rejection, but the search was attempted.
        assert frag.search is not None
        assert "REP103" not in codes(frag.diagnostics)

    def test_compilation_result_aggregates_diagnostics(self):
        result = translate(SCRATCH_MUTATION)
        assert codes(result.diagnostics) == codes(result.fragments[0].diagnostics)
        assert "REP104" in result.explain()


# ----------------------------------------------------------------------
# REP2xx: synthesis and verification


class TestVerificationCodes:
    def test_rep201_symbolic_side_effect_demotes_to_tier2(self):
        """Satellite regression: a fragment whose loop mutates scratch
        state compiles with a bounded-only (Tier-2) proof instead of the
        symbolic executor's old raw ``VerificationError`` raise."""
        result = translate(SCRATCH_MUTATION)
        frag = result.fragments[0]
        assert frag.translated, frag.failure_reason
        best = frag.program.programs[0]
        assert best.proof.status == "unknown"
        assert "REP201" in codes(best.proof.diagnostics)
        # The demotion surfaces as a structured REP203 acceptance note.
        assert "REP203" in codes(frag.diagnostics)
        outputs = frag.program.run({"data": list(range(40)), "n": 40})
        assert outputs["sum"] == sum(range(40))

    def test_rep202_unsupported_symbolic_proof(self):
        result = translate(FLOAT_FOLD)
        frag = result.fragments[0]
        unknown = [
            p for p in frag.program.programs if p.proof.status == "unknown"
        ]
        assert unknown, "expected at least one bounded-only proof"
        assert any("REP202" in codes(p.proof.diagnostics) for p in unknown)

    def test_rep203_and_rep204_on_bounded_acceptance(self):
        result = translate(FLOAT_FOLD)
        frag = result.fragments[0]
        assert "REP203" in codes(frag.diagnostics)
        assert "REP204" in codes(frag.diagnostics)

    def test_rep205_no_summary_found(self):
        result = translate(ORDER_DEPENDENT)
        frag = result.fragments[0]
        assert not frag.translated
        assert "REP205" in codes(frag.diagnostics)
        assert "[REP205]" in frag.failure_reason

    def test_rep206_synthesis_timeout(self):
        result = translate(
            FLOAT_FOLD, search_config=SearchConfig(timeout_seconds=1e-9)
        )
        frag = result.fragments[0]
        assert not frag.translated
        assert "REP206" in codes(frag.diagnostics)
        assert "[REP206]" in frag.failure_reason

    def test_rep208_prelude_fault(self):
        result = translate(PRELUDE_FAULT)
        frag = result.fragments[0]
        assert not frag.translated
        assert "REP208" in codes(frag.diagnostics)

    def test_rep207_no_acceptable_proof(self):
        """Unit-level: the verify-attach gate with nothing acceptable."""
        from repro.pipeline.passes import VerifyAttachPass

        ctx = types.SimpleNamespace(
            search_config=SearchConfig(accept_bounded_only=False),
            strict=False,
        )
        state = types.SimpleNamespace(
            fragment=types.SimpleNamespace(id="f#0"),
            search=types.SimpleNamespace(summaries=[], failure_reason=None),
            diagnostics=[],
            failure_reason=None,
        )
        VerifyAttachPass().run(ctx, state)
        assert "REP207" in codes(state.diagnostics)
        assert "[REP207]" in state.failure_reason


# ----------------------------------------------------------------------
# Strict mode


class TestStrictMode:
    def test_strict_escalates_warnings_to_typed_error(self):
        compiler = CasperCompiler(strict=True)
        with pytest.raises(DiagnosticError) as excinfo:
            compiler.translate_source(SET_ITERATION)
        assert any(d.code == "REP105" for d in excinfo.value.diagnostics)

    def test_strict_is_quiet_on_clean_fragments(self):
        # Even a plain integer sum keeps some bounded-only summaries, so
        # a *fully* quiet strict compile also demands full proofs.
        compiler = CasperCompiler(
            strict=True,
            search_config=SearchConfig(accept_bounded_only=False),
        )
        result = compiler.translate_source(
            """
int total(int[] data, int n) {
  int t = 0;
  for (int i = 0; i < n; i++) t += data[i];
  return t;
}
"""
        )
        assert result.fragments[0].translated


# ----------------------------------------------------------------------
# REP3xx: engine and planner


class TestEngineCodes:
    def test_rep303_tiny_input(self):
        result = MultiprocessEngine(
            processes=4, min_parallel_records=1000
        ).run_pipeline(list(range(10)), [MapStep(_keyed)])
        assert result.fallback_code == "REP303"

    def test_rep302_single_process(self):
        result = MultiprocessEngine(processes=1).run_pipeline(
            list(range(3000)), [MapStep(_keyed)]
        )
        assert result.fallback_code == "REP302"

    def test_rep301_unpicklable_payload(self):
        result = MultiprocessEngine(
            processes=2, min_parallel_records=5
        ).run_pipeline(list(range(3000)), [MapStep(lambda r: [(r % 2, r)])])
        assert result.fallback_code == "REP301"
        assert "not picklable" in result.fallback_reason

    def test_fallback_code_reaches_plan_report(self):
        result = translate(SCRATCH_MUTATION)
        frag = result.fragments[0]
        outputs = frag.program.run(
            {"data": list(range(50)), "n": 50}, plan="multiprocess"
        )
        assert outputs["sum"] == sum(range(50))
        report = frag.program.last_plan_report
        assert report.fallback_reason is not None
        fallback = [d for d in report.diagnostics if d.code.startswith("REP3")]
        assert fallback, "engine fallback must carry a structured code"
        assert all(d.code in REGISTRY for d in fallback)
        summary = report.summary()
        assert summary["diagnostics"]
        assert summary["diagnostics"][0]["code"] == fallback[0].code

    def test_rep306_and_rep307_from_planner_statics(self):
        result = translate(FLOAT_FOLD)
        frag = result.fragments[0]
        planner = frag.program.planner
        original = (planner.static_unpicklable, planner.probe_disagreement)
        planner.static_unpicklable = "payload not picklable: lambda (injected)"
        planner.probe_disagreement = True
        try:
            frag.program.run(
                {"data": [1.0, 2.0, 3.0], "n": 3}, plan="auto"
            )
            report = frag.program.last_plan_report
        finally:
            planner.static_unpicklable, planner.probe_disagreement = original
        assert "REP306" in codes(report.diagnostics)
        assert "REP307" in codes(report.diagnostics)
        assert report.probe_disagreements == 1

    def test_session_job_result_carries_diagnostics(self):
        session = repro.Session(max_workers=0)
        prog = session.compile(SCRATCH_MUTATION)
        job = session.submit(prog, {"data": list(range(30)), "n": 30})
        result = job.result()
        assert result.ok
        assert "REP104" in codes(result.diagnostics)


def _keyed(record):
    return [(record % 10, record)]


# ----------------------------------------------------------------------
# Pickle-probe unification


class TestPickleProbe:
    def test_static_walker_flags_definite_unpicklables(self):
        for value in (
            lambda x: x,
            threading.Lock(),
            (i for i in range(3)),
            {"k": [threading.Lock()]},
        ):
            assert static_unpicklable_reason(value) is not None

    def test_static_walker_clears_plain_data(self):
        for value in (None, 1, "s", [1, 2], {"a": (1.5, b"x")}, _keyed):
            assert static_unpicklable_reason(value) is None

    def test_static_hit_skips_runtime_probe(self):
        verdict = probe_payload(lambda x: x)
        assert verdict.unpicklable
        assert verdict.static_reason is not None
        assert verdict.runtime_reason is None
        assert not verdict.disagreement

    def test_runtime_backstop_catches_what_static_cannot(self):
        class SneakyUnpicklable:
            def __reduce__(self):
                raise pickle.PicklingError("runtime-only failure")

        verdict = probe_payload(SneakyUnpicklable())
        assert verdict.unpicklable
        assert verdict.disagreement
        assert "not picklable" in verdict.reason

    def test_engine_probe_compat_shim(self):
        assert MultiprocessEngine._probe_picklable([1, 2, 3]) is None
        assert "not picklable" in MultiprocessEngine._probe_picklable(
            lambda x: x
        )


# ----------------------------------------------------------------------
# Counterexample persistence


class TestCounterexampleCache:
    def test_refutations_persist_and_seed_repeat_searches(self, tmp_path):
        cache = SummaryCache(cache_dir=str(tmp_path))
        # Run 1: timeout after the bounded checker refutes candidates —
        # no summary is cached, but the counterexamples are.
        first = translate(
            FLOAT_FOLD,
            search_config=SearchConfig(timeout_seconds=0.02),
            cache=cache,
        )
        frag = first.fragments[0]
        if frag.search.counterexample_states:
            fingerprint = fingerprint_fragment(frag.analysis)
            assert cache.lookup_counterexamples(fingerprint)
        # Run 2: full search on the same (cold-summary) cache re-checks
        # the cached counterexamples first.
        second = translate(FLOAT_FOLD, cache=cache)
        frag2 = second.fragments[0]
        assert frag2.translated
        assert not frag2.cache_hit
        if frag.search.counterexample_states:
            assert frag2.search.cached_counterexamples_used > 0
        # Seeding Φ never changes the result, only the search path.
        baseline = translate(FLOAT_FOLD)
        outputs_seeded = frag2.program.run({"data": [0.5, 1.5, 2.5], "n": 3})
        outputs_plain = baseline.fragments[0].program.run(
            {"data": [0.5, 1.5, 2.5], "n": 3}
        )
        assert values_equal(outputs_seeded["total"], outputs_plain["total"])

    def test_counterexample_entries_round_trip_disk(self, tmp_path):
        cache = SummaryCache(cache_dir=str(tmp_path))
        result = translate(FLOAT_FOLD, cache=cache)
        states = result.fragments[0].search.counterexample_states
        if not states:
            pytest.skip("search found a summary without refutations")
        fingerprint = fingerprint_fragment(result.fragments[0].analysis)
        reloaded = SummaryCache(cache_dir=str(tmp_path))
        recovered = reloaded.lookup_counterexamples(fingerprint)
        assert recovered
        assert {tuple(sorted(s.inputs)) for s in recovered} <= {
            tuple(sorted(s.inputs)) for s in states
        }


# ----------------------------------------------------------------------
# LNT10x: the concurrency lint, on crafted files


def _lint(tmp_path: Path, relative: str, source: str):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path, tmp_path)


class TestLint:
    def test_lnt101_bare_acquire(self, tmp_path):
        findings = _lint(
            tmp_path,
            "engine/bad_lock.py",
            "def f(lock):\n    lock.acquire()\n    work()\n",
        )
        assert [f.code for f in findings] == ["LNT101"]

    def test_lnt101_sanctioned_patterns_clean(self, tmp_path):
        source = (
            "def f(lock):\n"
            "    with lock.acquire():\n"
            "        work()\n"
            "    lock.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        # The manual acquire sits right before its try/finally release —
        # flagged only because it is outside the try body; move it in.
        source_ok = (
            "def f(lock):\n"
            "    with lock.acquire():\n"
            "        work()\n"
            "    try:\n"
            "        lock.acquire()\n"
            "        work()\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert _lint(tmp_path, "engine/ok_lock.py", source_ok) == []
        assert [
            f.code for f in _lint(tmp_path, "engine/mixed_lock.py", source)
        ] == ["LNT101"]

    def test_lnt102_swallowed_broad_except_on_worker_path(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = _lint(tmp_path, "engine/worker.py", source)
        assert [f.code for f in findings] == ["LNT102"]
        # The same swallow outside a worker path is tolerated (except
        # for *bare* excepts, which are flagged everywhere).
        assert _lint(tmp_path, "lang/helper.py", source) == []
        bare = "def f():\n    try:\n        work()\n    except:\n        pass\n"
        assert [f.code for f in _lint(tmp_path, "lang/bare.py", bare)] == [
            "LNT102"
        ]

    def test_lnt102_handled_except_clean(self, tmp_path):
        source = (
            "def f(log):\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        log.warning('failed: %s', exc)\n"
        )
        assert _lint(tmp_path, "engine/handled.py", source) == []

    def test_lnt103_mutable_class_attribute(self, tmp_path):
        source = "class Kernel:\n    cache = {}\n    slots = []\n"
        findings = _lint(tmp_path, "codegen/kernel.py", source)
        assert [f.code for f in findings] == ["LNT103", "LNT103"]
        # Same class outside a payload path: no finding.
        assert _lint(tmp_path, "lang/other.py", source) == []

    def test_lnt104_wall_clock_in_priced_path(self, tmp_path):
        source = (
            "import random\n"
            "import time\n"
            "def price():\n"
            "    a = time.time()\n"
            "    b = time.perf_counter()  # lint: allow-wall-clock\n"
            "    c = random.random()\n"
            "    return a + b + c\n"
        )
        findings = _lint(tmp_path, "planner/pricing.py", source)
        assert sorted(f.code for f in findings) == ["LNT104", "LNT104"]
        assert _lint(tmp_path, "engine/timing.py", source) == []

    def test_lint_self_run_clean(self):
        root = Path(repro.__file__).resolve().parent
        findings = lint_tree(root)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(clean)]) == 0
        dirty = tmp_path / "engine"
        dirty.mkdir()
        (dirty / "bad.py").write_text(
            "def f(lock):\n    lock.acquire()\n", encoding="utf-8"
        )
        assert lint_main([str(tmp_path)]) == 1
        assert lint_main([str(tmp_path / "missing")]) == 2
        capsys.readouterr()


# ----------------------------------------------------------------------
# Differential sweep: the gate never changes runtime results

_SWEEP_SUITES = [
    "ariths_sum",
    "stats_variance_sums",
    "phoenix_wordcount",
    "fiji_threshold",
    "tpch_q6",
]

RUN_SIZE = 120


class TestDifferentialSweep:
    @pytest.mark.parametrize("name", _SWEEP_SUITES, ids=lambda n: n)
    def test_soundness_gate_is_behavior_neutral(self, name):
        benchmark = get_benchmark(name)
        gated = compile_benchmark(benchmark)
        ungated = CasperCompiler(soundness=False).translate_source(
            benchmark.source, benchmark.function
        )
        inputs = benchmark.make_inputs(RUN_SIZE, 13)
        assert [f.translated for f in gated.fragments] == [
            f.translated for f in ungated.fragments
        ]
        for on, off in zip(gated.fragments, ungated.fragments):
            if not on.translated:
                continue
            reference = interpret_fragment(on.analysis, dict(inputs))
            for plan in ("sequential", "multiprocess"):
                with_gate = on.program.run(dict(inputs), plan=plan)
                without_gate = off.program.run(dict(inputs), plan=plan)
                assert with_gate == without_gate, (
                    f"{name}/{plan}: soundness gate changed outputs"
                )
                common = set(with_gate) & set(reference)
                assert common and all(
                    values_equal(with_gate[k], reference[k]) for k in common
                )

    def test_no_suite_fragment_is_rejected_by_the_gate(self):
        """Suite safety: the gate must never produce an error-level
        diagnostic for any benchmark fragment (analysis-only, so the
        whole registry of 70 suites stays cheap to sweep)."""
        from repro.lang.analysis.fragments import (
            analyze_fragment,
            identify_fragments,
        )
        from repro.lang.parser import parse_program

        for benchmark in all_benchmarks():
            program = parse_program(benchmark.source)
            func = program.function(benchmark.function)
            for fragment in identify_fragments(func):
                try:
                    analysis = analyze_fragment(fragment, program)
                except AnalysisError:
                    continue  # analysis rejections are not the gate's
                diags = analyze_soundness(analysis)
                errors = [d for d in diags if d.severity == "error"]
                assert not errors, (
                    f"{benchmark.name}/{fragment.id}: "
                    + "; ".join(d.render() for d in errors)
                )

"""Tests for the baselines: MOLD rules, mini-SparkSQL, manual, joins."""

import pytest

from repro.baselines import (
    estimate_join_order,
    manual_histogram3d,
    manual_linear_regression,
    manual_pagerank,
    manual_string_match,
    manual_word_count,
    mold_linear_regression,
    mold_string_match,
    mold_word_count,
    run_three_way_join,
    sparksql_q1,
    sparksql_q6,
    sparksql_q15,
    sparksql_q17,
)
from repro.engine.config import EngineConfig
from repro.workloads import datagen


class TestMoldBaseline:
    def test_wordcount_correct_but_shuffles_more(self):
        words = datagen.words(3000, seed=1)
        mold = mold_word_count(words, EngineConfig(scale=1000))
        manual = manual_word_count(words, EngineConfig(scale=1000))
        assert mold.result == manual.result
        # MOLD's plan groups without combiners → more shuffle, slower.
        assert mold.metrics.bytes_shuffled > manual.metrics.bytes_shuffled
        assert mold.metrics.simulated_seconds > manual.metrics.simulated_seconds

    def test_string_match_one_job_per_keyword(self):
        words = datagen.keyword_text(2000, ["key1", "key2"], 0.1, seed=2)
        mold = mold_string_match(words, ["key1", "key2"], EngineConfig(scale=1000))
        manual = manual_string_match(words, ["key1", "key2"], EngineConfig(scale=1000))
        assert mold.result == manual.result
        # Casper emits only on match; MOLD emits for every word, twice.
        assert mold.metrics.bytes_emitted > 2 * manual.metrics.bytes_emitted
        assert mold.metrics.simulated_seconds > manual.metrics.simulated_seconds

    def test_linear_regression_zip_prepass_costs(self):
        xs = datagen.double_array(3000, 3)
        ys = datagen.double_array(3000, 4)
        mold = mold_linear_regression(xs, ys, EngineConfig(scale=1000))
        manual = manual_linear_regression(xs, ys, EngineConfig(scale=1000))
        assert mold.result == pytest.approx(manual.result)
        assert mold.metrics.simulated_seconds > manual.metrics.simulated_seconds


class TestSparkSQLBaseline:
    @pytest.fixture(scope="class")
    def lineitem(self):
        return datagen.lineitems(4000, seed=5)

    def test_q1_correctness(self, lineitem):
        result = sparksql_q1(lineitem).result
        total_count = sum(row[4] for row in result.values())
        assert total_count == len(lineitem)

    def test_q6_matches_direct_computation(self, lineitem):
        from repro.lang.values import parse_date

        dt1 = parse_date("1993-01-01").get("epoch")
        dt2 = parse_date("1994-01-01").get("epoch")
        expected = sum(
            l.get("l_extendedprice") * l.get("l_discount")
            for l in lineitem
            if dt1 < l.get("l_shipdate").get("epoch") < dt2
            and 0.05 <= l.get("l_discount") <= 0.07
            and l.get("l_quantity") < 24.0
        )
        assert sparksql_q6(lineitem).result == pytest.approx(expected)

    def test_q15_scans_twice(self, lineitem):
        result = sparksql_q15(lineitem, suppliers=50)
        scan_stages = [s for s in result.metrics.stages if s.name == "scan"]
        assert len(scan_stages) == 2  # the paper's double lineitem scan

    def test_q17_returns_total(self, lineitem):
        result = sparksql_q17(lineitem, parts=200)
        assert result.result >= 0.0


class TestManualBaseline:
    def test_histogram3d_counts_all_pixels(self):
        pixels = datagen.pixels(1000, seed=7)
        result = manual_histogram3d(pixels).result
        assert sum(result[0]) == 1000
        assert sum(result[1]) == 1000
        assert sum(result[2]) == 1000

    def test_pagerank_cached_beats_uncached(self):
        # The paper's PageRank runs over ~2.25 billion edges; scan cost
        # must dominate for caching to matter, hence the large scale.
        edges = datagen.graph_edges(60, 500, seed=8)
        config = EngineConfig(scale=4_000_000)
        cached = manual_pagerank(edges, 60, iterations=5, config=config, cache_edges=True)
        uncached = manual_pagerank(edges, 60, iterations=5, config=config, cache_edges=False)
        # Ranks agree; the cached reference is faster (paper: ~1.3×).
        assert cached.result == pytest.approx(uncached.result)
        ratio = uncached.metrics.simulated_seconds / cached.metrics.simulated_seconds
        assert 1.05 < ratio < 4.0

    def test_pagerank_is_a_distribution(self):
        edges = datagen.graph_edges(30, 120, seed=9)
        ranks = manual_pagerank(edges, 30, iterations=10).result
        assert sum(ranks) == pytest.approx(30 * (0.15 / 30) + 0.85 * sum(ranks) * 1.0, rel=0.5)
        assert all(r > 0 for r in ranks)


class TestJoinOrdering:
    def test_orderings_agree_on_result(self):
        part, supplier, partsupp = datagen.part_supplier_tables(50, 20, 300, seed=11)
        one = run_three_way_join(part, supplier, partsupp, ordering="supplier_first")
        two = run_three_way_join(part, supplier, partsupp, ordering="part_first")
        assert one.result == two.result

    def test_estimator_prefers_smaller_intermediate(self):
        # Joining with the smaller relation first is cheaper.
        assert estimate_join_order(parts=10000, suppliers=10, partsupps=5000) == "supplier_first"
        assert estimate_join_order(parts=10, suppliers=10000, partsupps=5000) == "part_first"

    def test_chosen_order_is_not_slower(self):
        part, supplier, partsupp = datagen.part_supplier_tables(400, 10, 800, seed=12)
        config = EngineConfig(scale=5000)
        auto = run_three_way_join(part, supplier, partsupp, config=config)
        other_name = (
            "part_first" if auto.ordering == "supplier_first" else "supplier_first"
        )
        other = run_three_way_join(part, supplier, partsupp, ordering=other_name, config=config)
        assert auto.metrics.simulated_seconds <= other.metrics.simulated_seconds * 1.05

"""Tests for the cost-driven execution planner and its wiring."""

from __future__ import annotations

import pytest

from repro import (
    CasperCompiler,
    PlannerConfig,
    last_plan_report,
    run_translated,
    translate,
)
from repro.planner.plan import (
    BACKENDS,
    ExecutionPlan,
    PlanReport,
    StagePlan,
    forced_plan,
)

WORDCOUNT_SOURCE = """
Map<String, Integer> wc(List<String> words) {
  Map<String, Integer> counts = new HashMap<String, Integer>();
  for (String w : words) {
    counts.put(w, counts.getOrDefault(w, 0) + 1);
  }
  return counts;
}
"""

WORDS = [f"w{i % 40}" for i in range(9000)]


@pytest.fixture(scope="module")
def wc_result():
    return translate(WORDCOUNT_SOURCE)


class TestPlanDataModel:
    def test_combiner_for_defaults_true(self):
        plan = ExecutionPlan(backend="sequential")
        assert plan.combiner_for(1) is True

    def test_combiner_for_reads_stage_plans(self):
        plan = ExecutionPlan(
            backend="multiprocess",
            stages=(
                StagePlan(index=0, kind="map"),
                StagePlan(index=1, kind="reduce", combiner=False),
            ),
        )
        assert plan.combiner_for(1) is False

    def test_forced_plan_validates_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            forced_plan("mapreduce-in-the-sky")
        for backend in BACKENDS:
            assert forced_plan(backend).backend == backend

    def test_describe_and_summary(self):
        plan = forced_plan("multiprocess")
        assert "backend=multiprocess" in plan.describe()
        report = PlanReport(plan=plan, input_records=5)
        summary = report.summary()
        assert summary["backend"] == "multiprocess"
        assert summary["input_records"] == 5


class TestPlanPass:
    def test_pipeline_attaches_planner(self, wc_result):
        fragment = wc_result.fragments[0]
        assert fragment.program.planner is not None
        assert fragment.program.planner.static_cost_bounds

    def test_plan_pass_timing_recorded(self, wc_result):
        assert "plan" in wc_result.pass_seconds

    def test_static_cost_bounds_ordered(self, wc_result):
        for low, high in fragment_bounds(wc_result):
            assert low <= high


def fragment_bounds(result):
    planner = result.fragments[0].program.planner
    return list(planner.static_cost_bounds.values())


class TestAutoPlanning:
    def test_auto_matches_default_outputs(self, wc_result):
        default = run_translated(wc_result, {"words": list(WORDS)})
        auto = run_translated(wc_result, {"words": list(WORDS)}, plan="auto")
        assert auto == default

    def test_report_surfaced(self, wc_result):
        from repro.engine.multiprocess import default_process_count

        run_translated(wc_result, {"words": list(WORDS)}, plan="auto")
        report = last_plan_report(wc_result)
        assert report is not None
        assert report.input_records == len(WORDS)
        if default_process_count() < 2:
            # Single-CPU hosts skip the measured probe outright — the
            # pool cannot win, so there is nothing to estimate.
            assert report.estimated_seconds == {}
            assert report.calibration_skipped is not None
        else:
            assert set(report.estimated_seconds) == {
                "sequential",
                "multiprocess",
            }
            assert report.calibration_skipped is None
        assert report.implementation is not None
        assert report.wall_seconds > 0
        assert report.plan.reasons

    def test_tiny_input_stays_sequential(self, wc_result):
        run_translated(wc_result, {"words": list(WORDS[:64])}, plan="auto")
        report = last_plan_report(wc_result)
        assert report.plan.backend == "sequential"
        assert any("tiny input" in r or "CPU" in r for r in report.plan.reasons)

    def test_cluster_ranking_reproduces_paper_ordering(self, wc_result):
        run_translated(wc_result, {"words": list(WORDS)}, plan="auto")
        report = last_plan_report(wc_result)
        assert set(report.cluster_seconds) == {"spark", "hadoop", "flink"}
        assert report.cluster_seconds["spark"] < report.cluster_seconds["hadoop"]
        assert report.cluster_recommendation == "spark"

    def test_forced_worker_count_chooses_multiprocess(self):
        compiler = CasperCompiler(
            planner_config=PlannerConfig(
                processes=8,
                min_parallel_records=100,
                parallel_margin=0.0,
                pool_startup_s=0.0,
            )
        )
        result = compiler.translate_source(WORDCOUNT_SOURCE)
        outputs = run_translated(result, {"words": list(WORDS)}, plan="auto")
        report = last_plan_report(result)
        assert report.plan.backend == "multiprocess"
        assert report.plan.processes == 8
        assert outputs == run_translated(result, {"words": list(WORDS)})

    def test_combiner_disabled_by_key_ratio_cutoff(self):
        compiler = CasperCompiler(
            planner_config=PlannerConfig(combiner_key_ratio_cutoff=0.0)
        )
        result = compiler.translate_source(WORDCOUNT_SOURCE)
        run_translated(result, {"words": list(WORDS)}, plan="auto")
        report = last_plan_report(result)
        reduce_stages = [s for s in report.plan.stages if s.kind == "reduce"]
        assert reduce_stages and all(not s.combiner for s in reduce_stages)
        assert any("combiner off" in r for r in report.plan.reasons)

    def test_partitions_follow_engine_default_when_combining(self, wc_result):
        run_translated(wc_result, {"words": list(WORDS)}, plan="auto")
        report = last_plan_report(wc_result)
        combining = any(s.kind == "reduce" and s.combiner for s in report.plan.stages)
        if combining:
            assert report.plan.partitions is None  # engine default


class TestForcedPlans:
    @pytest.mark.parametrize("backend", ["sequential", "multiprocess", "spark"])
    def test_forced_backends_agree(self, wc_result, backend):
        default = run_translated(wc_result, {"words": list(WORDS)})
        forced = run_translated(wc_result, {"words": list(WORDS)}, plan=backend)
        assert forced == default
        report = last_plan_report(wc_result)
        assert report.plan.backend == backend
        assert any("forced by caller" in r for r in report.plan.reasons)

    def test_unknown_plan_name_rejected(self, wc_result):
        with pytest.raises(ValueError, match="unknown backend"):
            run_translated(wc_result, {"words": list(WORDS)}, plan="dask")

    def test_multiprocess_fallback_reported(self, wc_result):
        # On a single-CPU machine the pool cannot win; either way the
        # report must tell the truth about what actually executed.
        run_translated(wc_result, {"words": list(WORDS)}, plan="multiprocess")
        report = last_plan_report(wc_result)
        if report.fallback_reason is not None:
            assert report.backend_used == "sequential"
        else:
            assert report.backend_used == "multiprocess"


FAULTY_KERNEL_SOURCE = """
int sumInverse(int[] data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) total += 1000 / data[i];
  return total;
}
"""


class TestWorkerExceptionPropagation:
    def test_translated_kernel_fault_propagates_from_pool(self):
        """Regression: an exception raised inside a translated kernel on a
        pool worker must reach the caller — the engine used to be able to
        mistake submission-time failures for unpicklable payloads and
        quietly re-run in-process."""
        from repro.errors import IRError
        from repro.planner.plan import ExecutionPlan

        result = translate(FAULTY_KERNEL_SOURCE)
        fragment = result.fragments[0]
        assert fragment.translated
        data = [1] * 4000
        data[1234] = 0  # the kernel divides by this record
        program = fragment.program.programs[0]
        plan = ExecutionPlan(backend="multiprocess", processes=2)
        with pytest.raises(IRError, match="division by zero"):
            program.run(
                {"data": data, "n": len(data)},
                backend="multiprocess",
                plan=plan,
            )

    def test_translated_kernel_fault_propagates_via_run_translated(self):
        result = translate(FAULTY_KERNEL_SOURCE)
        from repro.errors import IRError

        data = [1] * 3000
        data[7] = 0
        with pytest.raises(IRError, match="division by zero"):
            run_translated(
                result,
                {"data": data, "n": len(data)},
                plan="multiprocess",
            )


class TestMemoryAwarePlanning:
    def test_budget_forces_spill_when_input_exceeds_it(self, wc_result):
        outputs = run_translated(
            wc_result, {"words": list(WORDS)}, plan="sequential"
        )
        spilled = run_translated(
            wc_result,
            {"words": list(WORDS)},
            plan="sequential",
            memory_budget=2048,
        )
        assert spilled == outputs
        report = last_plan_report(wc_result)
        assert report.plan.spill
        assert report.plan.memory_budget == 2048
        assert report.spill_stats is not None
        assert report.spill_stats["spill_runs"] > 0
        summary = report.summary()
        assert summary["spill"] is True
        assert summary["memory_budget"] == 2048

    def test_budget_alone_implies_auto_plan(self, wc_result):
        baseline = run_translated(
            wc_result, {"words": list(WORDS)}, plan="sequential"
        )
        outputs = run_translated(
            wc_result, {"words": list(WORDS)}, memory_budget=2048
        )
        assert outputs == baseline
        report = last_plan_report(wc_result)
        assert report.plan.spill
        assert any("spill" in r for r in report.plan.reasons)
        assert report.estimated_input_bytes is not None
        assert report.estimated_input_bytes > 2048

    def test_ample_budget_stays_in_memory(self, wc_result):
        run_translated(
            wc_result,
            {"words": list(WORDS)},
            memory_budget=1 << 30,
        )
        report = last_plan_report(wc_result)
        assert not report.plan.spill
        assert report.plan.memory_budget is None
        assert report.spill_stats is None
        assert any("fits memory budget" in r for r in report.plan.reasons)

    def test_simulated_backend_ignores_budget_honestly(self, wc_result):
        # A forced simulated backend materializes in-memory; the plan
        # must not claim a spill that never happened.
        baseline = run_translated(
            wc_result, {"words": list(WORDS)}, plan="sequential"
        )
        outputs = run_translated(
            wc_result, {"words": list(WORDS)}, plan="spark", memory_budget=1024
        )
        assert outputs == baseline
        report = last_plan_report(wc_result)
        assert not report.plan.spill
        assert report.plan.memory_budget is None
        assert any("ignored" in r for r in report.plan.reasons)

    def test_streaming_dataset_input_plans_spill(self, wc_result):
        from repro.engine.source import GeneratorSource

        words = list(WORDS)
        baseline = run_translated(
            wc_result, {"words": list(WORDS)}, plan="sequential"
        )
        outputs = run_translated(
            wc_result,
            {"words": GeneratorSource(lambda: iter(words))},
            memory_budget=2048,
        )
        assert outputs == baseline
        report = last_plan_report(wc_result)
        assert report.plan.spill
        assert any("unknown-length" in r for r in report.plan.reasons)


class TestRunnerIntegration:
    def test_run_benchmark_surfaces_plan_reports(self):
        from repro.workloads import get_benchmark
        from repro.workloads.runner import run_benchmark

        run = run_benchmark(get_benchmark("ariths_sum"), size=2000, plan="auto")
        assert run.plan == "auto"
        assert len(run.plan_reports) == run.fragments_translated
        assert run.outputs_match
        assert run.wall_seconds > 0

"""Tests for pretty-printers, stdlib models, values, and error types."""

import pytest

import repro.errors as errors
from repro.lang import ast, format_expr, format_function, format_stmt, parse_function
from repro.lang.pretty import count_loc
from repro.lang.stdlib import (
    call_instance_method,
    call_static_method,
    has_static_field,
    static_field,
)
from repro.lang.values import Instance, deep_copy_value, make_date, parse_date, values_equal
from repro.ir import builder, format_pipeline, format_summary
from repro.errors import InterpreterError


class TestLangPretty:
    def roundtrip(self, source):
        func = parse_function(source)
        return format_function(func)

    def test_expression_formatting(self):
        func = parse_function("int f(int a, int b) { return a * (b + 1); }")
        text = format_expr(func.body.stmts[0].value)
        assert text == "(a * (b + 1))"

    def test_statement_formatting_for_loop(self):
        func = parse_function(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        text = format_stmt(func.body.stmts[1])
        assert "for (" in text and "(i < n)" in text

    def test_formatted_function_reparses(self):
        source = """
        int f(int[] d, int n) {
          int s = 0;
          for (int i = 0; i < n; i++) {
            if (d[i] > 0) s += d[i];
          }
          return s;
        }
        """
        text = self.roundtrip(source)
        reparsed = parse_function(text)
        assert reparsed.name == "f"
        assert count_loc(reparsed.body) == count_loc(parse_function(source).body)

    def test_string_literal_escaping(self):
        func = parse_function('String f() { return "a\\"b"; }')
        text = format_expr(func.body.stmts[0].value)
        assert text == '"a\\"b"'

    def test_ternary_and_method_calls(self):
        func = parse_function(
            'int f(String s) { return s.isEmpty() ? 0 : s.length(); }'
        )
        text = format_expr(func.body.stmts[0].value)
        assert "s.isEmpty()" in text and "s.length()" in text

    def test_count_loc_ignores_blocks(self):
        func = parse_function("int f() { { { return 1; } } }")
        assert count_loc(func.body) == 1


class TestIRPretty:
    def test_pipeline_formatting_nests(self):
        summary = builder.row_wise_mean_summary()
        assert format_pipeline(summary.pipeline) == "map(reduce(map(mat, λm0), λr1), λm2)"

    def test_summary_formatting_scalar_binding(self):
        s = builder.summary(
            builder.pipeline(
                "d",
                builder.map_stage(("v",), builder.emit(builder.const("x"), builder.var("v"))),
                builder.reduce_stage(builder.add(builder.var("v1"), builder.var("v2"))),
            ),
            builder.scalar_output("x", default=0),
        )
        text = format_summary(s)
        assert "x = (reduce(map(d, λm0), λr1))['x']" in text


class TestStdlibModels:
    def test_math_static_methods(self):
        assert call_static_method("Math", "abs", [-3]) == 3
        assert call_static_method("Math", "round", [2.5]) == 3
        assert call_static_method("Math", "signum", [-7.0]) == -1.0

    def test_integer_parsing(self):
        assert call_static_method("Integer", "parseInt", ["42"]) == 42
        assert call_static_method("Double", "parseDouble", ["2.5"]) == 2.5

    def test_unknown_static_method_raises(self):
        with pytest.raises(InterpreterError):
            call_static_method("Math", "nope", [1])

    def test_static_fields(self):
        assert static_field("Integer", "MAX_VALUE") == 2**31 - 1
        assert has_static_field("Double", "MAX_VALUE")
        assert not has_static_field("Math", "TAU")

    def test_string_instance_methods(self):
        assert call_instance_method("Hello", "toLowerCase", []) == "hello"
        assert call_instance_method("a,b,,", "split", [","]) == ["a", "b"]
        assert call_instance_method("  x ", "trim", []) == "x"
        assert call_instance_method("abc", "substring", [1]) == "bc"
        assert call_instance_method("abc", "indexOf", ["c"]) == 2

    def test_java_string_hash_matches_reference(self):
        # Java's "Hello".hashCode() is a well-known constant.
        assert call_instance_method("Hello", "hashCode", []) == 69609650

    def test_list_methods(self):
        xs = [1, 2, 3]
        assert call_instance_method(xs, "remove", [0]) == 1
        assert xs == [2, 3]
        call_instance_method(xs, "addAll", [[9, 9]])
        assert xs == [2, 3, 9, 9]

    def test_set_add_returns_freshness(self):
        s = set()
        assert call_instance_method(s, "add", [1]) is True
        assert call_instance_method(s, "add", [1]) is False

    def test_map_methods(self):
        m = {"a": 1}
        assert call_instance_method(m, "containsKey", ["a"])
        assert call_instance_method(m, "getOrDefault", ["z", 0]) == 0
        assert call_instance_method(m, "keySet", []) == {"a"}

    def test_date_methods(self):
        early = parse_date("1999-01-01")
        late = parse_date("2000-06-15")
        assert call_instance_method(early, "before", [late])
        assert not call_instance_method(early, "after", [late])
        assert call_instance_method(early, "compareTo", [late]) == -1

    def test_unmodelled_method_raises(self):
        with pytest.raises(InterpreterError):
            call_instance_method([1], "sort", [])


class TestValues:
    def test_parse_date_epoch_and_leap_years(self):
        assert parse_date("1970-01-01").get("epoch") == 0
        assert parse_date("1970-02-01").get("epoch") == 31
        # 1972 is a leap year: Mar 1 1972 = 730 + 60 days... check monotone.
        assert parse_date("1972-03-01").get("epoch") == parse_date("1972-02-29").get("epoch") + 1

    def test_instance_equality_and_hash(self):
        a = Instance("P", {"x": 1})
        b = Instance("P", {"x": 1})
        assert a == b and hash(a) == hash(b)
        assert a != Instance("P", {"x": 2})
        assert a != Instance("Q", {"x": 1})

    def test_instance_unknown_field_raises(self):
        with pytest.raises(KeyError):
            Instance("P", {"x": 1}).get("y")

    def test_deep_copy_isolates_mutation(self):
        original = {"xs": [1, [2, 3]], "obj": Instance("P", {"v": [4]})}
        copy = deep_copy_value(original)
        copy["xs"][1].append(99)
        copy["obj"].get("v").append(99)
        assert original["xs"][1] == [2, 3]
        assert original["obj"].get("v") == [4]

    def test_values_equal_tolerance(self):
        assert values_equal(1.0, 1.0 + 1e-9)
        assert not values_equal(1.0, 1.01)
        assert values_equal([1.0, 2.0], [1.0, 2.0])
        assert not values_equal([1.0], [1.0, 2.0])
        assert values_equal({"a": 1}, {"a": 1})
        assert not values_equal({"a": 1}, {"b": 1})

    def test_values_equal_bool_not_int(self):
        assert not values_equal(True, 1.0000001) or values_equal(True, True)
        assert values_equal(True, True)
        assert not values_equal(True, False)

    def test_values_equal_infinity(self):
        inf = float("inf")
        assert values_equal(inf, inf)
        assert not values_equal(inf, -inf)
        assert not values_equal(inf, 1e308)

    def test_make_date(self):
        assert make_date(5).get("epoch") == 5


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            attr = getattr(errors, name)
            if isinstance(attr, type) and issubclass(attr, Exception) and attr is not errors.ReproError:
                if attr.__module__ == "repro.errors":
                    assert issubclass(attr, errors.ReproError), name

    def test_positioned_errors_carry_location(self):
        err = errors.ParseError("bad", line=3, column=7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err)

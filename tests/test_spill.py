"""Out-of-core execution: dataset sources, spill shuffle, streaming engine."""

from __future__ import annotations

import json
import os

import pytest

from repro.engine.core import partition_data
from repro.engine.multiprocess import (
    BridgeStep,
    MapStep,
    MultiprocessEngine,
    ReduceStep,
)
from repro.engine.source import (
    Dataset,
    GeneratorSource,
    JsonlSource,
    ListSource,
    TextSource,
    as_dataset,
    chunk_records_for,
)
from repro.engine.spill import SpillWriter, merge_partition, partition_of
from repro.errors import EngineError, SpillError, WorkloadError
from repro.lang.values import Instance
from repro.workloads import datagen


class KeyedEmit:
    """Picklable record → [(key, value)] mapper for tests."""

    def __init__(self, modulo: int = 10):
        self.modulo = modulo

    def __call__(self, record):
        return [(record % self.modulo, record)]


class PassThrough:
    def __call__(self, pair):
        return [pair]


class Add:
    def __call__(self, a, b):
        return a + b


class Subtract:
    """Deliberately non-commutative: fold order must be preserved."""

    def __call__(self, a, b):
        return a - b


class ValuesToRecords:
    """Bridge: one job's result pairs become the next job's records."""

    def __call__(self, pairs):
        return [value for _key, value in pairs]


# ----------------------------------------------------------------------
# Dataset sources


class TestSources:
    def test_list_source_chunks_and_length(self):
        source = ListSource(list(range(10)))
        assert source.known_length == 10
        chunks = list(source.iter_chunks(4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert source.materialize() == list(range(10))
        assert source.head(3) == [0, 1, 2]
        assert source.head(100) == list(range(10))

    def test_generator_source_replays_each_pass(self):
        source = GeneratorSource(lambda: iter(range(7)), length=7)
        assert list(source) == list(range(7))
        assert list(source) == list(range(7))  # second pass identical
        assert source.known_length == 7
        assert GeneratorSource(lambda: iter(())).known_length is None

    def test_jsonl_source_round_trip(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [{"k": i, "v": f"r{i}"} for i in range(5)]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        source = JsonlSource(str(path))
        assert source.materialize() == records
        assert [len(c) for c in source.iter_chunks(2)] == [2, 2, 1]

    def test_jsonl_source_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json at all{\n')
        with pytest.raises(EngineError, match="invalid JSONL"):
            JsonlSource(str(path)).materialize()

    def test_text_source_lines(self, tmp_path):
        path = tmp_path / "words.txt"
        path.write_text("alpha\nbeta\n\ngamma\n")
        assert TextSource(str(path)).materialize() == ["alpha", "beta", "gamma"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(EngineError, match="does not exist"):
            TextSource(str(tmp_path / "nope.txt")).materialize()

    def test_as_dataset_coercion(self):
        assert isinstance(as_dataset([1, 2]), ListSource)
        source = ListSource([1])
        assert as_dataset(source) is source
        with pytest.raises(EngineError, match="cannot stream"):
            as_dataset({"a": 1})

    def test_chunk_layout_matches_partition_data(self):
        # The streaming chunk layout must reproduce the in-memory block
        # partitioning exactly — that is what keeps per-chunk combining
        # (and therefore results) byte-identical between the two paths.
        for n in (0, 1, 5, 72, 73, 1000):
            records = list(range(n))
            source = ListSource(records)
            size = chunk_records_for(source, 72)
            streamed = list(source.iter_chunks(size))
            expected = partition_data(records, 72)
            if n == 0:
                assert streamed == []  # partition_data pads to [[]]
            else:
                assert streamed == expected

    def test_estimated_bytes(self):
        assert ListSource([1] * 100).estimated_bytes() == 400  # 4 B ints
        assert GeneratorSource(lambda: iter(())).estimated_bytes() is None
        assert ListSource([]).estimated_bytes() == 0

    def test_chunk_size_capped_by_budget_on_huge_inputs(self):
        # Without the cap, a known-length input of n records yields
        # ceil(n/partitions)-record chunks — O(n) resident memory, which
        # defeats the out-of-core guarantee on inputs that dwarf the
        # budget.  One chunk must always fit the budget.
        n = 10_000_000
        huge = GeneratorSource(lambda: iter(range(n)), length=n)
        capped = chunk_records_for(huge, 72, budget_bytes=65_536)
        assert capped * 4 <= 65_536  # 4 B per int record
        # The cap must NOT engage while the partition-matched chunk is
        # within 2× the budget: identity with the in-memory engines
        # (float folds included) depends on that layout, and residency
        # stays inside the documented ~2×-budget envelope.
        small = ListSource(list(range(5000)))
        assert chunk_records_for(small, 72, budget_bytes=65_536) == (
            chunk_records_for(small, 72)
        )
        near = ListSource(list(range(7200)))  # 100-record chunks, 400 B
        assert chunk_records_for(near, 72, budget_bytes=256) == 100


# ----------------------------------------------------------------------
# Spill primitives


class TestSpillPrimitives:
    def test_partition_of_is_stable_and_in_range(self):
        keys = [
            0,
            17,
            -3,
            2.5,
            True,
            "word",
            ("a", 1),
            None,
            Instance("Pixel", {"r": 1, "g": 2, "b": 3}),
        ]
        for key in keys:
            first = partition_of(key, 72)
            assert 0 <= first < 72
            assert partition_of(key, 72) == first  # deterministic

    def test_writer_spills_on_budget_and_merge_restores_order(self, tmp_path):
        writer = SpillWriter(str(tmp_path), partitions=4, budget_bytes=64)
        for i in range(100):
            writer.add(i % 8, i)
        writer.finish()
        assert writer.stats.spill_runs > 0
        assert writer.stats.spilled_pairs == 100
        assert writer.stats.peak_resident_bytes <= 64 + 8
        merged = {}
        for partition in range(4):
            for key, value in merge_partition(
                writer.run_files[partition], lambda a, b: a - b
            ):
                merged[key] = value
        expected = {}
        for i in range(100):
            key = i % 8
            expected[key] = expected[key] - i if key in expected else i
        assert merged == expected

    def test_budget_smaller_than_one_record_raises(self, tmp_path):
        writer = SpillWriter(str(tmp_path), partitions=2, budget_bytes=6)
        with pytest.raises(SpillError, match="smaller than a single record"):
            writer.add(1, 2)  # an int pair is 8 estimated bytes

    def test_corrupt_run_file_raises_typed_error(self, tmp_path):
        writer = SpillWriter(str(tmp_path), partitions=1, budget_bytes=1024)
        for i in range(10):
            writer.add(i % 2, i)
        writer.finish()
        victim = writer.run_files[0][0]
        with open(victim, "wb") as handle:
            handle.write(b"\x80\x05garbage that is not a pickle")
        with pytest.raises(SpillError, match="corrupt spill run"):
            merge_partition(writer.run_files[0], lambda a, b: a + b)

    def test_unwritable_spill_dir_raises(self, tmp_path):
        # A spill dir that vanished (or never existed) must surface as
        # the typed error from the write itself, not partial results.
        writer = SpillWriter(
            str(tmp_path / "missing"), partitions=1, budget_bytes=16
        )
        with pytest.raises(SpillError, match="cannot write spill run"):
            for i in range(100):
                writer.add(i, i)


# ----------------------------------------------------------------------
# Streaming engine: identity with the in-memory path


def in_memory(records, steps):
    return MultiprocessEngine(processes=0).run_pipeline(records, steps)


def spilled(records, steps, budget=2048, **kwargs):
    engine = MultiprocessEngine(processes=0, memory_budget=budget, **kwargs)
    return engine.run_pipeline(records, steps)


class TestStreamingIdentity:
    def test_map_reduce_identical_and_spills(self):
        records = list(range(5000))
        steps = [MapStep(KeyedEmit(13)), ReduceStep(Add())]
        base = in_memory(records, steps)
        spill = spilled(records, steps, budget=1024)
        assert spill.pairs == base.pairs
        assert spill.spilled
        assert spill.spill_stats["spill_runs"] > 0

    def test_non_commutative_no_combine_identical(self):
        records = list(range(4000))
        steps = [MapStep(KeyedEmit(5)), ReduceStep(Subtract(), combine=False)]
        assert spilled(records, steps).pairs == in_memory(records, steps).pairs

    def test_chained_maps_and_map_only_identical(self):
        records = list(range(3000))
        chain = [MapStep(KeyedEmit(7)), MapStep(PassThrough())]
        assert spilled(records, chain).pairs == in_memory(records, chain).pairs

    def test_bridge_step_identical(self):
        records = list(range(5000))
        steps = [
            MapStep(KeyedEmit(13)),
            ReduceStep(Add()),
            BridgeStep(ValuesToRecords()),
            MapStep(KeyedEmit(3)),
            ReduceStep(Add()),
        ]
        assert spilled(records, steps).pairs == in_memory(records, steps).pairs

    def test_generator_source_identical(self):
        steps = [MapStep(KeyedEmit(11)), ReduceStep(Add())]
        base = in_memory(list(range(4000)), steps)
        unknown = GeneratorSource(lambda: iter(range(4000)))
        assert spilled(unknown, steps).pairs == base.pairs
        known = GeneratorSource(lambda: iter(range(4000)), length=4000)
        assert spilled(known, steps).pairs == base.pairs

    def test_dataset_without_budget_materializes(self):
        steps = [MapStep(KeyedEmit(9)), ReduceStep(Add())]
        base = in_memory(list(range(2000)), steps)
        streamed = MultiprocessEngine(processes=0).run_pipeline(
            GeneratorSource(lambda: iter(range(2000))), steps
        )
        assert streamed.pairs == base.pairs
        assert not streamed.spilled

    def test_empty_input(self):
        steps = [MapStep(KeyedEmit()), ReduceStep(Add())]
        assert spilled([], steps).pairs == []

    def test_pooled_spill_identical(self):
        records = list(range(6000))
        steps = [MapStep(KeyedEmit(13)), ReduceStep(Add())]
        base = in_memory(records, steps)
        pooled = MultiprocessEngine(
            processes=2, memory_budget=2048, min_parallel_records=100
        ).run_pipeline(records, steps)
        assert pooled.pairs == base.pairs
        assert pooled.fallback_reason is None
        assert pooled.map_tasks > 0

    def test_pooled_spill_worker_exception_propagates(self):
        class Boom:
            def __call__(self, record):
                raise ValueError("boom in spill worker")

        engine = MultiprocessEngine(
            processes=2, memory_budget=2048, min_parallel_records=100
        )
        with pytest.raises(ValueError, match="boom in spill worker"):
            engine.run_pipeline(
                list(range(6000)), [MapStep(Boom()), ReduceStep(Add())]
            )

    def test_peak_resident_bounded_for_10x_budget(self):
        budget = 4096
        records = list(range(12_000))  # ~48 KB of int records ≈ 12× budget
        steps = [MapStep(KeyedEmit(16)), ReduceStep(Add())]
        result = spilled(records, steps, budget=budget)
        assert result.pairs == in_memory(records, steps).pairs
        assert result.spill_stats["spilled_bytes"] > budget
        assert result.peak_resident_bytes <= 2 * budget

    def test_spill_cleans_its_temp_runs(self, tmp_path):
        engine = MultiprocessEngine(
            processes=0, memory_budget=512, spill_dir=str(tmp_path / "runs")
        )
        engine.run_pipeline(
            list(range(3000)), [MapStep(KeyedEmit(4)), ReduceStep(Add())]
        )
        # The per-job subdirectory (and every run in it) is swept.
        assert os.listdir(tmp_path / "runs") == []

    def test_spill_runs_swept_even_when_job_fails(self, tmp_path):
        class BoomReduce:
            def __call__(self, a, b):
                raise RuntimeError("mid-job failure")

        engine = MultiprocessEngine(
            processes=0, memory_budget=512, spill_dir=str(tmp_path / "runs")
        )
        with pytest.raises(RuntimeError, match="mid-job failure"):
            engine.run_pipeline(
                list(range(3000)),
                [MapStep(KeyedEmit(4)), ReduceStep(BoomReduce(), combine=False)],
            )
        # No orphan run files accumulate in the caller's spill dir.
        assert os.listdir(tmp_path / "runs") == []

    def test_concurrent_jobs_share_spill_dir_without_collision(self, tmp_path):
        records = list(range(4000))
        steps = [MapStep(KeyedEmit(13)), ReduceStep(Add())]
        expected = in_memory(records, steps).pairs
        shared = str(tmp_path / "shared")
        from concurrent.futures import ThreadPoolExecutor

        def job(_):
            engine = MultiprocessEngine(
                processes=0, memory_budget=1024, spill_dir=shared
            )
            return engine.run_pipeline(records, steps).pairs

        with ThreadPoolExecutor(max_workers=3) as pool:
            results = list(pool.map(job, range(3)))
        assert all(pairs == expected for pairs in results)

    def test_unwritable_spill_dir_fails_before_work(self, tmp_path):
        # A regular file where the spill dir should go: makedirs cannot
        # succeed, so the probe raises before any chunk is processed.
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        engine = MultiprocessEngine(
            processes=0, memory_budget=512, spill_dir=str(blocker / "sub")
        )
        with pytest.raises(SpillError, match="not writable"):
            engine.run_pipeline(
                list(range(100)), [MapStep(KeyedEmit()), ReduceStep(Add())]
            )

    def test_budget_below_record_size_raises_through_engine(self):
        engine = MultiprocessEngine(processes=0, memory_budget=4)
        with pytest.raises(SpillError, match="smaller than a single record"):
            engine.run_pipeline(
                list(range(100)), [MapStep(KeyedEmit()), ReduceStep(Add())]
            )

    def test_non_positive_budget_rejected(self):
        engine = MultiprocessEngine(processes=0, memory_budget=0)
        with pytest.raises(SpillError, match="positive"):
            engine.run_pipeline([1, 2, 3], [MapStep(KeyedEmit())])


# ----------------------------------------------------------------------
# large_scale datagen


class TestLargeScaleDatagen:
    def test_streams_deterministically_without_materializing(self):
        source = datagen.large_scale(10_000, seed=3, kind="words")
        assert isinstance(source, Dataset)
        assert source.known_length == 10_000
        first = source.head(50)
        again = source.head(50)
        assert first == again  # replayable pass
        assert all(isinstance(w, str) for w in first)

    def test_kinds_and_unknown_length(self):
        ints = datagen.large_scale(100, kind="ints")
        assert all(isinstance(v, int) for v in ints.materialize())
        views = datagen.large_scale(50, kind="pageviews").materialize()
        assert all(isinstance(v, Instance) for v in views)
        hidden = datagen.large_scale(100, kind="words", known_length=False)
        assert hidden.known_length is None
        assert len(hidden.materialize()) == 100

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError, match="unknown large_scale kind"):
            datagen.large_scale(10, kind="tachyons")
        with pytest.raises(WorkloadError, match="non-negative"):
            datagen.large_scale(-1)

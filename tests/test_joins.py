"""Translated joins, end to end: analysis → synthesis → proof → codegen
→ planner — plus the PR-5 bugfix regressions (shuffle-key equality
classes in the spill partitioner, cycle-safe sizeof, and the degenerate
join-ordering guard).

The identity property (translated == interpreter == baseline on the
sequential, multiprocess, and spill paths) is asserted here explicitly
per physical strategy; the suite-wide graph-identity and spilled==
in-memory gates in ``tests/test_run_program.py`` and
``benchmarks/test_spill_bench.py`` cover the same benchmarks again as
part of their all-suite sweeps.
"""

from __future__ import annotations

import pytest

from repro.baselines.joins import estimate_join_order, run_three_way_join
from repro.codegen.joins import (
    DEFAULT_BROADCAST_BYTES,
    JoinExpand,
    JoinFold,
    build_join_steps,
    resolve_join_strategies,
)
from repro.engine.multiprocess import MapStep, MultiprocessEngine, ReduceStep
from repro.engine.sizes import sizeof
from repro.engine.spill import _stable_bytes, partition_of
from repro.errors import CodegenError
from repro.lang.analysis.fragments import analyze_fragment, identify_fragments
from repro.lang.interpreter import Interpreter
from repro.lang.values import values_equal
from repro.planner.joins import (
    choose_join_ordering,
    join_chain_cost,
    summary_relations,
)
from repro.workloads import get_benchmark
from repro.workloads.runner import compile_benchmark

_COMPILED: dict[str, object] = {}

JOIN_BENCHMARKS = (
    "joins_partsupp_cost",
    "joins_q3_revenue",
    "joins_three_way_cost",
)


def compiled(name: str):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(get_benchmark(name))
    return _COMPILED[name]


def translated_fragment(name: str):
    fragment = compiled(name).fragments[0]
    assert fragment.translated, fragment.failure_reason
    return fragment


def interpreter_result(name: str, inputs: dict):
    benchmark = get_benchmark(name)
    interp = Interpreter(benchmark.parse())
    return interp.call_function(benchmark.function, benchmark.args_for(inputs))


# ----------------------------------------------------------------------
# Analysis


class TestJoinAnalysis:
    def test_two_dataset_nest_is_recognized(self):
        benchmark = get_benchmark("joins_partsupp_cost")
        program = benchmark.parse()
        fragment = identify_fragments(program.function(benchmark.function))[0]
        analysis = analyze_fragment(fragment, program)
        assert analysis.view.kind == "join"
        assert analysis.view.sources == ["partsupp", "part"]
        assert analysis.features.multiple_datasets
        level = analysis.join.levels[0]
        assert (level.left_owner, level.left_key, level.right_key) == (
            "partsupp",
            "ps_partkey",
            "p_partkey",
        )

    def test_star_nest_has_two_orderings_linear_has_one(self):
        three = compiled("joins_three_way_cost").fragments[0].analysis
        assert len(three.join.orderings()) == 2
        two = compiled("joins_partsupp_cost").fragments[0].analysis
        assert two.join.orderings() == [(0,)]

    def test_residual_condition_is_not_a_key(self):
        analysis = compiled("joins_q3_revenue").fragments[0].analysis
        # Both levels key on equality; the segment filter lives in the
        # innermost body, not in any level's residual list.
        assert all(not level.residuals for level in analysis.join.levels)
        assert len(analysis.join.guarded_body) == 1


# ----------------------------------------------------------------------
# Synthesis + verification


class TestJoinSynthesis:
    @pytest.mark.parametrize("name", JOIN_BENCHMARKS)
    def test_compiles_through_the_full_pipeline(self, name):
        fragment = translated_fragment(name)
        search = fragment.search
        assert search.candidates_checked > 0, "CEGIS did not run"
        assert search.final_class.startswith("GJ")
        assert all(
            vs.proof.status in ("proved", "unknown") for vs in search.summaries
        )

    def test_three_way_join_proof_is_structural(self):
        search = translated_fragment("joins_three_way_cost").search
        assert all(vs.proof.status == "proved" for vs in search.summaries)
        assert "join-step" in search.summaries[0].proof.obligations

    def test_star_fragments_verify_both_orderings(self):
        for name in ("joins_three_way_cost", "joins_q3_revenue"):
            programs = translated_fragment(name).program.programs
            orders = {tuple(summary_relations(p.summary)) for p in programs}
            assert len(orders) == 2, f"{name}: expected two verified orderings"

    def test_join_summaries_round_trip_the_summary_cache(self):
        from repro.pipeline.cache import SummaryCache
        from repro.workloads.runner import compile_benchmark as compile_b

        benchmark = get_benchmark("joins_partsupp_cost")
        cache = SummaryCache()
        from repro.compiler import CasperCompiler

        compiler = CasperCompiler(cache=cache)
        cold = compiler.translate(benchmark.parse(), benchmark.function)
        warm = compiler.translate(benchmark.parse(), benchmark.function)
        assert cold.translated == warm.translated == 1
        assert warm.fragments[0].cache_hit
        assert warm.fragments[0].search.candidates_checked == 0
        inputs = benchmark.make_inputs(80, 3)
        expected = compile_b(benchmark)
        assert values_equal(
            warm.fragments[0].program.run(dict(inputs))["total"],
            expected.fragments[0].program.run(dict(inputs))["total"],
        )


# ----------------------------------------------------------------------
# Execution identity: translated == interpreter == baseline, per engine


class TestJoinIdentity:
    @pytest.mark.parametrize("name", JOIN_BENCHMARKS)
    @pytest.mark.parametrize("plan", [None, "sequential", "multiprocess"])
    def test_translated_matches_interpreter(self, name, plan):
        benchmark = get_benchmark(name)
        fragment = translated_fragment(name)
        inputs = benchmark.make_inputs(300, 7)
        expected = interpreter_result(name, inputs)
        outputs = fragment.program.run(dict(inputs), plan=plan)
        out_var = list(fragment.analysis.output_vars)[0]
        assert values_equal(outputs[out_var], expected)

    @pytest.mark.parametrize("name", JOIN_BENCHMARKS)
    def test_spilled_matches_interpreter_and_in_memory(self, name):
        benchmark = get_benchmark(name)
        fragment = translated_fragment(name)
        inputs = benchmark.make_inputs(300, 7)
        out_var = list(fragment.analysis.output_vars)[0]
        in_memory = fragment.program.run(dict(inputs), plan="sequential")
        spilled = fragment.program.run(
            dict(inputs), plan="sequential", memory_budget=2048
        )
        assert fragment.program.last_plan_report.plan.spill
        assert spilled == in_memory
        assert values_equal(spilled[out_var], interpreter_result(name, inputs))

    def test_reduce_side_strategy_on_every_engine_path(self):
        """Pin reduce-side via a budget below the small side's bytes."""
        benchmark = get_benchmark("joins_partsupp_cost")
        fragment = translated_fragment("joins_partsupp_cost")
        inputs = benchmark.make_inputs(300, 7)
        expected = interpreter_result("joins_partsupp_cost", inputs)
        budget = 300  # below the ~500 B part side, above one record
        for plan in ("sequential", "multiprocess"):
            outputs = fragment.program.run(
                dict(inputs), plan=plan, memory_budget=budget
            )
            report = fragment.program.last_plan_report
            assert report.plan.join_strategies == ("reduce_side",)
            assert report.plan.spill
            assert values_equal(outputs["total"], expected)

    def test_three_way_matches_baseline(self):
        benchmark = get_benchmark("joins_three_way_cost")
        fragment = translated_fragment("joins_three_way_cost")
        inputs = benchmark.make_inputs(300, 7)
        outputs = fragment.program.run(dict(inputs), plan="sequential")
        baseline = run_three_way_join(
            inputs["part"], inputs["supplier"], inputs["partsupp"]
        )
        assert round(outputs["total"], 2) == baseline.result["total_supplycost"]

    def test_streaming_dataset_inputs_are_rejected_clearly(self):
        from repro.engine.source import ListSource

        benchmark = get_benchmark("joins_partsupp_cost")
        fragment = translated_fragment("joins_partsupp_cost")
        inputs = benchmark.make_inputs(50, 7)
        inputs["part"] = ListSource(inputs["part"])
        with pytest.raises(CodegenError, match="streaming Dataset"):
            fragment.program.run(dict(inputs), plan="sequential")


# ----------------------------------------------------------------------
# Physical-strategy planning: broadcast iff the small side fits


class TestBroadcastDecision:
    def test_broadcast_iff_small_side_fits_budget(self, monkeypatch):
        """1-CPU-safe: the estimate is monkeypatched, no pool involved."""
        import repro.codegen.joins as cj

        fragment = translated_fragment("joins_partsupp_cost")
        program = fragment.program.programs[0]
        benchmark = get_benchmark("joins_partsupp_cost")
        inputs = benchmark.make_inputs(120, 7)

        monkeypatch.setattr(
            cj, "estimate_records_bytes", lambda records, sample=64: 10_000
        )
        over = resolve_join_strategies(program, inputs, memory_budget=9_999)
        assert [d.strategy for d in over] == ["reduce_side"]
        under = resolve_join_strategies(program, inputs, memory_budget=10_000)
        assert [d.strategy for d in under] == ["broadcast"]

    def test_default_threshold_applies_without_budget(self, monkeypatch):
        import repro.codegen.joins as cj

        fragment = translated_fragment("joins_partsupp_cost")
        program = fragment.program.programs[0]
        benchmark = get_benchmark("joins_partsupp_cost")
        inputs = benchmark.make_inputs(120, 7)
        monkeypatch.setattr(
            cj,
            "estimate_records_bytes",
            lambda records, sample=64: DEFAULT_BROADCAST_BYTES + 1,
        )
        decisions = resolve_join_strategies(program, inputs, memory_budget=None)
        assert [d.strategy for d in decisions] == ["reduce_side"]

    def test_second_level_always_broadcasts(self):
        fragment = translated_fragment("joins_three_way_cost")
        program = fragment.program.programs[0]
        benchmark = get_benchmark("joins_three_way_cost")
        inputs = benchmark.make_inputs(200, 7)
        decisions = resolve_join_strategies(program, inputs, memory_budget=1)
        assert len(decisions) == 2
        assert decisions[0].strategy == "reduce_side"  # budget 1 B
        assert decisions[1].strategy == "broadcast"
        assert "in-flight pair stream" in decisions[1].reason

    def test_planned_run_records_the_decision(self):
        benchmark = get_benchmark("joins_partsupp_cost")
        fragment = translated_fragment("joins_partsupp_cost")
        inputs = benchmark.make_inputs(200, 7)
        fragment.program.run(dict(inputs), plan="auto")
        report = fragment.program.last_plan_report
        assert report.join is not None
        (level,) = report.join["levels"]
        assert level["strategy"] == "broadcast"
        assert level["relation"] == "part"
        assert report.plan.join_strategies == ("broadcast",)
        assert any("join part:" in r for r in report.plan.reasons)


# ----------------------------------------------------------------------
# §7.4 ordering: compiler-driven, tested against the baseline oracle


class TestJoinOrdering:
    def test_chain_cost_equals_the_baseline_formula(self):
        # supplier-first chain == _total_cost(partsupps, suppliers, parts)
        assert join_chain_cost([100, 10, 50]) == pytest.approx(
            2.0 * 100 * 10 * 0.001 + 2.0 * (2.0 * 100 * 10 * 0.001) * 50 * 0.001
        )

    @pytest.mark.parametrize(
        "parts,suppliers,partsupps",
        [(50, 20, 400), (20, 300, 400), (5, 5, 100), (1000, 2, 300)],
    )
    def test_choice_matches_the_baseline_oracle(self, parts, suppliers, partsupps):
        fragment = translated_fragment("joins_three_way_cost")
        summaries = [p.summary for p in fragment.program.programs]
        part, supplier, partsupp = __import__(
            "repro.workloads.datagen", fromlist=["part_supplier_tables"]
        ).part_supplier_tables(parts, suppliers, partsupps, seed=3)
        inputs = {"partsupp": partsupp, "supplier": supplier, "part": part}
        decision = choose_join_ordering(summaries, inputs)
        assert decision is not None
        oracle = estimate_join_order(parts, suppliers, partsupps)
        expected = (
            ["partsupp", "supplier", "part"]
            if oracle == "supplier_first"
            else ["partsupp", "part", "supplier"]
        )
        assert decision.order == expected

    def test_degenerate_cardinality_tie_breaks_deterministically(self):
        assert estimate_join_order(0, 10, 10) == "supplier_first"
        assert estimate_join_order(10, 0, 0) == "supplier_first"
        fragment = translated_fragment("joins_three_way_cost")
        summaries = [p.summary for p in fragment.program.programs]
        inputs = {"partsupp": [], "supplier": [], "part": []}
        decision = choose_join_ordering(summaries, inputs)
        assert decision is not None and decision.index == 0

    def test_run_records_ordering_in_plan_report(self):
        benchmark = get_benchmark("joins_three_way_cost")
        fragment = translated_fragment("joins_three_way_cost")
        inputs = benchmark.make_inputs(300, 7)
        fragment.program.run(dict(inputs), plan="sequential")
        report = fragment.program.last_plan_report
        ordering = report.join["ordering"]
        assert ordering["order"] == "partsupp ⋈ supplier ⋈ part"
        assert set(ordering["cardinalities"]) == {"partsupp", "supplier", "part"}
        assert report.implementation == "impl_0"
        # Flipping the relative sizes flips the chosen ordering.
        flipped = dict(inputs)
        flipped["supplier"], flipped["part"] = (
            inputs["part"] * 40,
            inputs["supplier"][:3],
        )
        decision = choose_join_ordering(
            [p.summary for p in fragment.program.programs], flipped
        )
        assert decision.order == ["partsupp", "part", "supplier"]


# ----------------------------------------------------------------------
# Reduce-side building blocks


class TestJoinFold:
    def test_fold_is_associative_and_order_preserving(self):
        fold = JoinFold()
        values = [(0, "a1"), (0, "a2"), (1, "b1"), (1, "b2")]
        left = fold(fold(fold(values[0], values[1]), values[2]), values[3])
        right = fold(fold(values[0], values[1]), fold(values[2], values[3]))
        assert left == right == ("⋈acc", ("a1", "a2"), ("b1", "b2"))

    def test_expand_emits_cross_product_in_order(self):
        expand = JoinExpand()
        acc = ("⋈acc", ("a1", "a2"), ("b1", "b2"))
        assert expand(("k", acc)) == [
            ("k", ("a1", "b1")),
            ("k", ("a1", "b2")),
            ("k", ("a2", "b1")),
            ("k", ("a2", "b2")),
        ]

    def test_single_sided_keys_expand_to_nothing(self):
        expand = JoinExpand()
        assert expand(("k", (0, "a1"))) == []
        assert expand(("k", (1, "b1"))) == []


# ----------------------------------------------------------------------
# Satellite: spill shuffle-key equality classes


class TestStableBytesEqualityClasses:
    MIXED_KEYS = [True, 1, 1.0, 0, False, -0.0, 0.0]

    def test_python_equal_keys_encode_identically(self):
        assert (
            _stable_bytes(True) == _stable_bytes(1) == _stable_bytes(1.0)
        )
        assert (
            _stable_bytes(False)
            == _stable_bytes(0)
            == _stable_bytes(0.0)
            == _stable_bytes(-0.0)
        )
        assert _stable_bytes(1) != _stable_bytes(0)
        assert _stable_bytes(2.5) != _stable_bytes(2)
        for partitions in (2, 3, 7):
            assert partition_of(True, partitions) == partition_of(1.0, partitions)
            assert partition_of(0.0, partitions) == partition_of(False, partitions)

    def test_mixed_numeric_keys_spill_identically_to_in_memory(self):
        """The ISSUE's regression: round-trip mixed-equality keys through
        a budget-forced spill and compare with the in-memory engine."""
        records = [(key, index) for index, key in enumerate(self.MIXED_KEYS * 30)]
        steps = [
            MapStep(_identity_pairs, complexity=1),
            ReduceStep(_sum_values, combine=True),
        ]
        in_memory = MultiprocessEngine(processes=0).run_pipeline(
            list(records), steps
        )
        spilled = MultiprocessEngine(processes=0, memory_budget=256).run_pipeline(
            list(records), steps
        )
        assert spilled.spilled and spilled.spill_stats["spill_runs"] > 0
        assert spilled.pairs == in_memory.pairs
        # Exactly two equality classes survive grouping: {1} and {0}.
        assert len(in_memory.pairs) == 2


def _identity_pairs(record):
    return [record]


def _sum_values(a, b):
    return a + b


# ----------------------------------------------------------------------
# Satellite: cycle-safe sizeof


class TestSizeofCycles:
    def test_self_referential_list_terminates(self):
        x: list = []
        x.append(x)
        assert sizeof(x) == 16  # one object header; the cycle charges 0

    def test_mutual_cycle_terminates(self):
        a: list = []
        b = [a]
        a.append(b)
        assert sizeof(a) == 32

    def test_diamond_sharing_charged_once(self):
        shared = [1, 2, 3]
        diamond = [shared, shared]
        # 16 (outer) + 16 (shared) + 3*4 (ints) — second edge free.
        assert sizeof(diamond) == 16 + 16 + 12

    def test_equal_but_distinct_values_still_charged_each(self):
        assert sizeof([[1], [1]]) == 16 + 2 * (16 + 4)
        assert sizeof((1, 1, 1)) == 8 + 3 * 4  # scalars never deduped

    def test_cyclic_dict_and_instance(self):
        from repro.lang.values import Instance

        d: dict = {}
        d["self"] = d
        assert sizeof(d) == 16 + 40  # header + the string key
        inst = Instance("Node", {"next": None})
        inst.fields["next"] = inst
        assert sizeof(inst) == 16


# ----------------------------------------------------------------------
# Cost model / codegen seams


class TestJoinSeams:
    def test_simulated_hadoop_and_flink_reject_joins_loudly(self):
        fragment = translated_fragment("joins_partsupp_cost")
        program = fragment.program.programs[0]
        benchmark = get_benchmark("joins_partsupp_cost")
        inputs = benchmark.make_inputs(40, 7)
        for backend in ("hadoop", "flink"):
            with pytest.raises(CodegenError, match="no join operator"):
                program.run(dict(inputs), backend=backend)

    def test_join_fragments_never_fuse_into_chains(self):
        from repro.compiler import run_program

        compilation = compiled("joins_three_way_cost")
        benchmark = get_benchmark("joins_three_way_cost")
        run_program(compilation, benchmark.make_inputs(120, 7))
        run = compilation.last_graph_run
        assert all(not unit.fused for unit in run.schedule.units)

    def test_build_join_steps_honours_pinned_strategies(self):
        from repro.codegen.base import prepare_globals
        from repro.planner.plan import ExecutionPlan

        fragment = translated_fragment("joins_partsupp_cost")
        program = fragment.program.programs[0]
        benchmark = get_benchmark("joins_partsupp_cost")
        inputs = benchmark.make_inputs(60, 7)
        globals_env, _ = prepare_globals(program.analysis, inputs)
        plan = ExecutionPlan(backend="sequential", join_strategies=("reduce_side",))
        records, steps, _, _ = build_join_steps(
            program, globals_env, inputs, plan=plan
        )
        # Tagged union: left + right relations in one scanned stream.
        assert len(records) == len(inputs["partsupp"]) + len(inputs["part"])
        assert {tag for tag, _r in records} == {0, 1}
        assert any(isinstance(s.fn, JoinExpand) for s in steps if isinstance(s, MapStep))

"""Integration and property-based tests across the whole pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.interpreter import Interpreter
from repro.lang.values import values_equal
from repro.workloads import get_benchmark
from repro.workloads.runner import compile_benchmark, run_benchmark


@pytest.fixture(scope="module")
def wordcount_compiled():
    return compile_benchmark(get_benchmark("phoenix_wordcount"))


@pytest.fixture(scope="module")
def stringmatch_compiled():
    return compile_benchmark(get_benchmark("phoenix_string_match"))


class TestBenchmarkRuns:
    def test_run_benchmark_produces_speedup(self, wordcount_compiled):
        benchmark = get_benchmark("phoenix_wordcount")
        run = run_benchmark(
            benchmark, size=4000, compilation=wordcount_compiled
        )
        assert run.translated
        assert run.outputs_match
        assert run.speedup > 3.0  # distributed must beat sequential

    def test_untranslatable_benchmark_reports_zero(self):
        benchmark = get_benchmark("phoenix_matrix_multiply")
        run = run_benchmark(benchmark, size=100)
        assert not run.translated
        assert run.distributed_seconds == 0.0

    def test_speedup_grows_with_scale(self, wordcount_compiled):
        """Figure 9's shape: larger inputs amortize startup overheads."""
        benchmark = get_benchmark("phoenix_wordcount")
        small = run_benchmark(
            benchmark, size=4000, target_bytes=10e9, compilation=wordcount_compiled
        )
        large = run_benchmark(
            benchmark, size=4000, target_bytes=75e9, compilation=wordcount_compiled
        )
        assert large.speedup > small.speedup


class TestCrossBackendAgreement:
    @pytest.mark.parametrize("backend", ["spark", "hadoop", "flink"])
    def test_wordcount_same_result_every_backend(self, backend):
        benchmark = get_benchmark("phoenix_wordcount")
        compilation = compile_benchmark(benchmark, backend=backend)
        fragment = compilation.fragments[0]
        inputs = benchmark.make_inputs(500, seed=3)
        outputs = fragment.program.run(dict(inputs))
        expected = Interpreter(benchmark.parse()).call_function(
            benchmark.function, benchmark.args_for(inputs)
        )
        assert values_equal(outputs["counts"], expected)


class TestDynamicTuning:
    def test_stringmatch_generates_multiple_implementations(self, stringmatch_compiled):
        fragment = stringmatch_compiled.fragments[0]
        assert fragment.translated
        # Several statically-incomparable encodings survive pruning.
        assert len(fragment.program.programs) >= 1

    def test_adaptive_correct_across_skews(self, stringmatch_compiled):
        from repro.workloads import datagen

        fragment = stringmatch_compiled.fragments[0]
        for probability in (0.0, 0.5, 0.95):
            text = datagen.keyword_text(2000, ["key1", "key2"], probability, seed=5)
            outputs = fragment.program.run(
                {"text": text, "key1": "key1", "key2": "key2"}
            )
            assert outputs["key1_found"] == ("key1" in text)
            assert outputs["key2_found"] == ("key2" in text)


# ----------------------------------------------------------------------
# Property-based end-to-end checks on pre-compiled translations


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=40))
def test_wordcount_translation_matches_interpreter_on_random_input(words):
    benchmark = get_benchmark("phoenix_wordcount")
    compilation = _cached_wordcount()
    fragment = compilation.fragments[0]
    outputs = fragment.program.run({"wordList": list(words)})
    expected = Interpreter(benchmark.parse()).call_function(
        benchmark.function, [list(words)]
    )
    assert values_equal(outputs["counts"], expected)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=50)
)
def test_sum_translation_matches_python_sum(data):
    compilation = _cached_sum()
    fragment = compilation.fragments[0]
    outputs = fragment.program.run({"data": list(data), "n": len(data)})
    assert outputs["total"] == sum(data)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_minmax_translation_matches_python(data):
    compilation = _cached_minmax()
    fragment = compilation.fragments[0]
    outputs = fragment.program.run({"x": list(data), "n": len(data)})
    assert outputs["lo"] == pytest.approx(min(data))
    assert outputs["hi"] == pytest.approx(max(data))


_CACHE = {}


def _cached_wordcount():
    if "wc" not in _CACHE:
        _CACHE["wc"] = compile_benchmark(get_benchmark("phoenix_wordcount"))
    return _CACHE["wc"]


def _cached_sum():
    if "sum" not in _CACHE:
        _CACHE["sum"] = compile_benchmark(get_benchmark("ariths_sum"))
    return _CACHE["sum"]


def _cached_minmax():
    if "minmax" not in _CACHE:
        _CACHE["minmax"] = compile_benchmark(get_benchmark("stats_min_max"))
    return _CACHE["minmax"]

"""Tests for code generation: executable plans, rendering, glue code."""

import pytest

from repro.codegen import (
    AdaptiveProgram,
    GeneratedProgram,
    build_adaptive_program,
    generated_loc,
    render,
    render_expr,
)
from repro.engine.config import EngineConfig
from repro.ir import builder
from repro.ir.builder import add, const, emit, map_stage, pipeline, reduce_stage, scalar_output, summary, var
from repro.lang.values import values_equal


@pytest.fixture(scope="module")
def rwm_summary():
    return builder.row_wise_mean_summary()


def make_program(analysis, summary_obj, backend):
    from repro.verification.prover import FullVerifier

    proof = FullVerifier(analysis).verify(summary_obj)
    return GeneratedProgram(
        backend=backend, analysis=analysis, summary=summary_obj, proof=proof
    )


class TestBackendExecution:
    MAT = [[1, 2, 3], [4, 5, 6], [100, 200, 300]]
    EXPECTED = [2, 5, 200]

    @pytest.mark.parametrize("backend", ["spark", "hadoop", "flink"])
    def test_rwm_all_backends_agree(self, rwm_analysis, rwm_summary, backend):
        program = make_program(rwm_analysis, rwm_summary, backend)
        outcome = program.run({"mat": self.MAT, "rows": 3, "cols": 3})
        assert outcome.outputs["m"] == self.EXPECTED
        assert outcome.metrics.simulated_seconds > 0

    def test_backend_relative_performance(self, rwm_analysis, rwm_summary):
        times = {}
        config = EngineConfig(scale=50000)
        for backend in ("spark", "flink", "hadoop"):
            program = make_program(rwm_analysis, rwm_summary, backend)
            program.engine_config = config
            outcome = program.run({"mat": self.MAT * 50, "rows": 150, "cols": 3})
            times[backend] = outcome.metrics.simulated_seconds
        assert times["spark"] < times["flink"] < times["hadoop"]

    def test_scalar_output_binding(self, sum_analysis):
        s = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("total"), var("data"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=0),
        )
        program = make_program(sum_analysis, s, "spark")
        outcome = program.run({"data": [5, 6, 7], "n": 3})
        assert outcome.outputs == {"total": 18}

    def test_empty_input_uses_default(self, sum_analysis):
        s = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("total"), var("data"))),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("total", default=0),
        )
        program = make_program(sum_analysis, s, "spark")
        outcome = program.run({"data": [], "n": 0})
        assert outcome.outputs == {"total": 0}

    def test_non_ca_reduce_uses_group_by_key(self, sum_analysis):
        """keep-first λr is not commutative: Spark plan must groupByKey."""
        s = summary(
            pipeline(
                "data",
                map_stage(("i", "data"), emit(const("first"), var("data"))),
                reduce_stage(var("v1")),
            ),
            scalar_output("first", default=None),
        )
        program = make_program(sum_analysis, s, "spark")
        outcome = program.run({"data": [9, 8, 7], "n": 3})
        assert outcome.outputs["first"] == 9
        stage_names = [st.name for st in outcome.metrics.stages]
        assert any("values" in n for n in stage_names)  # groupByKey+mapValues


class TestRendering:
    def test_spark_rendering_matches_fig1(self, rwm_summary):
        code = render(rwm_summary, "spark")
        assert "mapToPair" in code
        assert "reduceByKey((v1, v2) -> (v1 + v2))" in code
        assert "(v / cols)" in code

    def test_spark_non_ca_renders_group_by_key(self, rwm_summary):
        code = render(rwm_summary, "spark", commutative_associative=False)
        assert "groupByKey" in code
        assert "reduceByKey" not in code

    def test_hadoop_rendering_has_mapper_reducer(self, rwm_summary):
        code = render(rwm_summary, "hadoop")
        assert "extends Mapper" in code
        assert "extends Reducer" in code
        assert "combiner" in code  # CA λr gets the combiner comment

    def test_flink_rendering(self, rwm_summary):
        code = render(rwm_summary, "flink")
        assert "ExecutionEnvironment" in code
        assert "groupBy(0).reduce" in code

    def test_render_guarded_emit(self):
        s = summary(
            pipeline(
                "d",
                map_stage(
                    ("v",),
                    emit(const("k"), var("v"), when=builder.lt(const(0), var("v"))),
                ),
                reduce_stage(add(var("v1"), var("v2"))),
            ),
            scalar_output("out", default=0),
        )
        code = render(s, "spark")
        assert "if ((0 < v))" in code

    def test_render_expr_functions(self):
        from repro.ir.nodes import CallFn, Var

        assert render_expr(CallFn("abs", (Var("x"),))) == "Math.abs(x)"
        assert render_expr(CallFn("date_before", (Var("a"), Var("b")))) == "a.before(b)"

    def test_generated_loc_counts_lines(self, rwm_summary):
        assert 3 <= generated_loc(rwm_summary, "spark") <= 15


class TestAdaptiveProgram:
    def test_build_prunes_and_runs(self, sum_search, sum_analysis):
        adaptive = build_adaptive_program(sum_analysis, sum_search.summaries)
        assert isinstance(adaptive, AdaptiveProgram)
        assert 1 <= len(adaptive.programs) <= len(sum_search.summaries)
        outputs = adaptive.run({"data": [1, 2, 3, 4], "n": 4})
        assert outputs == {"total": 10}
        assert adaptive.chosen_implementation is not None

    def test_set_engine_config_propagates(self, sum_search, sum_analysis):
        adaptive = build_adaptive_program(sum_analysis, sum_search.summaries)
        config = EngineConfig(scale=123.0)
        adaptive.set_engine_config(config)
        assert all(p.engine_config.scale == 123.0 for p in adaptive.programs)

    def test_outputs_match_interpreter(self, rwm_search, rwm_analysis):
        adaptive = build_adaptive_program(rwm_analysis, rwm_search.summaries)
        mat = [[3, 9], [12, 6]]
        outputs = adaptive.run({"mat": mat, "rows": 2, "cols": 2})
        from repro.lang.interpreter import Interpreter

        expected = Interpreter(rwm_analysis.program).call_function(
            "rwm", [mat, 2, 2]
        )
        assert values_equal(outputs["m"], expected)

"""Shared fixtures: cached compilations of commonly-used benchmarks."""

from __future__ import annotations

import pytest

from repro.lang.analysis import analyze_fragment, identify_fragments
from repro.lang.parser import parse_program

RWM_SOURCE = """
int[] rwm(int[][] mat, int rows, int cols) {
  int[] m = new int[rows];
  for (int i = 0; i < rows; i++) {
    int sum = 0;
    for (int j = 0; j < cols; j++)
      sum += mat[i][j];
    m[i] = sum / cols;
  }
  return m;
}
"""

SUM_SOURCE = """
int sum(int[] data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
"""

MAX_SOURCE = """
int maxValue(int[] data, int n) {
  int best = Integer.MIN_VALUE;
  for (int i = 0; i < n; i++) {
    if (data[i] > best) best = data[i];
  }
  return best;
}
"""

WORDCOUNT_SOURCE = """
Map<String, Integer> wc(List<String> words) {
  Map<String, Integer> counts = new HashMap<String, Integer>();
  for (String w : words) {
    counts.put(w, counts.getOrDefault(w, 0) + 1);
  }
  return counts;
}
"""

Q6_SOURCE = """
class LineItem { Date l_shipdate; double l_discount; double l_quantity; double l_extendedprice; }
double query6(List<LineItem> lineitem) {
  Date dt1 = Util.parseDate("1993-01-01");
  Date dt2 = Util.parseDate("1994-01-01");
  double revenue = 0;
  for (LineItem l : lineitem) {
    if (l.l_shipdate.after(dt1) && l.l_shipdate.before(dt2) &&
        l.l_discount >= 0.05 && l.l_discount <= 0.07 && l.l_quantity < 24.0)
      revenue += (l.l_extendedprice * l.l_discount);
  }
  return revenue;
}
"""


def analysis_of(source: str, function: str | None = None):
    program = parse_program(source)
    func = program.function(function) if function else program.functions[0]
    fragment = identify_fragments(func)[0]
    return analyze_fragment(fragment, program)


@pytest.fixture(scope="session")
def rwm_analysis():
    return analysis_of(RWM_SOURCE)


@pytest.fixture(scope="session")
def sum_analysis():
    return analysis_of(SUM_SOURCE)


@pytest.fixture(scope="session")
def max_analysis():
    return analysis_of(MAX_SOURCE)


@pytest.fixture(scope="session")
def wordcount_analysis():
    return analysis_of(WORDCOUNT_SOURCE)


@pytest.fixture(scope="session")
def q6_analysis():
    return analysis_of(Q6_SOURCE, "query6")


@pytest.fixture(scope="session")
def sum_search(sum_analysis):
    from repro.synthesis import find_summaries

    return find_summaries(sum_analysis)


@pytest.fixture(scope="session")
def rwm_search(rwm_analysis):
    from repro.synthesis import find_summaries

    return find_summaries(rwm_analysis)


@pytest.fixture(scope="session")
def wordcount_search(wordcount_analysis):
    from repro.synthesis import find_summaries

    return find_summaries(wordcount_analysis)

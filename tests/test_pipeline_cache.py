"""Tests for the staged pass pipeline, fragment fingerprints, and the
content-addressed summary cache (serialization round-trip, alpha-renamed
hits, batch compilation parity)."""

import json

import pytest

from repro import (
    CasperCompiler,
    SearchConfig,
    SummaryCache,
    run_translated,
    translate,
    translate_many,
)
from repro.errors import AnalysisError
from repro.ir.nodes import (
    rename_summary,
    summary_from_data,
    summary_to_data,
)
from repro.lang.analysis.fragments import fingerprint_fragment
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.lang.values import values_equal
from repro.pipeline import (
    CompilationContext,
    PassPipeline,
    default_passes,
)
from repro.pipeline.cache import search_config_key
from repro.verification.prover import proof_from_data, proof_to_data
from tests.conftest import (
    Q6_SOURCE,
    RWM_SOURCE,
    SUM_SOURCE,
    WORDCOUNT_SOURCE,
    analysis_of,
)

SUM_ALPHA_SOURCE = """
int total(int[] values, int count) {
  int acc = 0;
  for (int k0 = 0; k0 < count; k0++) acc += values[k0];
  return acc;
}
"""


class TestFingerprint:
    def test_identical_fragments_share_digest(self):
        a = fingerprint_fragment(analysis_of(SUM_SOURCE))
        b = fingerprint_fragment(analysis_of(SUM_SOURCE))
        assert a.digest == b.digest

    def test_alpha_equivalent_fragments_share_digest(self):
        a = fingerprint_fragment(analysis_of(SUM_SOURCE))
        b = fingerprint_fragment(analysis_of(SUM_ALPHA_SOURCE))
        assert a.digest is not None
        assert a.digest == b.digest
        assert a.renaming != b.renaming  # different source names, same shape

    def test_semantic_change_changes_digest(self):
        changed = SUM_SOURCE.replace("total = 0", "total = 1")
        assert changed != SUM_SOURCE
        a = fingerprint_fragment(analysis_of(SUM_SOURCE))
        b = fingerprint_fragment(analysis_of(changed))
        assert a.digest != b.digest

    def test_operator_change_changes_digest(self):
        changed = SUM_SOURCE.replace("total += data[i]", "total *= data[i]")
        a = fingerprint_fragment(analysis_of(SUM_SOURCE))
        b = fingerprint_fragment(analysis_of(changed))
        assert a.digest != b.digest

    def test_type_change_changes_digest(self):
        changed = SUM_SOURCE.replace("int[] data", "double[] data").replace(
            "int total", "double total"
        )
        a = fingerprint_fragment(analysis_of(SUM_SOURCE))
        b = fingerprint_fragment(analysis_of(changed))
        assert a.digest != b.digest

    def test_nested_class_field_change_changes_digest(self):
        # Inner is reachable only through Outer's fields; editing it must
        # still invalidate the fingerprint (transitive class closure).
        template = """
        class Inner {{ {field}; }}
        class Outer {{ Inner p; double w; }}
        double total(List<Outer> items) {{
          double t = 0;
          for (Outer o : items) t += o.w;
          return t;
        }}
        """
        a = fingerprint_fragment(
            analysis_of(template.format(field="int x"), "total")
        )
        b = fingerprint_fragment(
            analysis_of(template.format(field="double x"), "total")
        )
        assert a.digest != b.digest

    def test_reserved_variable_name_not_cacheable(self):
        source = """
        int sum(int[] v1, int n) {
          int total = 0;
          for (int i = 0; i < n; i++) total += v1[i];
          return total;
        }
        """
        fp = fingerprint_fragment(analysis_of(source))
        assert not fp.cacheable
        assert "v1" in fp.reason

    def test_string_literal_colliding_with_variable_not_cacheable(self):
        source = """
        Map<String, Integer> wc(List<String> words) {
          Map<String, Integer> counts = new HashMap<String, Integer>();
          for (String w : words) {
            counts.put("counts", counts.getOrDefault("counts", 0) + 1);
          }
          return counts;
        }
        """
        fp = fingerprint_fragment(analysis_of(source))
        assert not fp.cacheable

    def test_inverse_renaming_round_trips(self):
        fp = fingerprint_fragment(analysis_of(SUM_SOURCE))
        for name, canonical in fp.renaming.items():
            assert fp.inverse_renaming[canonical] == name


class TestSerde:
    def test_summary_json_round_trip(self, sum_search):
        for vs in sum_search.summaries:
            data = json.loads(json.dumps(summary_to_data(vs.summary)))
            assert summary_from_data(data) == vs.summary

    def test_wordcount_summary_round_trip(self, wordcount_search):
        for vs in wordcount_search.summaries:
            data = json.loads(json.dumps(summary_to_data(vs.summary)))
            assert summary_from_data(data) == vs.summary

    def test_rwm_summary_round_trip(self, rwm_search):
        for vs in rwm_search.summaries:
            data = json.loads(json.dumps(summary_to_data(vs.summary)))
            assert summary_from_data(data) == vs.summary

    def test_proof_round_trip(self, sum_search):
        proof = sum_search.summaries[0].proof
        back = proof_from_data(json.loads(json.dumps(proof_to_data(proof))))
        assert back.status == proof.status
        assert back.is_commutative == proof.is_commutative
        assert back.is_associative == proof.is_associative
        assert back.obligations == proof.obligations

    def test_rename_then_inverse_is_identity(self, sum_search):
        summary = sum_search.summaries[0].summary
        mapping = {"total": "α·0", "data": "α·1", "n": "α·2", "i": "α·3"}
        inverse = {v: k for k, v in mapping.items()}
        assert rename_summary(rename_summary(summary, mapping), inverse) == summary


class TestSummaryCache:
    def test_warm_hit_skips_search_entirely(self):
        cache = SummaryCache()
        cold = translate(SUM_SOURCE, cache=cache)
        assert cold.candidates_checked > 0 and cold.cache_hits == 0
        warm = translate(SUM_SOURCE, cache=cache)
        assert warm.cache_hits == 1
        assert warm.candidates_checked == 0
        assert warm.tp_failures == 0
        assert warm.translated == cold.translated

    def test_warm_hit_produces_equivalent_program(self):
        cache = SummaryCache()
        translate(Q6_SOURCE, "query6", cache=cache)
        warm = translate(Q6_SOURCE, "query6", cache=cache)
        assert warm.cache_hits == 1
        from repro.workloads import datagen

        items = datagen.lineitems(300, seed=11)
        outputs = warm.fragments[0].program.run({"lineitem": items})
        expected = Interpreter(parse_program(Q6_SOURCE)).call_function(
            "query6", [items]
        )
        assert values_equal(outputs["revenue"], expected)

    def test_alpha_equivalent_hit_is_renamed_correctly(self):
        cache = SummaryCache()
        translate(SUM_SOURCE, cache=cache)
        warm = translate(SUM_ALPHA_SOURCE, cache=cache)
        assert warm.cache_hits == 1
        assert warm.candidates_checked == 0
        # The cached summary must run under the *new* variable names.
        outputs = warm.fragments[0].program.run(
            {"values": [5, 6, 7], "count": 3}
        )
        assert outputs == {"acc": 18}

    def test_different_search_configs_do_not_share_entries(self):
        cache = SummaryCache()
        exhaustive = SearchConfig(exhaustive=True)
        default = SearchConfig()
        assert search_config_key(exhaustive) != search_config_key(default)
        translate(SUM_SOURCE, cache=cache, search_config=default)
        result = translate(SUM_SOURCE, cache=cache, search_config=exhaustive)
        assert result.cache_hits == 0  # no cross-config reuse

    def test_verification_strength_is_part_of_the_key(self):
        # With accept_bounded_only, 'unknown' proofs are admitted on
        # bounded/extended-domain evidence alone — weaker domains admit
        # different summaries, so they must not share cache entries.
        from repro.verification.bounded import BoundedCheckConfig

        default = SearchConfig()
        weak_states = SearchConfig(extended_states=4)
        weak_domain = SearchConfig(
            bounded_config=BoundedCheckConfig(max_dataset_size=2, int_range=(0, 1))
        )
        keys = {
            search_config_key(default),
            search_config_key(weak_states),
            search_config_key(weak_domain),
        }
        assert len(keys) == 3

    def test_lru_eviction(self):
        cache = SummaryCache(capacity=1)
        translate(SUM_SOURCE, cache=cache)
        translate(WORDCOUNT_SOURCE, cache=cache)  # evicts the sum entry
        assert len(cache) == 1
        result = translate(SUM_SOURCE, cache=cache)
        assert result.cache_hits == 0
        assert cache.stats.evictions >= 1

    def test_disk_store_survives_new_cache_instance(self, tmp_path):
        first = SummaryCache(cache_dir=str(tmp_path))
        translate(SUM_SOURCE, cache=first)
        assert list(tmp_path.glob("*.json"))
        fresh = SummaryCache(cache_dir=str(tmp_path))
        result = translate(SUM_SOURCE, cache=fresh)
        assert result.cache_hits == 1
        assert result.candidates_checked == 0
        assert fresh.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(cache_dir=str(tmp_path))
        translate(SUM_SOURCE, cache=cache)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        fresh = SummaryCache(cache_dir=str(tmp_path))
        result = translate(SUM_SOURCE, cache=fresh)
        assert result.translated == 1  # falls back to a clean search
        assert result.cache_hits == 0

    def test_stale_tmp_files_swept_on_open(self, tmp_path):
        # A crash between writing {path}.tmp.{pid} and os.replace leaks
        # the tmp file; opening a cache over the directory must sweep
        # orphans whose writer process is gone.
        import subprocess
        import sys

        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()  # a pid guaranteed dead (and reaped)
        orphan = tmp_path / f"entry.json.tmp.{probe.pid}"
        orphan.write_text("{partial", encoding="utf-8")
        unparsable = tmp_path / "entry.json.tmp.garbage"
        unparsable.write_text("{partial", encoding="utf-8")
        keeper = tmp_path / "entry.json"
        keeper.write_text("{}", encoding="utf-8")
        SummaryCache(cache_dir=str(tmp_path))
        assert not orphan.exists()
        assert not unparsable.exists()
        assert keeper.exists()

    def test_live_writer_tmp_file_not_swept(self, tmp_path):
        import os as _os

        mine = tmp_path / f"entry.json.tmp.{_os.getpid()}"
        mine.write_text("{mid-write", encoding="utf-8")
        SummaryCache(cache_dir=str(tmp_path))
        assert mine.exists()  # this process may still be mid-write
        mine.unlink()

    def test_open_on_missing_cache_dir_is_fine(self, tmp_path):
        cache = SummaryCache(cache_dir=str(tmp_path / "not-created-yet"))
        assert len(cache) == 0

    def test_untranslatable_fragment_not_cached(self):
        cache = SummaryCache()
        source = """
        double[] blur(double[] img, int n) {
          double[] out = new double[n];
          double prev = 0;
          for (int i = 0; i < n; i++) {
            prev = 0.5 * prev + 0.5 * img[i];
            out[i] = prev;
          }
          return out;
        }
        """
        translate(source, cache=cache, search_config=SearchConfig(timeout_seconds=20))
        assert cache.stats.stores == 0


class TestPassPipeline:
    def test_default_passes_in_order(self):
        names = [p.name for p in default_passes()]
        assert names == [
            "analyze",
            "soundness",
            "synthesize",
            "verify-attach",
            "codegen",
            "plan",
        ]

    def test_pass_timings_recorded(self):
        result = translate(SUM_SOURCE)
        assert set(result.pass_seconds) == {
            "analyze",
            "soundness",
            "synthesize",
            "verify-attach",
            "codegen",
            "plan",
            "graph",
        }
        assert result.pass_seconds["synthesize"] > 0

    def test_context_drives_pipeline_directly(self):
        ctx = CompilationContext(
            program=parse_program(SUM_SOURCE),
            function="sum",
            cache=SummaryCache(),
        )
        PassPipeline(max_workers=1).run(ctx)
        assert len(ctx.fragments) == 1
        state = ctx.fragments[0]
        assert state.analysis is not None
        assert state.fingerprint is not None and state.fingerprint.cacheable
        assert state.search is not None and state.search.translated
        assert state.program is not None

    def test_fingerprint_skipped_without_cache(self):
        ctx = CompilationContext(
            program=parse_program(SUM_SOURCE), function="sum"
        )
        PassPipeline(max_workers=1).run(ctx)
        assert ctx.fragments[0].program is not None
        assert ctx.fragments[0].fingerprint is None  # no cache, no hashing

    def test_analysis_failure_stops_chain(self):
        # A loop with no observable outputs fails analysis; later passes
        # must not run (no search, no program).
        source = """
        int noop(int[] data, int n) {
          for (int i = 0; i < n; i++) { int x = data[i]; }
          return 0;
        }
        """
        result = translate(source)
        frag = result.fragments[0]
        assert frag.failure_reason is not None
        assert frag.search is None
        assert frag.program is None


class TestTranslateMany:
    SOURCES = [SUM_SOURCE, WORDCOUNT_SOURCE, (RWM_SOURCE, None), (Q6_SOURCE, "query6")]

    def test_batch_matches_sequential(self):
        batch = translate_many(self.SOURCES)
        for spec, batched in zip(self.SOURCES, batch):
            source, function = spec if isinstance(spec, tuple) else (spec, None)
            sequential = translate(source, function)
            assert batched.function == sequential.function
            assert batched.identified == sequential.identified
            assert batched.translated == sequential.translated
            for bf, sf in zip(batched.fragments, sequential.fragments):
                assert (bf.search is None) == (sf.search is None)
                if bf.search and sf.search:
                    assert [vs.summary for vs in bf.search.summaries] == [
                        vs.summary for vs in sf.search.summaries
                    ]

    def test_batch_results_positionally_aligned(self):
        results = translate_many([WORDCOUNT_SOURCE, SUM_SOURCE])
        assert results[0].function == "wc"
        assert results[1].function == "sum"

    def test_batch_shares_cache_across_items(self):
        cache = SummaryCache()
        results = translate_many(
            [SUM_SOURCE, SUM_ALPHA_SOURCE, SUM_SOURCE], cache=cache
        )
        assert all(r.translated == 1 for r in results)
        # At least one of the three identical fragments hit the entry
        # stored by another (scheduling decides exactly how many).
        assert cache.stats.hits + cache.stats.stores >= 3

    def test_sequential_worker_pool_equivalent(self):
        parallel = translate_many([SUM_SOURCE, WORDCOUNT_SOURCE], max_workers=4)
        serial = translate_many([SUM_SOURCE, WORDCOUNT_SOURCE], max_workers=1)
        for p, s in zip(parallel, serial):
            assert p.translated == s.translated
            assert [vs.summary for f in p.fragments for vs in f.search.summaries] == [
                vs.summary for f in s.fragments for vs in f.search.summaries
            ]

    def test_compiler_level_batch(self):
        compiler = CasperCompiler(cache=SummaryCache())
        results = compiler.translate_many([SUM_SOURCE])
        assert results[0].translated == 1


class TestRunTranslated:
    def test_single_translated_fragment_runs(self):
        result = translate(SUM_SOURCE)
        assert run_translated(result, {"data": [1, 2, 3], "n": 3}) == {"total": 6}

    def test_explicit_index_runs_that_fragment(self):
        result = translate(SUM_SOURCE)
        outputs = run_translated(result, {"data": [4, 5], "n": 2}, fragment_index=0)
        assert outputs == {"total": 9}

    def test_untranslated_fragment_error_names_reason(self):
        source = """
        double[] blur(double[] img, int n) {
          double[] out = new double[n];
          double prev = 0;
          for (int i = 0; i < n; i++) {
            prev = 0.5 * prev + 0.5 * img[i];
            out[i] = prev;
          }
          return out;
        }
        """
        result = translate(source, search_config=SearchConfig(timeout_seconds=20))
        with pytest.raises(AnalysisError, match="blur#0"):
            run_translated(result, {"img": [1.0], "n": 1})

    def test_multiple_fragments_require_index(self):
        source = """
        int twoLoops(int[] data, int n) {
          int a = 0;
          for (int i = 0; i < n; i++) a += data[i];
          int b = 0;
          for (int j = 0; j < n; j++) b += data[j] * data[j];
          return a + b;
        }
        """
        result = translate(source)
        assert result.identified == 2
        with pytest.raises(AnalysisError, match="fragment_index"):
            run_translated(result, {"data": [1, 2], "n": 2})
        outputs = run_translated(result, {"data": [1, 2], "n": 2}, fragment_index=1)
        assert outputs == {"b": 5}

    def test_index_out_of_range(self):
        result = translate(SUM_SOURCE)
        with pytest.raises(AnalysisError, match="out of range"):
            run_translated(result, {"data": [1], "n": 1}, fragment_index=5)
